"""Benchmark: regenerate the paper's Table 9 via the methodology pipeline."""

from repro.experiments import table09_characterization as experiment

from _common import bench_experiment


def test_table09_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

"""Benchmark: concurrency scaling with object disjointness.

The transfer-workload scaling curve: the same transaction population over
more accounts blocks less and finishes faster (see
``examples/transfer_workloads.py``).  Asserts the qualitative shape —
makespan is monotone non-increasing in the number of accounts.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))

from transfer_workloads import build_objects, transfer_workload  # noqa: E402

from repro.cc import SimulationConfig, simulate


def run_scale(accounts: int) -> float:
    objects = build_objects(accounts)
    total = 0.0
    for seed in range(3):
        metrics = simulate(
            SimulationConfig(
                workload=transfer_workload(accounts, seed),
                objects=objects,
                policy="blocking",
                restart_aborted=True,
            )
        )
        total += metrics.makespan
    return total / 3


@pytest.mark.parametrize("accounts", [2, 4, 8])
def test_transfer_scaling(benchmark, accounts):
    makespan = benchmark.pedantic(
        run_scale, args=(accounts,), rounds=1, iterations=1
    )
    assert makespan > 0


def test_makespan_monotone_in_disjointness():
    makespans = [run_scale(accounts) for accounts in (2, 4, 8)]
    assert makespans[0] > makespans[1] > makespans[2]

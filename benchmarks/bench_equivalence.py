"""Benchmark X2: serial dependency vs. recoverability comparison."""

from repro.experiments import equivalence_experiment

from _common import bench_heavy_experiment


def test_x2_equivalence(benchmark):
    outcome = bench_heavy_experiment(benchmark, equivalence_experiment.run)
    print()
    print(outcome.derived)

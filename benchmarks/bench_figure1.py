"""Benchmark: rebuild the paper's Figure 1 object graph."""

from repro.experiments import figure1_object_graph as experiment

from _common import bench_experiment


def test_figure1_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

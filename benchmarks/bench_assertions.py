"""Benchmark X3/X4: locality assertions against state-machine ground truth."""

from repro.experiments import assertions_experiment

from _common import bench_heavy_experiment


def test_x3_assertion_agreement(benchmark):
    outcome = bench_heavy_experiment(benchmark, assertions_experiment.run)
    print()
    print(outcome.derived)

"""Robustness-stack overhead: the guards must cost (almost) nothing.

Three claims, each benchmarked on the same contended workload:

* a run carrying an *empty* fault plan is bit-identical to a bare run
  (the ``if plan:`` guards and zero-rate non-draws are the mechanism);
* the decision log's write-ahead wrapper preserves the transcript;
* the invariant monitor at a sparse cadence preserves the transcript.

The parity assertions run inside the benchmark bodies on purpose: the
measured time is the time of the *guarded* path, and a parity break
fails the benchmark rather than silently timing a different run.
"""

from repro.adts.qstack import QStackSpec
from repro.cc.harness import drive
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.simulator import SimulationConfig, simulate
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.experiments import golden
from repro.robust import DecisionLog, FaultPlan, FaultSpec, MonitoredScheduler

ADT = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
TABLE = derive(ADT).final_table
WORKLOAD = generate(
    ADT,
    "shared",
    WorkloadConfig(transactions=16, operations_per_transaction=4, seed=77),
)
BASELINE = drive(TableDrivenScheduler(), ADT, TABLE, WORKLOAD, "shared")
BASELINE_METRICS = simulate(
    SimulationConfig(adt=ADT, table=TABLE, workload=WORKLOAD)
).summary()


def test_empty_fault_plan_overhead(benchmark):
    def run():
        return simulate(
            SimulationConfig(
                adt=ADT,
                table=TABLE,
                workload=WORKLOAD,
                fault_plan=FaultPlan(1, FaultSpec()),
            )
        ).summary()

    assert benchmark(run) == BASELINE_METRICS


def test_decision_log_overhead(benchmark):
    def run():
        scheduler = MonitoredScheduler(
            TableDrivenScheduler(), log=DecisionLog(), check_interval=10_000
        )
        return drive(scheduler, ADT, TABLE, WORKLOAD, "shared")

    assert benchmark(run) == BASELINE


def test_monitor_audit_overhead(benchmark):
    def run():
        scheduler = MonitoredScheduler(
            TableDrivenScheduler(), log=DecisionLog(), check_interval=16
        )
        return drive(scheduler, ADT, TABLE, WORKLOAD, "shared")

    assert benchmark(run) == BASELINE

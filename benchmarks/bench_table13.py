"""Benchmark: regenerate the paper's Table 13 via the methodology pipeline."""

from repro.experiments import table13_push_push_input as experiment

from _common import bench_experiment


def test_table13_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

"""Benchmark X5 and raw scheduler throughput.

The soundness experiment (every run serializable) plus a pure scheduling
throughput benchmark: operations scheduled per second through the
table-driven scheduler under the fully refined QStack table.

Run directly (``python benchmarks/bench_scheduler.py``) this delegates to
:mod:`bench_scheduler_throughput` and emits the same JSON baseline schema
as ``benchmarks/baseline.py`` — host info, per-config results, speedup
against the frozen :class:`~repro.cc.reference.ReferenceScheduler`, and a
transcript parity flag (written to ``BENCH_scheduler.json``).
"""

from repro.adts.qstack import QStackSpec
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive
from repro.experiments import golden, scheduler_soundness

from _common import bench_heavy_experiment

ADT = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
TABLE = derive(ADT).final_table
WORKLOAD = generate(
    ADT,
    "shared",
    WorkloadConfig(transactions=24, operations_per_transaction=4, seed=77),
)


def test_x5_scheduler_soundness(benchmark):
    outcome = bench_heavy_experiment(benchmark, scheduler_soundness.run)
    print()
    print(outcome.derived)


def _drive_scheduler() -> int:
    scheduler = TableDrivenScheduler(policy="optimistic")
    scheduler.register_object("shared", ADT, TABLE)
    committed = 0
    for program in WORKLOAD.programs:
        txn = scheduler.begin()
        alive = True
        for step in program.steps:
            decision = scheduler.request(txn, "shared", step.invocation)
            if decision.aborted:
                alive = False
                break
        if alive and scheduler.transaction(txn).is_active:
            if scheduler.try_commit(txn).committed:
                committed += 1
        # leftover active transactions are resolved at the end
    for txn in sorted(scheduler.active_transactions()):
        if scheduler.try_commit(txn).committed:
            committed += 1
    return committed


def test_scheduler_throughput(benchmark):
    committed = benchmark(_drive_scheduler)
    assert committed > 0


if __name__ == "__main__":
    import sys

    from bench_scheduler_throughput import main

    sys.exit(main())

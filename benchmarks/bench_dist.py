"""Distribution-layer overhead: one shard must be the bare scheduler.

The headline parity claim of ``repro.dist``: a single-shard cluster —
whole protocol stack engaged (simulated bus, coordinator, one-phase
commit, decision log) — produces a transcript **equal** to driving the
bare scheduler directly.  The benchmark times the cluster path and the
parity assertion runs inside the benchmark body on purpose: a parity
break fails the benchmark rather than silently timing a different run.

The second benchmark times the genuinely distributed path (two shards,
2PC with dependency piggybacking) and asserts the global audit instead
— there is no single-scheduler transcript to compare against, but the
stitched history must stay serializable with the AD/CD contract intact.

Run as a script to record the baseline (the ``BENCH_*.json`` pattern)::

    PYTHONPATH=src python benchmarks/bench_dist.py --out BENCH_dist.json

Exit status is non-zero when one-shard parity breaks or the two-shard
audit fails.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adts.qstack import QStackSpec  # noqa: E402
from repro.cc.harness import drive  # noqa: E402
from repro.cc.scheduler import TableDrivenScheduler  # noqa: E402
from repro.cc.workload import WorkloadConfig, generate  # noqa: E402
from repro.core.methodology import derive  # noqa: E402
from repro.dist import Cluster, audit_global  # noqa: E402
from repro.experiments import golden  # noqa: E402

ADT = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
TABLE = derive(ADT).final_table
WORKLOAD = generate(
    ADT,
    "obj",
    WorkloadConfig(transactions=16, operations_per_transaction=4, seed=77),
)
BASELINE = drive(TableDrivenScheduler(), ADT, TABLE, WORKLOAD, "obj")


def one_shard_run():
    cluster = Cluster(ADT, TABLE, shards=1)
    return cluster.run(WORKLOAD, seed=77).to_harness()


def two_shard_run():
    cluster = Cluster(ADT, TABLE, shards=2)
    cluster.run(WORKLOAD, seed=77)
    return audit_global(cluster)


def test_one_shard_bus_parity(benchmark):
    assert benchmark(one_shard_run) == BASELINE


def test_two_shard_protocol_overhead(benchmark):
    audit = benchmark(two_shard_run)
    assert audit.passed


# ----------------------------------------------------------------------
# Baseline writer (the BENCH_*.json pattern)
# ----------------------------------------------------------------------


def _best_of(run, rounds: int):
    best = None
    value = None
    for _ in range(rounds):
        start = time.perf_counter()
        value = run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, value


def measure_dist(rounds: int = 3) -> dict:
    """The BENCH_dist.json payload: bare vs one-shard vs two-shard."""
    bare_seconds, bare = _best_of(
        lambda: drive(TableDrivenScheduler(), ADT, TABLE, WORKLOAD, "obj"),
        rounds,
    )
    one_seconds, one = _best_of(one_shard_run, rounds)
    two_seconds, audit = _best_of(two_shard_run, rounds)
    return {
        "benchmark": "dist_overhead",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": {
            "one_shard_parity": {
                "adt": "QStack",
                "transactions": 16,
                "parity": one == bare,
                "bare_seconds": round(bare_seconds, 6),
                "cluster_seconds": round(one_seconds, 6),
                "overhead_ratio": round(one_seconds / bare_seconds, 3)
                if bare_seconds
                else None,
            },
            "two_shard_protocol": {
                "adt": "QStack",
                "transactions": 16,
                "audit_passed": audit.passed,
                "serializable": audit.serializable,
                "in_doubt": list(audit.in_doubt),
                "cluster_seconds": round(two_seconds, 6),
            },
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_dist.json",
        help="where to write the baseline JSON (default: BENCH_dist.json)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="timing rounds per configuration; best-of wins (default 3)",
    )
    args = parser.parse_args(argv)
    payload = measure_dist(rounds=args.rounds)
    Path(args.out).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    results = payload["results"]
    failures = []
    if not results["one_shard_parity"]["parity"]:
        failures.append("one-shard cluster transcript diverged from bare run")
    if not results["two_shard_protocol"]["audit_passed"]:
        failures.append("two-shard global audit failed")
    print(f"baseline: {args.out}")
    print(
        "one-shard parity={parity} overhead={overhead_ratio}x".format(
            **results["one_shard_parity"]
        )
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Serving-layer benchmark: batched throughput and adaptive policy gates.

Measures the :mod:`repro.serve` front-end over the bare scheduler and the
sharded cluster and writes ``BENCH_serving.json`` (same schema as the
other ``BENCH_*`` baselines).  Every gated number is **sim-time**
throughput — committed operations per sim-time unit — which is
deterministic and machine-independent: batching one tick's worth of
independent transactions is what the serving loop buys, and wall-clock
cannot see that in single-threaded Python.

Configurations (all seeded, byte-stable):

* ``account_serial`` / ``account_batched`` — the same contended
  single-object Account workload served with ``max_inflight=1`` (the
  single-request harness discipline) and ``max_inflight=32``.  Gate:
  batched sim-throughput >= ``--min-batch-speedup`` (default 3x) serial.
* ``account_uniform_open`` / ``account_zipf_open`` /
  ``account_zipf_closed`` / ``account_burst_open`` — open vs closed
  loops, uniform vs Zipfian hot keys, and a diurnal burst envelope over
  eight objects.
* ``qstack_static_{optimistic,blocking,queued}`` / ``qstack_adaptive``
  — a contended hot-key QStack mix served at-least-once
  (``retry_aborts``: scheduler aborts re-enter the queue with backoff,
  so an optimistic abort storm costs duration instead of shedding
  silently).  The adaptive run starts every object serialized
  (``queued``) and lets the controller extract concurrency per object
  from the live conflict telemetry.  Gate: adaptive goodput >= the best
  static policy.
* ``dist_1shard`` / ``dist_4shard`` — the same loop over the cluster's
  2PC front-end; each run is globally audited.
* ``qstack_overload_nominal`` / ``qstack_overload_faults`` — the fully
  hardened loop (deadline budgets, circuit breakers, degradation
  ladder, capped-exponential retry) at nominal load, and at 2x load
  under a seeded fault storm.  Gate: committed work under overload +
  faults >= ``--min-degraded-goodput`` (default 0.5) of nominal, the
  served history stays serializable, and no shed or expired request
  appears committed (``no_resurrection``).
* ``harness_parity`` — the poll-mode serving loop must reproduce
  :func:`repro.cc.harness.drive`'s transcript bit for bit.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adts.registry import make_adt  # noqa: E402
from repro.cc.harness import drive  # noqa: E402
from repro.cc.scheduler import TableDrivenScheduler  # noqa: E402
from repro.cc.serializability import is_serializable  # noqa: E402
from repro.cc.workload import WorkloadConfig  # noqa: E402
from repro.cc.workload import generate as cc_generate  # noqa: E402
from repro.core.methodology import derive as derive_table  # noqa: E402
from repro.dist.audit import audit_global  # noqa: E402
from repro.dist.cluster import Cluster, ClusterFrontend  # noqa: E402
from repro.robust import FaultPlan, FaultSpec  # noqa: E402
from repro.serve import (  # noqa: E402
    AdaptiveController,
    BreakerConfig,
    BurstEnvelope,
    ClusterBackend,
    DeadlinePolicy,
    RetryPolicy,
    SchedulerBackend,
    ServeConfig,
    ServingLoop,
    ShedConfig,
    from_cc_workload,
    generate,
)

#: The contended Account stream behind the batching gate: one object,
#: commutative Deposits (nothing blocks, nothing aborts), arrivals far
#: faster than a serial server drains them — the served-concurrency
#: ceiling is exactly ``max_inflight``.
BATCH_GATE_CONFIG = ServeConfig(
    sessions=8,
    requests_per_session=8,
    operations_per_request=3,
    mode="open",
    mean_interarrival=0.05,
    objects=1,
    operation_mix={"Deposit": 1.0},
    seed=1991,
)

#: The contended hot-key mix behind the adaptive gate: Pop-heavy QStack
#: traffic, Zipf 1.5 over four objects, served at-least-once.  Under
#: these economics no static policy is safe — optimistic melts into a
#: retry storm on the hot object, blanket serialization starves the
#: cold ones.
ADAPTIVE_GATE_CONFIG = ServeConfig(
    sessions=8,
    requests_per_session=6,
    operations_per_request=4,
    mode="open",
    mean_interarrival=0.2,
    objects=4,
    zipf_s=1.5,
    operation_mix={"Pop": 2.0, "Push": 1.0},
    seed=1991,
)

ADAPTIVE_INFLIGHT = 12

#: Open/closed/burst coverage over eight Account objects.
MIX_BASE = dict(
    sessions=8,
    requests_per_session=8,
    operations_per_request=2,
    objects=8,
    seed=1991,
)

STATIC_POLICIES = ("optimistic", "blocking", "queued")

CONFIG_NAMES = (
    "account_serial",
    "account_batched",
    "account_uniform_open",
    "account_zipf_open",
    "account_zipf_closed",
    "account_burst_open",
    "qstack_static_optimistic",
    "qstack_static_blocking",
    "qstack_static_queued",
    "qstack_adaptive",
    "dist_1shard",
    "dist_4shard",
    "qstack_overload_nominal",
    "qstack_overload_faults",
    "harness_parity",
)


def _controller() -> AdaptiveController:
    return AdaptiveController(
        check_every=8, confirm=2, min_dwell=4, min_requests=8
    )


def _entry(result, *, kind: str, adt: str, policy: str, mode: str,
           max_inflight: int, retry_aborts: bool, extra: dict | None = None,
           wall_seconds: float | None = None) -> dict:
    e2e = result.latency.merged("serve.e2e")
    entry = {
        "kind": kind,
        "adt": adt,
        "policy": policy,
        "mode": mode,
        "max_inflight": max_inflight,
        "retry_aborts": retry_aborts,
        "requests": result.requests,
        "committed": result.committed,
        "aborted": result.aborted,
        "shed": result.shed,
        "deadline_exceeded": result.deadline_exceeded,
        "retries_exhausted": result.retries_exhausted,
        "breaker_transitions": len(result.breaker_transitions),
        "degradation_steps": len(result.degradation_steps),
        "retries": result.retries,
        "goodput_ops": result.goodput_ops,
        "ops_issued": result.ops_issued,
        "sim_duration": round(result.sim_duration, 4),
        "sim_throughput": round(result.goodput_per_time(), 4),
        "p50_e2e": round(e2e.p50, 4),
        "p99_e2e": round(e2e.p99, 4),
        "forced_wakes": result.forced_wakes,
        "policy_switches": [
            [switch.object_name, switch.old, switch.new]
            for switch in result.policy_switches
        ],
        "wall_seconds": round(
            result.wall_seconds if wall_seconds is None else wall_seconds, 6
        ),
    }
    if extra:
        entry.update(extra)
    return entry


def _scheduler_run(adt_name: str, config: ServeConfig, policy: str,
                   max_inflight: int, *, retry_aborts: bool = False,
                   controller: AdaptiveController | None = None):
    adt = make_adt(adt_name)
    table = derive_table(adt).final_table
    workload = generate(adt, config)
    scheduler = TableDrivenScheduler(policy=policy)
    backend = SchedulerBackend(scheduler)
    for name in workload.object_names:
        backend.register_object(name, adt, table)
    result = ServingLoop(
        backend,
        workload,
        max_inflight=max_inflight,
        retry_aborts=retry_aborts,
        # The jitter stream is keyed to the workload seed, like every
        # other random draw in the benchmark.
        retry_policy=RetryPolicy(seed=config.seed),
        controller=controller,
    ).run()
    serializable = is_serializable(scheduler)
    return result, serializable


def _cluster_run(adt_name: str, shards: int):
    adt = make_adt(adt_name)
    table = derive_table(adt).final_table
    cluster = Cluster(adt, table, shards=shards, policy="blocking")
    backend = ClusterBackend(ClusterFrontend(cluster))
    config = ServeConfig(
        sessions=8,
        requests_per_session=6,
        operations_per_request=2,
        mode="closed",
        objects=shards,
        zipf_s=0.8,
        seed=1991,
    )
    workload = generate(adt, config, object_names=tuple(cluster.shard_names))
    result = ServingLoop(backend, workload, max_inflight=16).run()
    audit = audit_global(cluster)
    return result, audit.passed


#: The overload-hardening configuration: a skewed QStack workload under
#: a blocking scheduler, served by the fully hardened loop.  ``load``
#: scales the offered arrival rate; the ``faults`` variant adds a
#: seeded scheduler-level storm.
def _overload_config(load: float) -> ServeConfig:
    return ServeConfig(
        sessions=6,
        requests_per_session=5,
        operations_per_request=2,
        mode="open",
        mean_interarrival=2.0 / load,
        objects=2,
        zipf_s=0.9,
        seed=1991,
    )


def _overload_run(load: float, with_faults: bool):
    adt = make_adt("QStack")
    table = derive_table(adt).final_table
    scheduler = TableDrivenScheduler(policy="blocking")
    backend = SchedulerBackend(scheduler)
    workload = generate(adt, _overload_config(load))
    for name in workload.object_names:
        backend.register_object(name, adt, table)
    plan = None
    if with_faults:
        plan = FaultPlan(1991, FaultSpec(
            spurious_abort_rate=0.05,
            op_failure_rate=0.05,
            commit_delay_rate=0.05,
        ))
    loop = ServingLoop(
        backend,
        workload,
        max_inflight=8,
        retry_aborts=True,
        max_retries=4,
        deadline=DeadlinePolicy(budget=96.0),
        retry_policy=RetryPolicy(seed=1991),
        breakers=BreakerConfig(),
        shedding=ShedConfig(queue_limit=24),
        fault_plan=plan,
    )
    result = loop.run()
    # No resurrection: a transaction begun for a request the loop shed,
    # expired or retired must never be committed.
    no_resurrection = True
    for rid, outcome in loop.outcomes.items():
        if outcome in ("shed", "deadline_exceeded", "retries_exhausted"):
            for txn in loop.request_txns.get(rid, ()):
                if scheduler.transaction(txn).status.name == "COMMITTED":
                    no_resurrection = False
    return result, is_serializable(scheduler), no_resurrection


def _parity_run() -> dict:
    """Poll-mode serving vs ``drive``: transcripts must be identical."""
    adt = make_adt("QStack")
    table = derive_table(adt).final_table
    config = WorkloadConfig(
        transactions=10,
        operations_per_transaction=4,
        abort_probability=0.1,
        seed=1991,
    )
    workload = cc_generate(adt, "obj", config)
    started = time.perf_counter()
    reference = drive(
        TableDrivenScheduler(policy="blocking"), adt, table, workload,
        concurrency=4,
    )
    backend = SchedulerBackend(TableDrivenScheduler(policy="blocking"))
    backend.register_object("obj", adt, table)
    result = ServingLoop(
        backend, from_cc_workload(workload), max_inflight=4, retry="poll"
    ).run()
    wall = time.perf_counter() - started
    return {
        "kind": "parity",
        "adt": "QStack",
        "policy": "blocking",
        "mode": "poll",
        "max_inflight": 4,
        "requests": result.requests,
        "committed": result.committed,
        "aborted": result.aborted,
        "parity": result.transcript == reference,
        "wall_seconds": round(wall, 6),
    }


def measure_serving(config_names=CONFIG_NAMES) -> dict:
    """The BENCH_serving.json payload for the named configs."""
    results: dict[str, dict] = {}
    adaptive_adt = "QStack"

    for name in config_names:
        if name in ("account_serial", "account_batched"):
            inflight = 1 if name == "account_serial" else 32
            result, serializable = _scheduler_run(
                "Account", BATCH_GATE_CONFIG, "blocking", inflight
            )
            results[name] = _entry(
                result, kind="scheduler", adt="Account", policy="blocking",
                mode="open", max_inflight=inflight, retry_aborts=False,
                extra={"serializable": serializable},
            )
        elif name == "account_uniform_open":
            config = ServeConfig(mode="open", mean_interarrival=0.5, **MIX_BASE)
            result, serializable = _scheduler_run(
                "Account", config, "blocking", 16
            )
            results[name] = _entry(
                result, kind="scheduler", adt="Account", policy="blocking",
                mode="open", max_inflight=16, retry_aborts=False,
                extra={"serializable": serializable},
            )
        elif name == "account_zipf_open":
            config = ServeConfig(
                mode="open", mean_interarrival=0.5, zipf_s=1.2, **MIX_BASE
            )
            result, serializable = _scheduler_run(
                "Account", config, "blocking", 16
            )
            results[name] = _entry(
                result, kind="scheduler", adt="Account", policy="blocking",
                mode="open", max_inflight=16, retry_aborts=False,
                extra={"serializable": serializable},
            )
        elif name == "account_zipf_closed":
            config = ServeConfig(
                mode="closed", mean_think_time=1.0, zipf_s=1.2, **MIX_BASE
            )
            result, serializable = _scheduler_run(
                "Account", config, "blocking", 16
            )
            results[name] = _entry(
                result, kind="scheduler", adt="Account", policy="blocking",
                mode="closed", max_inflight=16, retry_aborts=False,
                extra={"serializable": serializable},
            )
        elif name == "account_burst_open":
            config = ServeConfig(
                mode="open",
                mean_interarrival=0.5,
                zipf_s=1.2,
                burst=BurstEnvelope(period=16.0, amplitude=0.6),
                **MIX_BASE,
            )
            result, serializable = _scheduler_run(
                "Account", config, "blocking", 16
            )
            results[name] = _entry(
                result, kind="scheduler", adt="Account", policy="blocking",
                mode="open", max_inflight=16, retry_aborts=False,
                extra={"serializable": serializable},
            )
        elif name.startswith("qstack_static_"):
            policy = name[len("qstack_static_"):]
            result, serializable = _scheduler_run(
                adaptive_adt, ADAPTIVE_GATE_CONFIG, policy,
                ADAPTIVE_INFLIGHT, retry_aborts=True,
            )
            results[name] = _entry(
                result, kind="scheduler", adt=adaptive_adt, policy=policy,
                mode="open", max_inflight=ADAPTIVE_INFLIGHT, retry_aborts=True,
                extra={"serializable": serializable},
            )
        elif name == "qstack_adaptive":
            result, serializable = _scheduler_run(
                adaptive_adt, ADAPTIVE_GATE_CONFIG, "queued",
                ADAPTIVE_INFLIGHT, retry_aborts=True, controller=_controller(),
            )
            results[name] = _entry(
                result, kind="scheduler", adt=adaptive_adt, policy="adaptive",
                mode="open", max_inflight=ADAPTIVE_INFLIGHT, retry_aborts=True,
                extra={"serializable": serializable},
            )
        elif name in ("dist_1shard", "dist_4shard"):
            shards = 1 if name == "dist_1shard" else 4
            result, audit_passed = _cluster_run("Account", shards)
            results[name] = _entry(
                result, kind="cluster", adt="Account", policy="blocking",
                mode="closed", max_inflight=16, retry_aborts=False,
                extra={"shards": shards, "audit_passed": audit_passed},
            )
        elif name in ("qstack_overload_nominal", "qstack_overload_faults"):
            with_faults = name == "qstack_overload_faults"
            load = 2.0 if with_faults else 1.0
            result, serializable, no_resurrection = _overload_run(
                load, with_faults
            )
            results[name] = _entry(
                result, kind="scheduler", adt="QStack", policy="blocking",
                mode="open", max_inflight=8, retry_aborts=True,
                extra={
                    "serializable": serializable,
                    "no_resurrection": no_resurrection,
                    "load": load,
                    "faulty": with_faults,
                },
            )
        elif name == "harness_parity":
            results[name] = _parity_run()
        else:
            raise SystemExit(f"unknown config {name!r}")

    return {
        "benchmark": "serving",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": results,
    }


def check_thresholds(
    payload: dict,
    min_batch_speedup: float = 3.0,
    min_degraded_goodput: float = 0.5,
) -> list[str]:
    """Threshold violations in a measured payload (empty = all good)."""
    failures: list[str] = []
    results = payload["results"]
    for name, entry in results.items():
        if entry["committed"] <= 0:
            failures.append(
                f"{name}: nothing committed — the workload is silently "
                f"dead and measures nothing"
            )
        if entry.get("forced_wakes", 0):
            failures.append(
                f"{name}: {entry['forced_wakes']} forced wakes — the "
                f"ready-callback path stalled"
            )
        if entry.get("serializable") is False:
            failures.append(f"{name}: served history is not serializable")
        if entry.get("audit_passed") is False:
            failures.append(f"{name}: global audit failed")
        if entry.get("no_resurrection") is False:
            failures.append(
                f"{name}: a shed or expired request appears committed"
            )
        if entry.get("parity") is False:
            failures.append(
                f"{name}: poll-mode serving transcript differs from drive()"
            )
    serial = results.get("account_serial")
    batched = results.get("account_batched")
    if serial and batched:
        speedup = (
            batched["sim_throughput"] / serial["sim_throughput"]
            if serial["sim_throughput"]
            else 0.0
        )
        if speedup < min_batch_speedup:
            failures.append(
                f"account_batched: sim-throughput speedup {speedup:.2f}x "
                f"below required {min_batch_speedup}x over account_serial"
            )
    adaptive = results.get("qstack_adaptive")
    statics = [
        results[f"qstack_static_{policy}"]
        for policy in STATIC_POLICIES
        if f"qstack_static_{policy}" in results
    ]
    if adaptive and statics:
        best = max(entry["sim_throughput"] for entry in statics)
        if adaptive["sim_throughput"] < best:
            failures.append(
                f"qstack_adaptive: goodput {adaptive['sim_throughput']} "
                f"below best static {best}"
            )
    nominal = results.get("qstack_overload_nominal")
    stressed = results.get("qstack_overload_faults")
    if nominal and stressed:
        # Graceful degradation is measured in committed work, not
        # work-per-sim-time: fault stalls legitimately stretch the
        # clock, and the gate is about how much offered work still
        # lands under 2x load plus faults.
        floor = min_degraded_goodput * nominal["goodput_ops"]
        if stressed["goodput_ops"] < floor:
            failures.append(
                f"qstack_overload_faults: goodput {stressed['goodput_ops']} "
                f"ops under 2x overload + faults is below "
                f"{min_degraded_goodput:.0%} of nominal "
                f"({nominal['goodput_ops']} ops)"
            )
    return failures


def write_baseline(payload: dict, out: str | Path) -> Path:
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_serving.json",
        help="where to write the baseline JSON (default: BENCH_serving.json)",
    )
    parser.add_argument(
        "--configs", nargs="*", default=list(CONFIG_NAMES),
        choices=list(CONFIG_NAMES),
        help="serving configs to measure (default: all)",
    )
    parser.add_argument(
        "--min-batch-speedup", type=float, default=3.0,
        help="required batched-vs-serial sim-throughput ratio (default 3.0, "
             "the PR's acceptance bar)",
    )
    parser.add_argument(
        "--min-degraded-goodput", type=float, default=0.5,
        help="required committed-work fraction of nominal under 2x "
             "overload plus faults (default 0.5)",
    )
    args = parser.parse_args(argv)

    payload = measure_serving(args.configs)
    path = write_baseline(payload, args.out)
    for name, entry in payload["results"].items():
        line = (
            f"{name:26} committed={entry['committed']:>3} "
            f"aborted={entry['aborted']:>3}"
        )
        if "sim_throughput" in entry:
            line += (
                f" goodput/t={entry['sim_throughput']:>7.3f} "
                f"p99={entry['p99_e2e']:>7.2f}"
            )
        if "parity" in entry:
            line += f" parity={entry['parity']}"
        print(line)
    print(f"wrote {path}")

    failures = check_thresholds(
        payload, args.min_batch_speedup, args.min_degraded_goodput
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

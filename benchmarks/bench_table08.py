"""Benchmark: regenerate the paper's Table 8 (mo sc template)."""

from repro.experiments import table08_mo_sc_template as experiment

from _common import bench_experiment


def test_table08_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

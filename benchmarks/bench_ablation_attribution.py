"""Ablation: ordering-edge attribution (DESIGN.md §5, decision 2).

Def. 15 read literally attributes an ordering-edge change to *both*
endpoints; the paper's Stage-5 reasoning effectively uses source-only
attribution.  The ablation quantifies the difference on the runtime
conflict certification: under BOTH, adjacent front/back operations of a
QStack appear to touch each other's vertices, so fewer operation pairs
certify as independent and the simulated workload serialises more.
"""

import pytest

from repro.adts.qstack import QStackSpec
from repro.cc.objects import SharedObject
from repro.core.assertions import locality_dependency
from repro.core.dependency import Dependency
from repro.graph.instrument import EdgeAttribution
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation

ADT = QStackSpec()


def _nd_rate(attribution: EdgeAttribution) -> float:
    """Fraction of (state, pair) cases whose traces do not intersect."""
    invocations = ADT.invocations()
    total = disjoint = 0
    for state in ADT.state_list():
        executions = {
            invocation: execute_invocation(ADT, state, invocation, attribution)
            for invocation in invocations
        }
        for first in invocations:
            for second in invocations:
                total += 1
                dep = locality_dependency(
                    executions[first].trace, executions[second].trace
                )
                if dep is Dependency.ND:
                    disjoint += 1
    return disjoint / total


@pytest.mark.parametrize("attribution", list(EdgeAttribution))
def test_attribution_nd_rate(benchmark, attribution):
    rate = benchmark.pedantic(_nd_rate, args=(attribution,), rounds=1, iterations=1)
    print(f"\n{attribution.value}: locality-disjoint rate {rate:.1%}")
    assert 0.0 < rate < 1.0


def test_source_attribution_certifies_more_concurrency():
    both, source = _nd_rate(EdgeAttribution.BOTH), _nd_rate(EdgeAttribution.SOURCE)
    assert source > both


def test_push_deq_disjoint_only_under_source():
    """The Stage-5 poster child: Push and Deq on a two-element QStack."""
    results = {}
    for attribution in EdgeAttribution:
        push = execute_invocation(
            ADT, ("a", "b"), Invocation("Push", ("a",)), attribution
        )
        deq = execute_invocation(ADT, ("a", "b"), Invocation("Deq"), attribution)
        results[attribution] = locality_dependency(push.trace, deq.trace)
    assert results[EdgeAttribution.SOURCE] is Dependency.ND
    assert results[EdgeAttribution.BOTH] is not Dependency.ND


def test_shared_object_defaults_to_source_attribution():
    shared = SharedObject("qs", ADT)
    assert shared.attribution is EdgeAttribution.SOURCE

"""Benchmark X1: the refinement-vs-concurrency series.

Regenerates the paper's central qualitative claim — each methodology
stage yields a table with more potential for concurrency — and prints the
measured series (restrictiveness, throughput, blocked time) per stage.
"""

from repro.experiments import refinement_concurrency

from _common import bench_heavy_experiment


def test_x1_refinement_series(benchmark):
    outcome = bench_heavy_experiment(benchmark, refinement_concurrency.run)
    print()
    print(outcome.derived)

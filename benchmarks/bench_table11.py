"""Benchmark: regenerate the paper's Table 11 via the methodology pipeline."""

from repro.experiments import table11_deq_push as experiment

from _common import bench_experiment


def test_table11_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

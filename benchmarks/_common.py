"""Shared helpers for the benchmark harness.

Every paper artifact has one benchmark that (a) regenerates it from
scratch, (b) asserts it still matches the paper, and (c) reports the
regeneration time through pytest-benchmark.  Heavyweight experiments run
one round (their derivations are deterministic, so more rounds add no
information), lightweight ones use pytest-benchmark's auto-calibration.
"""

from __future__ import annotations

__all__ = ["bench_experiment", "bench_heavy_experiment"]


def bench_experiment(benchmark, run):
    """Benchmark a table/figure experiment and assert paper fidelity."""
    outcome = benchmark(run)
    assert outcome.matches, f"{outcome.exp_id} diverged:\n{outcome.derived}"
    return outcome


def bench_heavy_experiment(benchmark, run):
    """Single-round benchmark for simulation-heavy experiments."""
    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.matches, f"{outcome.exp_id} diverged:\n{outcome.derived}"
    return outcome

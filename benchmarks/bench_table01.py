"""Benchmark: regenerate the paper's Table 1 (classification)."""

from repro.experiments import table01_classification as experiment

from _common import bench_experiment


def test_table01_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

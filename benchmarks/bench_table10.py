"""Benchmark: regenerate the paper's Table 10 via the methodology pipeline."""

from repro.experiments import table10_stage3 as experiment

from _common import bench_experiment


def test_table10_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

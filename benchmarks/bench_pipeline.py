"""Benchmark: the full five-stage derivation per built-in ADT.

Measures what a user pays to go from an executable specification to a
fully refined compatibility table.
"""

import pytest

from repro.adts.registry import builtin_names, make_adt
from repro.core.methodology import derive


@pytest.mark.parametrize("adt_name", builtin_names())
def test_full_derivation(benchmark, adt_name):
    adt = make_adt(adt_name)
    result = benchmark.pedantic(derive, args=(adt,), rounds=2, iterations=1)
    assert result.final_table.is_complete()
    assert result.stage5_table.refines(result.stage3_table)

"""Benchmark: the full five-stage derivation per built-in ADT.

Measures what a user pays to go from an executable specification to a
fully refined compatibility table — cached (the default configuration)
and uncached, so the evidence-base/memoization win stays visible.

Set ``REPRO_BENCH_BASELINE=<path>`` to also record the
``BENCH_pipeline.json`` perf baseline (see ``benchmarks/baseline.py``
and ``docs/PERFORMANCE.md``).
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.adts.registry import builtin_names, make_adt
from repro.core.methodology import MethodologyOptions, derive


@pytest.mark.parametrize("adt_name", builtin_names())
def test_full_derivation(benchmark, adt_name):
    adt = make_adt(adt_name)
    result = benchmark.pedantic(derive, args=(adt,), rounds=2, iterations=1)
    assert result.final_table.is_complete()
    assert result.stage5_table.refines(result.stage3_table)


@pytest.mark.parametrize("adt_name", ["QStack"])
def test_full_derivation_uncached(benchmark, adt_name):
    adt = make_adt(adt_name)
    options = MethodologyOptions(use_cache=False)
    result = benchmark.pedantic(
        derive, args=(adt,), kwargs={"options": options}, rounds=2, iterations=1
    )
    assert result.final_table.is_complete()


def test_write_pipeline_baseline():
    """Record BENCH_pipeline.json when REPRO_BENCH_BASELINE names a path."""
    out = os.environ.get("REPRO_BENCH_BASELINE")
    if not out:
        pytest.skip("set REPRO_BENCH_BASELINE=<path> to record the baseline")
    from baseline import measure_pipeline, write_baseline

    payload = measure_pipeline(["QStack"], rounds=2)
    path = write_baseline(payload, out)
    assert path.exists()
    assert all(entry["parity"] for entry in payload["results"].values())

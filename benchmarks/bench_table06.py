"""Benchmark: regenerate the paper's Table 6 (om sc template)."""

from repro.experiments import table06_om_sc_template as experiment

from _common import bench_experiment


def test_table06_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

"""Benchmark: regenerate the paper's Table 14 via the methodology pipeline."""

from repro.experiments import table14_deq_push_locality as experiment

from _common import bench_experiment


def test_table14_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

"""BENCH_pipeline.json — the derivation pipeline's perf baseline writer.

Measures the full five-stage derivation per ADT in two configurations —
uncached (``use_cache=False``) and cached (the defaults) — verifies the
two produce identical tables, and writes the result as a JSON baseline so
the perf trajectory of the pipeline is recorded run over run.

Usage::

    PYTHONPATH=src python benchmarks/baseline.py \
        --out BENCH_pipeline.json --adts QStack --min-speedup 1.0

Exit status is non-zero when any ADT misses ``--min-speedup`` (cached vs
uncached), exceeds the recorded seed-commit reference by more than
``--max-seed-ratio``, or fails the cached-vs-uncached parity check.

The CI benchmark smoke job runs this after the pytest-benchmark smoke
pass and uploads the JSON as an artifact (see
``.github/workflows/ci.yml`` and ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adts.registry import builtin_names, make_adt  # noqa: E402
from repro.core.methodology import MethodologyOptions, derive  # noqa: E402

#: Wall time of the full derivation at the seed commit (835540b), before
#: the shared evidence base and execution cache existed — measured on the
#: reference dev container, best of 3.  The absolute floor the CI smoke
#: job holds the cached pipeline to (scaled by ``--max-seed-ratio``).
SEED_REFERENCE_SECONDS = {
    "QStack": 0.1861,
}


def _best_of(fn, rounds: int) -> tuple[float, object]:
    """Best wall time over ``rounds`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def measure_pipeline(adt_names: list[str], rounds: int = 3) -> dict:
    """The BENCH_pipeline.json payload for the named ADTs."""
    results = {}
    for name in adt_names:
        adt = make_adt(name)
        uncached_seconds, uncached = _best_of(
            lambda: derive(adt, options=MethodologyOptions(use_cache=False)),
            rounds,
        )
        cached_seconds, cached = _best_of(lambda: derive(adt), rounds)
        parity = (
            cached.stage3_table == uncached.stage3_table
            and cached.stage4_table == uncached.stage4_table
            and cached.stage5_table == uncached.stage5_table
            and cached.notes == uncached.notes
        )
        profile = cached.profile
        results[name] = {
            "uncached_seconds": round(uncached_seconds, 6),
            "cached_seconds": round(cached_seconds, 6),
            "speedup": round(uncached_seconds / cached_seconds, 3)
            if cached_seconds
            else None,
            "parity": parity,
            "cache_hits": profile.cache_hits,
            "cache_misses": profile.cache_misses,
            "cache_evictions": profile.cache_evictions,
            "cache_hit_rate": round(profile.cache_hit_rate, 4),
            "stage_seconds": {
                stage.stage: round(stage.seconds, 6) for stage in profile.stages
            },
            "stage_speedups": {
                stage: round(value, 3)
                for stage, value in profile.speedup_vs(
                    uncached.profile
                ).items()
            },
            "seed_reference_seconds": SEED_REFERENCE_SECONDS.get(name),
        }
    return {
        "benchmark": "pipeline",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": results,
    }


def check_thresholds(
    payload: dict, min_speedup: float, max_seed_ratio: float
) -> list[str]:
    """Threshold violations in a measured payload (empty = all good)."""
    failures = []
    for name, entry in payload["results"].items():
        if not entry["parity"]:
            failures.append(f"{name}: cached and uncached tables differ")
        if entry["speedup"] is not None and entry["speedup"] < min_speedup:
            failures.append(
                f"{name}: cached speedup {entry['speedup']}x "
                f"below required {min_speedup}x"
            )
        reference = entry.get("seed_reference_seconds")
        if reference is not None and entry["cached_seconds"] > reference * max_seed_ratio:
            failures.append(
                f"{name}: cached pipeline {entry['cached_seconds']}s slower "
                f"than seed baseline {reference}s x {max_seed_ratio}"
            )
    return failures


def write_baseline(payload: dict, out: str | Path) -> Path:
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_pipeline.json",
        help="where to write the baseline JSON (default: BENCH_pipeline.json)",
    )
    parser.add_argument(
        "--adts", nargs="*", default=["QStack"], choices=builtin_names(),
        help="ADTs to measure (default: QStack, the paper's worked example)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="measurement rounds per configuration (best-of; default 3)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.0,
        help="required cached-vs-uncached speedup (default 1.0: no slower)",
    )
    parser.add_argument(
        "--max-seed-ratio", type=float, default=1.0,
        help="allowed cached time as a multiple of the recorded seed-commit "
             "reference (default 1.0: no slower than the seed)",
    )
    args = parser.parse_args(argv)

    payload = measure_pipeline(args.adts, rounds=args.rounds)
    path = write_baseline(payload, args.out)
    for name, entry in payload["results"].items():
        print(
            f"{name:12} uncached={entry['uncached_seconds']:.4f}s "
            f"cached={entry['cached_seconds']:.4f}s "
            f"speedup={entry['speedup']}x "
            f"hit_rate={entry['cache_hit_rate']} parity={entry['parity']}"
        )
    print(f"wrote {path}")

    failures = check_thresholds(payload, args.min_speedup, args.max_seed_ratio)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

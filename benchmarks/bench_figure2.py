"""Benchmark: rebuild the paper's Figure 2 object graph."""

from repro.experiments import figure2_qstack_graph as experiment

from _common import bench_experiment


def test_figure2_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

"""Benchmark X6: recovery-discipline valid-history comparison."""

from repro.experiments import discipline_experiment

from _common import bench_heavy_experiment


def test_x6_discipline_equivalence(benchmark):
    outcome = bench_heavy_experiment(benchmark, discipline_experiment.run)
    print()
    print(outcome.derived)

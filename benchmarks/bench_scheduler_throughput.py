"""BENCH_scheduler.json — the runtime scheduler's throughput baseline writer.

Drives identical seeded workloads through three schedulers — the frozen
seed-behaviour :class:`~repro.cc.reference.ReferenceScheduler`, the
optimized pure-Python :class:`~repro.cc.scheduler.TableDrivenScheduler`
(``compiled=False``, the PR 3 structures) and the **compiled** scheduler
(``compiled=True``, the default: integer conflict matrices, incremental
peer index, codegen executors — :mod:`repro.perf.codegen`) — verifies
all three produce bit-identical transcripts (decisions, dependency
edges, final states, seed counters), and records throughput (operations
and committed transactions per second) plus the speedups as a JSON
baseline.

The configurations deliberately stress the seed's weak spot: many
simultaneously active transactions over long operation histories, where
shadow-replay certification used to replay the whole log per pair.  The
``account_contention`` config is the acceptance workload — 10 active
transactions, a 250-operation commutative history — and is held to
``--min-speedup`` (optimized vs reference, default 3.0) *and*
``--min-compiled-speedup`` (compiled vs optimized, default 2.0).

Every measured callable is warmed up with one untimed round first, so
one-time costs (the ``exec`` of the codegen executors, derivation
caches) never pollute a best-of timing.

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler_throughput.py \
        --out BENCH_scheduler.json --min-speedup 3.0 --min-compiled-speedup 2.0

Exit status is non-zero when any config fails transcript parity or the
thresholded configs miss either speedup gate.  The CI scheduler bench
smoke job runs this, guards the fresh numbers against the committed
baseline with ``benchmarks/check_regression.py``, and uploads the JSON
as an artifact (see ``.github/workflows/ci.yml`` and
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adts.registry import make_adt  # noqa: E402
from repro.cc.harness import drive  # noqa: E402
from repro.cc.reference import ReferenceScheduler  # noqa: E402
from repro.cc.scheduler import TableDrivenScheduler  # noqa: E402
from repro.cc.workload import WorkloadConfig, generate  # noqa: E402
from repro.core.methodology import derive as derive_table  # noqa: E402

#: name -> (adt, workload config, policy, enforce --min-speedup).
#: ``account_contention`` is the acceptance workload: >=8 simultaneously
#: active transactions building a >=200-operation history (Deposits are
#: unconditionally commutative, so nothing blocks or aborts and every
#: certification runs against the full set of active peers).  The other
#: configs cover the blocking policy and a conflict-heavy mix; they are
#: parity-checked but not speed-thresholded (aborts keep their histories
#: short, so the seed's replay cost never dominates).  ``qstack_mixed``
#: runs blocking with bounded concurrency: under optimistic full
#: concurrency the mix is a guaranteed all-abort storm (committed: 0 —
#: every run certified against a dozen conflicting peers), which made
#: the config measure nothing; ``check_thresholds`` now fails any
#: config that commits nothing, so a silently dead workload breaks CI
#: instead of shipping a meaningless number.
CONFIGS: dict[str, dict] = {
    "account_contention": {
        "adt": "Account",
        "workload": WorkloadConfig(
            transactions=10,
            operations_per_transaction=25,
            operation_mix={"Deposit": 1.0},
            seed=11,
        ),
        "policy": "optimistic",
        "enforce": True,
        "enforce_compiled": True,
    },
    "account_blocking": {
        "adt": "Account",
        "workload": WorkloadConfig(
            transactions=10,
            operations_per_transaction=25,
            operation_mix={"Deposit": 1.0},
            seed=11,
        ),
        "policy": "blocking",
        "enforce": True,
    },
    "qstack_mixed": {
        "adt": "QStack",
        "workload": WorkloadConfig(
            transactions=12,
            operations_per_transaction=8,
            abort_probability=0.1,
            seed=1991,
        ),
        "policy": "blocking",
        "concurrency": 2,
        "enforce": False,
    },
}


def _best_of(fn, rounds: int) -> tuple[float, object]:
    """Best wall time over ``rounds`` runs, plus the last result.

    One untimed warm-up round runs first: the compiled scheduler pays
    its ``exec`` codegen cost on first use and all three pay assorted
    one-time caches, none of which is steady-state throughput.
    """
    fn()
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def measure_scheduler(
    config_names: list[str], rounds: int = 3
) -> dict:
    """The BENCH_scheduler.json payload for the named configs."""
    results = {}
    for name in config_names:
        spec = CONFIGS[name]
        adt = make_adt(spec["adt"])
        table = derive_table(adt).final_table
        workload = generate(adt, "obj", spec["workload"])
        policy = spec["policy"]
        concurrency = spec.get("concurrency")

        reference_seconds, reference = _best_of(
            lambda: drive(
                ReferenceScheduler(policy=policy), adt, table, workload,
                concurrency=concurrency,
            ),
            rounds,
        )
        optimized_seconds, optimized = _best_of(
            lambda: drive(
                TableDrivenScheduler(policy=policy, compiled=False),
                adt, table, workload, concurrency=concurrency,
            ),
            rounds,
        )
        compiled_seconds, compiled = _best_of(
            lambda: drive(
                TableDrivenScheduler(policy=policy, compiled=True),
                adt, table, workload, concurrency=concurrency,
            ),
            rounds,
        )
        counters = dict(compiled.seed_stats)
        executed = counters["operations_executed"]
        committed = len(compiled.committed())
        results[name] = {
            "adt": spec["adt"],
            "policy": policy,
            "concurrency": concurrency,
            "transactions": spec["workload"].transactions,
            "operations_requested": workload.total_operations(),
            "operations_executed": executed,
            "committed": committed,
            "reference_seconds": round(reference_seconds, 6),
            "optimized_seconds": round(optimized_seconds, 6),
            "compiled_seconds": round(compiled_seconds, 6),
            "speedup": round(reference_seconds / optimized_seconds, 3)
            if optimized_seconds
            else None,
            "compiled_speedup": round(reference_seconds / compiled_seconds, 3)
            if compiled_seconds
            else None,
            "optimized_vs_compiled": round(
                optimized_seconds / compiled_seconds, 3
            )
            if compiled_seconds
            else None,
            "ops_per_second": round(executed / compiled_seconds, 1)
            if compiled_seconds
            else None,
            "txns_per_second": round(committed / compiled_seconds, 1)
            if compiled_seconds
            else None,
            "reference_ops_per_second": round(executed / reference_seconds, 1)
            if reference_seconds
            else None,
            "parity": reference == optimized,
            "compiled_parity": reference == compiled,
            "enforce_speedup": spec["enforce"],
            "enforce_compiled": spec.get("enforce_compiled", False),
        }
    return {
        "benchmark": "scheduler_throughput",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": results,
    }


def check_thresholds(
    payload: dict, min_speedup: float, min_compiled_speedup: float = 2.0
) -> list[str]:
    """Threshold violations in a measured payload (empty = all good)."""
    failures = []
    for name, entry in payload["results"].items():
        if not entry["parity"]:
            failures.append(
                f"{name}: optimized and reference transcripts differ"
            )
        if not entry.get("compiled_parity", True):
            failures.append(
                f"{name}: compiled and reference transcripts differ"
            )
        if entry["committed"] <= 0:
            failures.append(
                f"{name}: nothing committed — the workload is silently "
                f"dead and measures nothing"
            )
        if (
            entry["enforce_speedup"]
            and entry["speedup"] is not None
            and entry["speedup"] < min_speedup
        ):
            failures.append(
                f"{name}: speedup {entry['speedup']}x below required "
                f"{min_speedup}x"
            )
        if (
            entry.get("enforce_compiled")
            and entry.get("optimized_vs_compiled") is not None
            and entry["optimized_vs_compiled"] < min_compiled_speedup
        ):
            failures.append(
                f"{name}: compiled-vs-optimized speedup "
                f"{entry['optimized_vs_compiled']}x below required "
                f"{min_compiled_speedup}x"
            )
    return failures


def write_baseline(payload: dict, out: str | Path) -> Path:
    path = Path(out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_scheduler.json",
        help="where to write the baseline JSON (default: BENCH_scheduler.json)",
    )
    parser.add_argument(
        "--configs", nargs="*", default=list(CONFIGS), choices=list(CONFIGS),
        help="workload configs to measure (default: all)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="measurement rounds per scheduler (best-of; default 3)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="required optimized-vs-reference speedup on enforced configs "
             "(default 3.0, the PR 3 acceptance bar)",
    )
    parser.add_argument(
        "--min-compiled-speedup", type=float, default=2.0,
        help="required compiled-vs-optimized speedup on enforce_compiled "
             "configs (default 2.0, the compiled-dispatch acceptance bar)",
    )
    args = parser.parse_args(argv)

    payload = measure_scheduler(args.configs, rounds=args.rounds)
    path = write_baseline(payload, args.out)
    for name, entry in payload["results"].items():
        print(
            f"{name:20} reference={entry['reference_seconds']:.4f}s "
            f"optimized={entry['optimized_seconds']:.4f}s "
            f"compiled={entry['compiled_seconds']:.4f}s "
            f"speedup={entry['speedup']}x "
            f"opt_vs_compiled={entry['optimized_vs_compiled']}x "
            f"ops/s={entry['ops_per_second']} "
            f"parity={entry['parity']}/{entry['compiled_parity']}"
        )
    print(f"wrote {path}")

    failures = check_thresholds(
        payload, args.min_speedup, args.min_compiled_speedup
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark X7: derived tables vs. the commutativity baseline."""

from repro.experiments import beyond_commutativity

from _common import bench_heavy_experiment


def test_x7_beyond_commutativity(benchmark):
    outcome = bench_heavy_experiment(benchmark, beyond_commutativity.run)
    print()
    print(outcome.derived)

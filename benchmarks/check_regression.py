"""Guard the committed benchmark baselines against perf regressions.

Compares freshly measured benchmark payloads against the committed
baseline JSON files (``BENCH_pipeline.json``, ``BENCH_scheduler.json``)
and fails when a *relative* metric regressed by more than the tolerance.

Only machine-independent ratios are compared — the cached-vs-uncached
pipeline speedup, the optimized-vs-reference scheduler speedup and the
compiled-vs-optimized scheduler speedup — never absolute seconds: CI
runners differ from the machines that wrote the baselines, but a
speedup is a ratio of two runs on the *same* machine, so it transfers.
Boolean parity flags (including ``compiled_parity``) must simply stay
true, and every config present in a baseline must still be present in
the fresh payload — a config that silently disappears from the results
dict is a failure, not a pass-by-omission.

Very large speedups (a 120x optimized-vs-reference scheduler ratio)
jitter by tens of percent run to run, so values are clamped to
``--cap`` (default 10) before comparing: a drop from 124x to 94x
passes, a collapse from 124x to 3x fails.

Usage::

    PYTHONPATH=src python benchmarks/baseline.py --out fresh_pipeline.json
    PYTHONPATH=src python benchmarks/bench_scheduler_throughput.py \
        --out fresh_scheduler.json
    python benchmarks/check_regression.py \
        fresh_pipeline.json=BENCH_pipeline.json \
        fresh_scheduler.json=BENCH_scheduler.json \
        --tolerance 0.2

Each positional argument is a ``FRESH=BASELINE`` pair; the benchmark
kind is read from the payload's ``benchmark`` field.  Exit status is
non-zero when any compared metric fell below ``baseline * (1 -
tolerance)`` or a parity flag flipped.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: benchmark kind -> extractor returning {metric name: value} where every
#: value is a machine-independent float (higher is better) or a bool.
def _pipeline_metrics(payload: dict) -> dict:
    metrics: dict[str, float | bool] = {}
    for adt, entry in payload["results"].items():
        metrics[f"{adt}.speedup"] = entry["speedup"]
        metrics[f"{adt}.parity"] = entry["parity"]
        total = entry.get("stage_speedups", {}).get("total")
        if total is not None:
            metrics[f"{adt}.stage_speedups.total"] = total
    return metrics


def _scheduler_metrics(payload: dict) -> dict:
    metrics: dict[str, float | bool] = {}
    for config, entry in payload["results"].items():
        metrics[f"{config}.parity"] = entry["parity"]
        if "compiled_parity" in entry:
            metrics[f"{config}.compiled_parity"] = entry["compiled_parity"]
        # Only configs the writer itself holds to a speedup bar are
        # regression-gated; the rest are parity-only by design.
        if entry.get("enforce_speedup") and entry["speedup"] is not None:
            metrics[f"{config}.speedup"] = entry["speedup"]
        if (
            entry.get("enforce_compiled")
            and entry.get("optimized_vs_compiled") is not None
        ):
            metrics[f"{config}.optimized_vs_compiled"] = entry[
                "optimized_vs_compiled"
            ]
    return metrics


def _obs_metrics(payload: dict) -> dict:
    results = payload["results"]
    metrics: dict[str, float | bool] = {
        "overhead.throughput_ratio": results["overhead"]["throughput_ratio"],
    }
    for flag, value in results["determinism"].items():
        if isinstance(value, bool):
            metrics[f"determinism.{flag}"] = value
    return metrics


def _serving_metrics(payload: dict) -> dict:
    results = payload["results"]
    metrics: dict[str, float | bool] = {}
    for config, entry in results.items():
        for flag in ("parity", "serializable", "audit_passed",
                     "no_resurrection"):
            if flag in entry:
                metrics[f"{config}.{flag}"] = entry[flag]
        # Serving throughput is *sim-time* goodput — deterministic from
        # the seed, so unlike wall-clock it transfers across machines
        # and the tolerance only absorbs intentional behaviour changes.
        if "sim_throughput" in entry:
            metrics[f"{config}.sim_throughput"] = entry["sim_throughput"]
    serial = results.get("account_serial", {}).get("sim_throughput")
    batched = results.get("account_batched", {}).get("sim_throughput")
    if serial and batched:
        metrics["batch_speedup"] = batched / serial
    adaptive = results.get("qstack_adaptive", {}).get("sim_throughput")
    statics = [
        entry["sim_throughput"]
        for config, entry in results.items()
        if config.startswith("qstack_static_")
    ]
    if adaptive and statics:
        metrics["adaptive_over_best_static"] = adaptive / max(statics)
    # The overload-hardening gate: committed work under 2x load plus
    # faults relative to nominal (graceful degradation, not per-time
    # throughput — fault stalls legitimately stretch the sim clock).
    nominal = results.get("qstack_overload_nominal", {}).get("goodput_ops")
    stressed = results.get("qstack_overload_faults", {}).get("goodput_ops")
    if nominal and stressed:
        metrics["degraded_goodput_ratio"] = stressed / nominal
    return metrics


_EXTRACTORS = {
    "pipeline": _pipeline_metrics,
    "scheduler_throughput": _scheduler_metrics,
    "obs": _obs_metrics,
    "serving": _serving_metrics,
}


def compare(
    fresh: dict, baseline: dict, tolerance: float, cap: float = 10.0
) -> list[str]:
    """Regressions of ``fresh`` against ``baseline`` (empty = all good)."""
    kind = baseline.get("benchmark")
    if fresh.get("benchmark") != kind:
        return [
            f"benchmark kind mismatch: fresh={fresh.get('benchmark')!r} "
            f"baseline={kind!r}"
        ]
    extractor = _EXTRACTORS.get(kind)
    if extractor is None:
        return [f"unknown benchmark kind {kind!r}"]
    fresh_metrics = extractor(fresh)
    failures = []
    # A config present in the baseline must still be measured: a rename
    # or a dropped entry must fail loudly, never pass by omission.
    fresh_results = fresh.get("results", {})
    for config in baseline.get("results", {}):
        if config not in fresh_results:
            failures.append(
                f"{kind}:{config}: config missing from fresh results"
            )
    for name, base_value in extractor(baseline).items():
        fresh_value = fresh_metrics.get(name)
        if fresh_value is None:
            failures.append(f"{kind}:{name}: missing from fresh payload")
        elif isinstance(base_value, bool):
            if base_value and not fresh_value:
                failures.append(f"{kind}:{name}: flipped to False")
        elif min(fresh_value, cap) < min(base_value, cap) * (1.0 - tolerance):
            failures.append(
                f"{kind}:{name}: {fresh_value} is more than "
                f"{tolerance:.0%} below baseline {base_value} "
                f"(both clamped to {cap})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "pairs", nargs="+", metavar="FRESH=BASELINE",
        help="fresh payload and committed baseline JSON paths",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional drop of a relative metric (default 0.2)",
    )
    parser.add_argument(
        "--cap", type=float, default=10.0,
        help="clamp speedups to this value before comparing (default 10)",
    )
    args = parser.parse_args(argv)

    failures = []
    for pair in args.pairs:
        if "=" not in pair:
            print(f"not a FRESH=BASELINE pair: {pair}", file=sys.stderr)
            return 2
        fresh_path, baseline_path = pair.split("=", 1)
        try:
            fresh = json.loads(Path(fresh_path).read_text())
            baseline = json.loads(Path(baseline_path).read_text())
        except (OSError, ValueError) as error:
            print(f"cannot load {pair}: {error}", file=sys.stderr)
            return 2
        pair_failures = compare(fresh, baseline, args.tolerance, args.cap)
        status = "FAIL" if pair_failures else "ok"
        print(
            f"{status}: {fresh_path} vs {baseline_path} "
            f"({baseline.get('benchmark')})"
        )
        failures.extend(pair_failures)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark: regenerate the paper's Table 5 (om template)."""

from repro.experiments import table05_om_template as experiment

from _common import bench_experiment


def test_table05_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

"""Benchmark: regenerate the paper's Table 12 via the methodology pipeline."""

from repro.experiments import table12_push_push as experiment

from _common import bench_experiment


def test_table12_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

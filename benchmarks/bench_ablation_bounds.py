"""Ablation: enumeration-bound sensitivity (DESIGN.md §5, decision 5).

The classifiers decide the paper's ``∃s``/``∀s`` quantifiers over a
bounded state space.  This ablation measures (a) the cost of growing the
bounds and (b) the stability of the derived artifacts: operation classes
and the Stage-3 table must not change from capacity 2 upward (XTop's
globality is the known capacity-3 artefact, tested separately).
"""

import pytest

from repro.adts.qstack import QStackSpec
from repro.core.classification import classify_all_operations
from repro.core.methodology import derive
from repro.experiments import golden

CAPACITIES = (2, 3, 4)


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_derivation_cost_by_capacity(benchmark, capacity):
    adt = QStackSpec(
        capacity=capacity, operations=golden.QSTACK_WORKED_OPERATIONS
    )
    result = benchmark.pedantic(derive, args=(adt,), rounds=1, iterations=1)
    assert result.final_table.is_complete()


def test_classification_stable_across_bounds():
    reference = None
    for capacity in CAPACITIES:
        classes = {
            name: op_class.name
            for name, op_class in classify_all_operations(
                QStackSpec(capacity=capacity)
            ).items()
        }
        if reference is None:
            reference = classes
        assert classes == reference, f"capacity {capacity} changed classes"


def test_stage3_table_stable_across_bounds():
    reference = None
    for capacity in CAPACITIES:
        adt = QStackSpec(
            capacity=capacity, operations=golden.QSTACK_WORKED_OPERATIONS
        )
        simple = {
            key: dep.name for key, dep in derive(adt).stage3_table.simple().items()
        }
        if reference is None:
            reference = simple
        assert simple == reference, f"capacity {capacity} changed the table"

"""Benchmark: regenerate the paper's Table 4 (omo template)."""

from repro.experiments import table04_omo_template as experiment

from _common import bench_experiment


def test_table04_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

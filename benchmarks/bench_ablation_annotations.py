"""Ablation: declared vs. derived Stage-2 characterisation (DESIGN.md §5.1).

The methodology's classifiers *compute* the D1-D5 answers by bounded
enumeration; the classical alternative is to trust hand annotations.  The
benchmark measures both paths over the QStack and asserts the tables they
produce are identical — the enumeration's cost buys freedom from
annotation drift, not different results.
"""

import pytest

from repro.adts.qstack import QStackSpec
from repro.core.methodology import MethodologyOptions, derive
from repro.core.profile import characterize_all, characterize_from_annotations

ADT = QStackSpec(operations=["Push", "Pop", "Deq", "Top", "Size"])


@pytest.mark.parametrize("mode", ["derived", "declared"])
def test_stage2_characterisation_cost(benchmark, mode):
    if mode == "derived":
        profiles = benchmark(characterize_all, ADT)
    else:
        profiles = benchmark(characterize_from_annotations, ADT)
    assert set(profiles) == set(ADT.operation_names())


@pytest.mark.parametrize("use_annotations", [False, True])
def test_full_derivation_cost(benchmark, use_annotations):
    options = MethodologyOptions(use_annotations=use_annotations)
    result = benchmark.pedantic(
        derive, args=(ADT,), kwargs={"options": options}, rounds=1, iterations=1
    )
    assert result.final_table.is_complete()


def test_modes_agree():
    annotated = derive(ADT, options=MethodologyOptions(use_annotations=True))
    enumerated = derive(ADT)
    assert annotated.final_table.diff(enumerated.final_table) == []

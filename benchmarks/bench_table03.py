"""Benchmark: regenerate the paper's Table 3 (no semantics)."""

from repro.experiments import table03_no_semantics as experiment

from _common import bench_experiment


def test_table03_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

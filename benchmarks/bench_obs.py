"""BENCH_obs.json — observability determinism and overhead baseline writer.

Runs one seeded two-shard chaos workload (message drops, delays,
duplicates, and reorders) in three configurations:

1. **Determinism** — twice with tracing on (a :class:`JsonlTracer` into an
   in-memory buffer): the JSONL traces and the rendered ``repro report``
   dashboards must be byte-identical run over run.
2. **Transparency** — once with the :class:`NullTracer`: the distributed
   transcript (statuses, final shard states) must match the traced runs
   bit-for-bit, i.e. tracing never perturbs the simulation.
3. **Overhead** — N interleaved wall-time rounds with tracing off and
   on; the best paired round's traced throughput must stay at least
   ``--min-ratio`` (default 0.9) of the untraced throughput.

Determinism uses a small chaos workload (seconds); the overhead pair is
sized so the scheduler's quadratic certification work (every request
checks against all simultaneously active peers) dominates the linear
per-event serialization cost — the ratio then measures the tracer's
marginal cost on a contended run, not a serialization microbenchmark.
Timing runs with the GC paused, standard benchmarking hygiene for
allocation-heavy code paths.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py \
        --out BENCH_obs.json --report-out report.txt --min-ratio 0.9

Exit status is non-zero on any determinism/transparency mismatch or a
missed overhead ratio.  The CI obs smoke job runs this twice, ``cmp``-s
the two ``--report-out`` files, and uploads the JSON as an artifact (see
``.github/workflows/ci.yml`` and ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import gc
import io
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adts.registry import make_adt  # noqa: E402
from repro.cc.workload import WorkloadConfig, generate  # noqa: E402
from repro.core.methodology import derive  # noqa: E402
from repro.dist import Cluster  # noqa: E402
from repro.obs.analysis import render_dashboard  # noqa: E402
from repro.obs.tracers import NULL_TRACER, JsonlTracer, read_trace  # noqa: E402
from repro.robust import FaultPlan, FaultSpec  # noqa: E402

ADT_NAME = "Account"
SHARDS = 2
SEED = 1991
FAULT_SEED = 7
#: Determinism/transparency workload: small, full chaos mix.
WORKLOAD = WorkloadConfig(
    transactions=24,
    operations_per_transaction=8,
    seed=SEED,
)
#: Overhead workload: enough simultaneously active transactions that
#: per-request certification against active peers (quadratic) dwarfs the
#: per-event serialization (linear) — the regime the 0.9x gate targets.
OVERHEAD_WORKLOAD = WorkloadConfig(
    transactions=128,
    operations_per_transaction=12,
    seed=SEED,
)
FAULTS = FaultSpec(
    msg_drop_rate=0.02,
    msg_delay_rate=0.05,
    msg_duplicate_rate=0.03,
    msg_reorder_rate=0.03,
)


def _run(adt, table, workload, tracer):
    """One seeded chaos run; returns ``(transcript, cluster)``.

    The fault plan is rebuilt per run — it draws from seeded streams, so
    a fresh plan is what makes two runs byte-comparable.
    """
    cluster = Cluster(
        adt,
        table,
        shards=SHARDS,
        policy="blocking",
        fault_plan=FaultPlan(FAULT_SEED, spec=FAULTS),
        tracer=tracer,
    )
    transcript = cluster.run(workload, seed=SEED)
    return transcript, cluster


def _traced_run(adt, table, workload):
    """One traced run; returns ``(transcript, trace_text, report_text)``."""
    buffer = io.StringIO()
    tracer = JsonlTracer(buffer)
    transcript, _cluster = _run(adt, table, workload, tracer)
    tracer.close()
    trace_text = buffer.getvalue()
    events = read_trace(io.StringIO(trace_text))
    return transcript, trace_text, render_dashboard(events)


def _paired_rounds(untraced, traced, rounds: int) -> list[tuple[float, float]]:
    """Per-round ``(untraced_seconds, traced_seconds)`` wall-time pairs.

    The runs are interleaved — adjacent runs see the same throttle
    phase — and the caller gates on the *best* paired ratio across
    rounds: CI wall clocks drift by tens of percent over a minute, and
    noise only ever slows a run down, so the round with the highest
    ratio is the least noise-contaminated estimate of the true tracing
    overhead.  A real regression (tracing suddenly costing 2x) drags
    every round down and still fails the gate.
    """
    pairs = []
    gc.collect()
    gc.disable()
    try:
        for _ in range(rounds):
            started = time.perf_counter()
            untraced()
            untraced_seconds = time.perf_counter() - started
            started = time.perf_counter()
            traced()
            traced_seconds = time.perf_counter() - started
            pairs.append((untraced_seconds, traced_seconds))
    finally:
        gc.enable()
    return pairs


def measure_obs(rounds: int = 3) -> tuple[dict, str]:
    """The BENCH_obs.json payload plus the rendered dashboard."""
    adt = make_adt(ADT_NAME)
    table = derive(adt).final_table
    workload = generate(adt, "shared", WORKLOAD)

    first_transcript, first_trace, first_report = _traced_run(
        adt, table, workload
    )
    second_transcript, second_trace, second_report = _traced_run(
        adt, table, workload
    )
    untraced_transcript, _ = _run(adt, table, workload, NULL_TRACER)

    overhead_workload = generate(adt, "shared", OVERHEAD_WORKLOAD)
    traced_events = [0]

    def _timed_traced():
        tracer = JsonlTracer(io.StringIO())
        _run(adt, table, overhead_workload, tracer)
        traced_events[0] = tracer.emitted
        tracer.close()

    # Times the simulation with live event serialization only; parsing
    # the trace back and rendering the dashboard is offline analysis,
    # not tracing overhead.
    pairs = _paired_rounds(
        lambda: _run(adt, table, overhead_workload, NULL_TRACER),
        _timed_traced,
        rounds,
    )
    untraced_seconds, traced_seconds = max(
        pairs, key=lambda pair: pair[0] / pair[1]
    )

    committed = sum(
        1 for _gtxn, status in first_transcript.statuses
        if status == "COMMITTED"
    )
    payload = {
        "benchmark": "obs",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": {
            "determinism": {
                "adt": ADT_NAME,
                "shards": SHARDS,
                "seed": SEED,
                "fault_seed": FAULT_SEED,
                "transactions": WORKLOAD.transactions,
                "committed": committed,
                "trace_events": first_trace.count("\n"),
                "trace_bytes_stable": first_trace == second_trace,
                "report_bytes_stable": first_report == second_report,
                "transcript_transparent": (
                    first_transcript == second_transcript
                    == untraced_transcript
                ),
            },
            "overhead": {
                "rounds": rounds,
                "transactions": OVERHEAD_WORKLOAD.transactions,
                "operations": OVERHEAD_WORKLOAD.operations_per_transaction,
                "trace_events": traced_events[0],
                "round_pairs": [
                    [round(u, 6), round(t, 6)] for u, t in pairs
                ],
                "untraced_seconds": round(untraced_seconds, 6),
                "traced_seconds": round(traced_seconds, 6),
                "throughput_ratio": round(
                    untraced_seconds / traced_seconds, 3
                )
                if traced_seconds
                else None,
            },
        },
    }
    return payload, first_report


def check_payload(payload: dict, min_ratio: float) -> list[str]:
    """Threshold violations in a measured payload (empty = all good)."""
    failures = []
    determinism = payload["results"]["determinism"]
    for flag in (
        "trace_bytes_stable", "report_bytes_stable", "transcript_transparent"
    ):
        if not determinism[flag]:
            failures.append(f"determinism: {flag} is False")
    ratio = payload["results"]["overhead"]["throughput_ratio"]
    if ratio is not None and ratio < min_ratio:
        failures.append(
            f"overhead: traced throughput ratio {ratio} below "
            f"required {min_ratio}"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="BENCH_obs.json",
        help="where to write the baseline JSON (default: BENCH_obs.json)",
    )
    parser.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="also write the rendered dashboard to FILE (for CI cmp)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="interleaved untraced/traced measurement rounds; the gate "
             "uses the best paired ratio (default 3 — each overhead "
             "round runs ~20s by design)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.9,
        help="required traced-vs-untraced throughput ratio (default 0.9)",
    )
    args = parser.parse_args(argv)

    payload, report = measure_obs(rounds=args.rounds)
    path = Path(args.out)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if args.report_out:
        Path(args.report_out).write_text(report)
        print(f"wrote {args.report_out}")
    determinism = payload["results"]["determinism"]
    overhead = payload["results"]["overhead"]
    print(
        f"determinism: trace_stable={determinism['trace_bytes_stable']} "
        f"report_stable={determinism['report_bytes_stable']} "
        f"transparent={determinism['transcript_transparent']} "
        f"events={determinism['trace_events']}"
    )
    print(
        f"overhead: untraced={overhead['untraced_seconds']:.4f}s "
        f"traced={overhead['traced_seconds']:.4f}s "
        f"ratio={overhead['throughput_ratio']}"
    )
    print(f"wrote {path}")

    failures = check_payload(payload, args.min_ratio)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark: the commit-time validation scheduler.

Throughput of the intentions-list discipline and the effectiveness of the
compatibility table as a validation filter (fraction of commits certified
without re-execution).
"""

import random

from repro.adts.account import AccountSpec
from repro.cc.validation import ValidationScheduler
from repro.core.methodology import derive
from repro.spec.operation import Invocation

ADT = AccountSpec()
TABLE = derive(ADT).final_table


def _drive(seed: int = 3, transactions: int = 40) -> ValidationScheduler:
    rng = random.Random(seed)
    scheduler = ValidationScheduler()
    scheduler.register_object("acct", ADT, TABLE, initial_state=2)
    invocations = ADT.invocations()
    active = []
    for _ in range(transactions):
        txn = scheduler.begin()
        for _ in range(rng.randint(1, 3)):
            scheduler.request(txn, "acct", rng.choice(invocations))
        active.append(txn)
        if len(active) >= 4:  # commit in overlapping batches
            scheduler.try_commit(active.pop(rng.randrange(len(active))))
    for txn in active:
        scheduler.try_commit(txn)
    return scheduler


def test_validation_scheduler_throughput(benchmark):
    scheduler = benchmark(_drive)
    stats = scheduler.stats
    assert stats.commits > 0
    print(
        f"\ncommits={stats.commits} validation_aborts={stats.validation_aborts} "
        f"skipped-by-table={stats.validations_skipped_by_table} "
        f"validated={stats.validations_run}"
    )


def test_table_filter_skips_validations():
    stats = _drive().stats
    # The derived table certifies a meaningful share of commits without
    # re-execution (Deposits dominate the mix's commuting pairs).
    assert stats.validations_skipped_by_table > 0

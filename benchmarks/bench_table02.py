"""Benchmark: regenerate the paper's Table 2 (locality template)."""

from repro.experiments import table02_locality_template as experiment

from _common import bench_experiment


def test_table02_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

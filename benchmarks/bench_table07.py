"""Benchmark: regenerate the paper's Table 7 (mm sc template)."""

from repro.experiments import table07_mm_sc_template as experiment

from _common import bench_experiment


def test_table07_regeneration(benchmark):
    bench_experiment(benchmark, experiment.run)

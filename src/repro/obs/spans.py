"""Causal tracing: span contexts, emission, and cross-node stitching.

The distributed stack answers "which node/phase dominated this
transaction's latency" with classic span-based tracing scaled down to the
simulator:

* every global transaction owns one **trace** (``trace_id = g<gtxn>``)
  whose root ``txn`` span the cluster driver opens at admission and
  closes at resolution;
* protocol phases — each operation forward, each 2PC commit attempt with
  its per-participant ``prepare``/``decide`` legs, aborts, RPC retries,
  post-crash termination queries — are child spans, their parentage
  carried across the bus inside the message envelope
  (:class:`repro.dist.bus.Message` ``span`` field);
* participant nodes open ``sched.*`` child spans around the local
  scheduler work a delivered message triggers.

Spans are emitted as single :class:`~repro.obs.events.SpanRecorded`
events at close (start/end both recorded), so a JSONL trace needs no
begin/end pairing and a crashed span can still be closed from a
``finally``.  Span ids are ``<actor>:<n>`` with a per-emitter counter —
deterministic for a seeded run and collision-free across actors.

The zero-overhead contract holds: with the falsy
:class:`~repro.obs.tracers.NullTracer` every ``start``/``child`` call
returns the shared :data:`NULL_SPAN` without minting an id or touching
the clock, and instrumented code never branches on tracing elsewhere.

:func:`build_span_trees` reconstructs the per-trace span forest from a
trace (tolerating duplicates and orphans, which it reports instead of
mis-parenting), and :func:`critical_path` walks a tree along its
longest-duration children — the per-transaction answer the ``report``
CLI prints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.obs.events import SpanRecorded, TraceEvent

__all__ = [
    "NULL_SPAN",
    "SpanEmitter",
    "SpanNode",
    "SpanForest",
    "build_span_trees",
    "critical_path",
    "render_critical_path",
    "trace_id_for",
]

#: The empty span context: no trace, no parent.
_NO_CONTEXT: tuple[str, str] = ("", "")


def trace_id_for(gtxn: int) -> str:
    """The trace id of one global transaction."""
    return f"g{gtxn}"


class _NullSpan:
    """The span of an untraced run: context-less, finish is a no-op."""

    __slots__ = ()

    context: tuple[str, str] = _NO_CONTEXT

    def finish(self, status: str = "ok") -> None:
        pass


#: Shared do-nothing span (the null emitter path allocates nothing).
NULL_SPAN = _NullSpan()


class _OpenSpan:
    """A started span; :meth:`finish` emits the ``SpanRecorded`` event."""

    __slots__ = (
        "_emitter", "trace_id", "span_id", "parent", "name", "gtxn",
        "detail", "start",
    )

    def __init__(
        self,
        emitter: "SpanEmitter",
        trace_id: str,
        span_id: str,
        parent: str,
        name: str,
        gtxn: int,
        detail: str,
        start: float,
    ) -> None:
        self._emitter = emitter
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent = parent
        self.name = name
        self.gtxn = gtxn
        self.detail = detail
        self.start = start

    @property
    def context(self) -> tuple[str, str]:
        """``(trace_id, span_id)`` — what travels in message envelopes."""
        return (self.trace_id, self.span_id)

    def finish(self, status: str = "ok") -> None:
        emitter = self._emitter
        end = emitter.clock()
        emitter.tracer.emit(
            SpanRecorded(
                time=end,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_span_id=self.parent,
                name=self.name,
                node=emitter.actor,
                gtxn=self.gtxn,
                start=self.start,
                end=end,
                status=status,
                detail=self.detail,
            )
        )


class SpanEmitter:
    """Mints deterministic span ids for one actor and emits closed spans.

    ``clock`` is a zero-argument callable returning the actor's current
    sim-time (``bus.now`` in the cluster).  With a falsy tracer both
    constructors return :data:`NULL_SPAN` and the id counter never
    advances, so traced and untraced runs differ only in emitted events.
    """

    __slots__ = ("actor", "tracer", "clock", "_ids")

    def __init__(self, actor: str, tracer, clock: Callable[[], float]) -> None:
        self.actor = actor
        self.tracer = tracer
        self.clock = clock
        self._ids = itertools.count()

    def start(self, trace_id: str, name: str, gtxn: int = -1, detail: str = ""):
        """Open a root span of ``trace_id`` (no parent)."""
        if not self.tracer:
            return NULL_SPAN
        return _OpenSpan(
            self,
            trace_id,
            f"{self.actor}:{next(self._ids)}",
            "",
            name,
            gtxn,
            detail,
            self.clock(),
        )

    def child(
        self,
        context: tuple[str, str],
        name: str,
        gtxn: int = -1,
        detail: str = "",
    ):
        """Open a span under ``context`` (a ``(trace_id, span_id)`` pair).

        An empty context — from an untraced sender — yields
        :data:`NULL_SPAN`, so parentage never crosses a tracing boundary.
        """
        if not self.tracer or not context[0]:
            return NULL_SPAN
        return _OpenSpan(
            self,
            context[0],
            f"{self.actor}:{next(self._ids)}",
            context[1],
            name,
            gtxn,
            detail,
            self.clock(),
        )


# ---------------------------------------------------------------------------
# Stitching
# ---------------------------------------------------------------------------

@dataclass
class SpanNode:
    """One span in a reconstructed tree."""

    event: SpanRecorded
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.event.end - self.event.start

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans (clamped at zero)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class SpanForest:
    """Every span tree of a trace, keyed by trace id.

    ``orphans`` are spans whose recorded parent never appears in the
    trace; ``duplicates`` are spans whose id was already taken.  Both are
    surfaced (not silently grafted) so the transparency property tests
    can assert their absence.
    """

    trees: dict[str, list[SpanNode]] = field(default_factory=dict)
    orphans: list[SpanRecorded] = field(default_factory=list)
    duplicates: list[SpanRecorded] = field(default_factory=list)

    def roots_by_gtxn(self) -> dict[int, list[SpanNode]]:
        """Root spans of transaction traces, keyed by gtxn."""
        result: dict[int, list[SpanNode]] = {}
        for roots in self.trees.values():
            for root in roots:
                if root.event.gtxn >= 0:
                    result.setdefault(root.event.gtxn, []).append(root)
        return result


def build_span_trees(events: Sequence[TraceEvent]) -> SpanForest:
    """Reconstruct the span forest from a trace's ``SpanRecorded`` events."""
    forest = SpanForest()
    nodes: dict[str, SpanNode] = {}
    spans: list[SpanRecorded] = []
    for event in events:
        if not isinstance(event, SpanRecorded):
            continue
        if event.span_id in nodes:
            forest.duplicates.append(event)
            continue
        nodes[event.span_id] = SpanNode(event=event)
        spans.append(event)
    for event in spans:
        node = nodes[event.span_id]
        if not event.parent_span_id:
            forest.trees.setdefault(event.trace_id, []).append(node)
        elif event.parent_span_id in nodes:
            nodes[event.parent_span_id].children.append(node)
        else:
            forest.orphans.append(event)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.event.start, n.event.span_id))
    for roots in forest.trees.values():
        roots.sort(key=lambda n: (n.event.start, n.event.span_id))
    return forest


def critical_path(root: SpanNode) -> list[SpanNode]:
    """Root-to-leaf path descending into the longest-duration child.

    Ties break on earliest start then span id, so the path — and
    everything rendered from it — is deterministic for a given trace.
    """
    path = [root]
    node = root
    while node.children:
        node = max(
            node.children,
            key=lambda n: (n.duration, -n.event.start),
        )
        # max() keeps the first of equal keys; children are already
        # sorted by (start, span_id), so ties resolve deterministically.
        path.append(node)
    return path


def render_critical_path(root: SpanNode) -> str:
    """One-line rendering of a tree's critical path."""
    parts = []
    for node in critical_path(root):
        event = node.event
        where = event.node + (f"->{event.detail}" if event.detail else "")
        parts.append(f"{event.name}[{where}] {node.duration:.2f}")
    return " > ".join(parts)

"""Typed, immutable trace events of the scheduler stack.

Every decision the table-driven concurrency-control stack takes —
operation granted, operation blocked, dependency recorded (with the exact
table entry and the evaluated condition that produced it), commit, abort,
cascade, deadlock resolution, derivation-stage timing — is representable
as one frozen dataclass here.  Events carry only JSON-friendly primitives
(strings, numbers, tuples), so a trace serialises losslessly to JSONL and
back without importing the scheduler: the analysis layer reconstructs
invocations and states from the ``repr`` strings recorded at emission
time.

The event vocabulary deliberately mirrors the observables of the paper's
Section-5 refinement claims: a :class:`DependencyRecorded` event names the
``(invoked, executing)`` operation pair, the full compatibility-table
entry, the condition that held, and which evidence source (table entry,
locality intersection, or shadow-return certification) was decisive — so
"the refined table extracted more concurrency" is inspectable per
decision, not only in post-hoc aggregates.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, fields
from typing import Any, ClassVar

__all__ = [
    "TraceEvent",
    "RunStarted",
    "ObjectRegistered",
    "TxnBegun",
    "OpRequested",
    "OpGranted",
    "OpBlocked",
    "DependencyRecorded",
    "CommitWaited",
    "TxnCommitted",
    "TxnAborted",
    "CascadeAborted",
    "DeadlockResolved",
    "StageTimed",
    "RunCompleted",
    "FaultInjected",
    "CrashInduced",
    "RecoveryStarted",
    "RecoveryCompleted",
    "InvariantViolated",
    "DegradedMode",
    "RestartsExhausted",
    "MessageSent",
    "MessageDropped",
    "PartitionOpened",
    "TwoPCVoted",
    "TwoPCDecided",
    "NodeCrashed",
    "NodeRecovered",
    "LogShipped",
    "ViewChanged",
    "PrimaryFenced",
    "ReplicaReadServed",
    "SpanRecorded",
    "RequestArrived",
    "RequestAdmitted",
    "PolicySwitched",
    "RequestShed",
    "DeadlineExceeded",
    "BreakerStateChanged",
    "DegradationStep",
    "event_from_dict",
    "event_type_names",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base of all trace events: a timestamp plus a registered type tag."""

    #: Class-level type tag used in serialised form; set per subclass.
    type: ClassVar[str] = "event"

    time: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation: ``{"type": ..., **fields}``."""
        cls = type(self)
        keys = cls.__dict__.get("_dict_keys")
        if keys is None:
            # Cache the key tuple and a C-level attribute reader per
            # subclass; dataclasses.fields re-derives its metadata on
            # every call, which dominates hot tracing.
            names = tuple(field.name for field in fields(self))
            keys = ("type",) + names
            cls._dict_keys = keys
            cls._dict_values = operator.attrgetter(*names)
        values = cls._dict_values(self)
        if len(keys) == 2:  # attrgetter of one name returns a bare value
            values = (values,)
        return dict(zip(keys, (self.type,) + values))


_EVENT_TYPES: dict[str, type[TraceEvent]] = {}


def _register(cls: type[TraceEvent]) -> type[TraceEvent]:
    _EVENT_TYPES[cls.type] = cls
    return cls


@_register
@dataclass(frozen=True)
class RunStarted(TraceEvent):
    """A simulated run began under the given scheduling policy."""

    type: ClassVar[str] = "run_started"
    policy: str = ""
    seed: int | None = None


@_register
@dataclass(frozen=True)
class ObjectRegistered(TraceEvent):
    """A shared object joined the run.

    ``initial_state`` is the ``repr`` of the object's abstract initial
    state; trace-based replay parses it back with
    :func:`repro.obs.analysis.parse_literal`.
    """

    type: ClassVar[str] = "object_registered"
    object_name: str = ""
    adt: str = ""
    initial_state: str = ""


@_register
@dataclass(frozen=True)
class TxnBegun(TraceEvent):
    """A transaction entered the system."""

    type: ClassVar[str] = "txn_begun"
    txn: int = -1


@_register
@dataclass(frozen=True)
class OpRequested(TraceEvent):
    """A transaction asked to run an operation on a shared object."""

    type: ClassVar[str] = "op_requested"
    txn: int = -1
    object_name: str = ""
    operation: str = ""
    args: str = "()"


@_register
@dataclass(frozen=True)
class OpGranted(TraceEvent):
    """The operation executed; ``sequence`` is the global execution stamp."""

    type: ClassVar[str] = "op_granted"
    txn: int = -1
    object_name: str = ""
    operation: str = ""
    args: str = "()"
    outcome: str | None = None
    result: str = "None"
    sequence: int = 0


@_register
@dataclass(frozen=True)
class OpBlocked(TraceEvent):
    """Blocking policy: an AD verdict stalled the requester."""

    type: ClassVar[str] = "op_blocked"
    txn: int = -1
    object_name: str = ""
    operation: str = ""
    args: str = "()"
    blocked_on: tuple[int, ...] = ()


@_register
@dataclass(frozen=True)
class DependencyRecorded(TraceEvent):
    """An AD/CD edge was recorded between two transactions.

    ``entry`` is the full compatibility-table entry consulted for the
    decisive operation pair, ``condition`` the (rendered) condition that
    held during resolution (empty when the entry fell back to its
    strongest dependency), and ``source`` names the decisive evidence:
    ``"table"`` (the resolved entry), ``"locality"`` (the live Section-4.3
    locality intersection escalated the verdict) or ``"shadow-return"``
    (the replay certification escalated to AD).
    """

    type: ClassVar[str] = "dependency_recorded"
    txn: int = -1
    other_txn: int = -1
    object_name: str = ""
    invoked: str = ""
    executing: str = ""
    dependency: str = "ND"
    entry: str = ""
    condition: str = ""
    source: str = "table"


@_register
@dataclass(frozen=True)
class CommitWaited(TraceEvent):
    """A commit attempt stalled on unresolved predecessors."""

    type: ClassVar[str] = "commit_waited"
    txn: int = -1
    waiting_on: tuple[int, ...] = ()


@_register
@dataclass(frozen=True)
class TxnCommitted(TraceEvent):
    """A transaction committed; ``commit_sequence`` is the commit stamp."""

    type: ClassVar[str] = "txn_committed"
    txn: int = -1
    commit_sequence: int = 0


@_register
@dataclass(frozen=True)
class TxnAborted(TraceEvent):
    """A transaction aborted; ``reason`` names the trigger."""

    type: ClassVar[str] = "txn_aborted"
    txn: int = -1
    #: "requested" (voluntary), "dependency-cycle", "deadlock-victim",
    #: "ad-predecessor-aborted" or "replay-invalidated".
    reason: str = "requested"


@_register
@dataclass(frozen=True)
class CascadeAborted(TraceEvent):
    """A transaction was dragged down by an AD cascade from ``root``."""

    type: ClassVar[str] = "cascade_aborted"
    txn: int = -1
    root: int = -1


@_register
@dataclass(frozen=True)
class DeadlockResolved(TraceEvent):
    """A wait-for cycle was found and broken by aborting ``victim``."""

    type: ClassVar[str] = "deadlock_resolved"
    victim: int = -1
    cycle: tuple[int, ...] = ()


@_register
@dataclass(frozen=True)
class StageTimed(TraceEvent):
    """One derivation-pipeline stage finished (methodology profiling)."""

    type: ClassVar[str] = "stage_timed"
    adt: str = ""
    stage: str = ""
    seconds: float = 0.0
    table_entries: int = 0
    conditional_entries: int = 0


@_register
@dataclass(frozen=True)
class RunCompleted(TraceEvent):
    """A simulated run finished; final object states are recorded by repr."""

    type: ClassVar[str] = "run_completed"
    committed: int = 0
    aborted: int = 0
    final_states: tuple[tuple[str, str], ...] = ()


@_register
@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """A deterministic fault plan fired at a named fault point.

    ``kind`` is the fault-point name (``spurious_abort``, ``op_failure``,
    ``commit_delay``, ``cache_poison``, ``crash``), ``txn`` the affected
    transaction (``-1`` for scheduler-wide faults like crashes and cache
    poisoning) and ``detail`` a short free-form qualifier.
    """

    type: ClassVar[str] = "fault_injected"
    kind: str = ""
    txn: int = -1
    detail: str = ""


@_register
@dataclass(frozen=True)
class CrashInduced(TraceEvent):
    """The scheduler process was killed by the fault plan.

    Everything not reconstructible from the durable decision log is lost;
    a :class:`RecoveryStarted`/:class:`RecoveryCompleted` pair follows
    when a decision log is attached.
    """

    type: ClassVar[str] = "crash_induced"
    #: Decision-log records available to the recovery that follows.
    log_records: int = 0


@_register
@dataclass(frozen=True)
class RecoveryStarted(TraceEvent):
    """Crash recovery began: the decision log is about to be replayed."""

    type: ClassVar[str] = "recovery_started"
    log_records: int = 0


@_register
@dataclass(frozen=True)
class RecoveryCompleted(TraceEvent):
    """Crash recovery finished; the rebuilt scheduler is live again.

    ``replayed`` counts the decision-log records replayed and verified;
    ``verified`` is ``False`` only when outcome verification was skipped.
    """

    type: ClassVar[str] = "recovery_completed"
    replayed: int = 0
    verified: bool = True


@_register
@dataclass(frozen=True)
class InvariantViolated(TraceEvent):
    """A monitored invariant failed its periodic check.

    ``invariant`` names the check (``acyclicity``, ``serializability``,
    ``shadow_freshness``); ``detail`` describes the violation.
    """

    type: ClassVar[str] = "invariant_violated"
    invariant: str = ""
    detail: str = ""


@_register
@dataclass(frozen=True)
class DegradedMode(TraceEvent):
    """The monitor fell back to bit-parity reference execution.

    Emitted after fast-path quarantine failed to clear the violation;
    ``reason`` names the invariant that kept failing.
    """

    type: ClassVar[str] = "degraded_mode"
    reason: str = ""


@_register
@dataclass(frozen=True)
class RestartsExhausted(TraceEvent):
    """A restarted program hit its restart ceiling and finished aborted.

    Makes the simulator's livelock-avoidance observable: without this
    event (and the matching ``RunMetrics.restarts_exhausted`` counter) a
    program silently stopped being retried.
    """

    type: ClassVar[str] = "restarts_exhausted"
    txn: int = -1
    restarts: int = 0


@_register
@dataclass(frozen=True)
class MessageSent(TraceEvent):
    """The distributed bus accepted a message for delivery.

    ``kind`` is the protocol message kind (``op``, ``prepare``, ``vote``,
    ``decide`` …); ``deliver_at`` the scheduled sim-time delivery.
    """

    type: ClassVar[str] = "message_sent"
    src: str = ""
    dst: str = ""
    kind: str = ""
    gtxn: int = -1
    deliver_at: float = 0.0


@_register
@dataclass(frozen=True)
class MessageDropped(TraceEvent):
    """A bus message was lost: a fault, a partition, or a dead endpoint."""

    type: ClassVar[str] = "message_dropped"
    src: str = ""
    dst: str = ""
    kind: str = ""
    gtxn: int = -1
    #: ``fault`` (msg_drop fired), ``partition``, or ``endpoint-down``.
    reason: str = ""


@_register
@dataclass(frozen=True)
class PartitionOpened(TraceEvent):
    """A bidirectional network partition opened between two endpoints."""

    type: ClassVar[str] = "partition_opened"
    a: str = ""
    b: str = ""
    heals_at: float = 0.0


@_register
@dataclass(frozen=True)
class TwoPCVoted(TraceEvent):
    """A participant answered a PREPARE.

    ``vote`` is ``yes`` (with the shipped AD/CD predecessor gtxn sets in
    ``ad``/``cd``), ``wait`` (an unresolved commit-dependency holds the
    vote back) or ``no``.
    """

    type: ClassVar[str] = "twopc_voted"
    node: str = ""
    gtxn: int = -1
    vote: str = ""
    ad: tuple = ()
    cd: tuple = ()


@_register
@dataclass(frozen=True)
class TwoPCDecided(TraceEvent):
    """The coordinator reached a global decision for a transaction.

    ``decision`` is ``commit`` (durably logged before any COMMIT is sent
    — presumed abort means only commits are logged) or ``abort``;
    ``participants`` the nodes the decision is shipped to.
    """

    type: ClassVar[str] = "twopc_decided"
    gtxn: int = -1
    decision: str = ""
    participants: tuple = ()
    one_phase: bool = False


@_register
@dataclass(frozen=True)
class NodeCrashed(TraceEvent):
    """A simulated node (or the coordinator) lost its volatile state."""

    type: ClassVar[str] = "node_crashed"
    node: str = ""
    log_records: int = 0


@_register
@dataclass(frozen=True)
class NodeRecovered(TraceEvent):
    """A crashed node finished log replay and in-doubt resolution.

    ``in_doubt`` counts the prepared-but-undecided transactions the
    termination protocol had to resolve with the coordinator.
    """

    type: ClassVar[str] = "node_recovered"
    node: str = ""
    replayed: int = 0
    in_doubt: int = 0


@_register
@dataclass(frozen=True)
class LogShipped(TraceEvent):
    """A primary shipped a batch of DecisionLog records to a backup.

    ``lag`` is the backup's replication lag *before* this batch: the
    number of durable primary records the backup had not yet
    acknowledged (the replication-lag watermark distance).
    """

    type: ClassVar[str] = "log_shipped"
    primary: str = ""
    backup: str = ""
    #: Index of the first record in the batch; the batch spans
    #: ``[from_index, from_index + count)`` of the primary's log.
    from_index: int = 0
    count: int = 0
    lag: int = 0


@_register
@dataclass(frozen=True)
class ViewChanged(TraceEvent):
    """A replica group entered a new epoch, promoting a backup.

    ``promoted`` is the backup instance that assumed the primary role
    (and the primary's bus name); ``log_records`` the length of the log
    it was promoted with — the most-caught-up-backup certificate.
    """

    type: ClassVar[str] = "view_changed"
    shard: str = ""
    primary: str = ""
    promoted: str = ""
    epoch: int = 0
    log_records: int = 0
    #: Prepared-but-undecided gtxns the promoted primary must resolve.
    in_doubt: int = 0


@_register
@dataclass(frozen=True)
class PrimaryFenced(TraceEvent):
    """A stale-epoch message was rejected instead of applied.

    Emitted by the receiving group member when a message stamped with an
    older epoch arrives — a deposed primary's in-flight traffic (2PC
    PREPARE/decide legs included) bouncing off the fence.
    """

    type: ClassVar[str] = "primary_fenced"
    node: str = ""
    src: str = ""
    kind: str = ""
    gtxn: int = -1
    message_epoch: int = 0
    current_epoch: int = 0


@_register
@dataclass(frozen=True)
class ReplicaReadServed(TraceEvent):
    """A backup answered a snapshot observer read at its watermark."""

    type: ClassVar[str] = "replica_read_served"
    backup: str = ""
    shard: str = ""
    operation: str = ""
    #: The backup's applied-record watermark the read was served at.
    watermark: int = 0


@_register
@dataclass(frozen=True)
class SpanRecorded(TraceEvent):
    """One closed causal-tracing span (see :mod:`repro.obs.spans`).

    Spans are emitted once, at close: ``start``/``end`` bound the
    interval in sim-time (``time`` equals ``end``), ``trace_id`` groups
    every span of one global transaction (``g<gtxn>``), and
    ``parent_span_id`` stitches the cross-node tree — an empty parent
    marks a root.  ``node`` is the emitting actor (``driver``, ``coord``,
    ``node0``…); ``detail`` qualifies the span (for 2PC phase spans, the
    participant the RPC targeted).
    """

    type: ClassVar[str] = "span"
    trace_id: str = ""
    span_id: str = ""
    parent_span_id: str = ""
    name: str = ""
    node: str = ""
    gtxn: int = -1
    start: float = 0.0
    end: float = 0.0
    status: str = "ok"
    detail: str = ""


@_register
@dataclass(frozen=True)
class RequestArrived(TraceEvent):
    """A serving-layer request entered the front-end queue.

    ``time`` is the request's generated arrival (open loop) or issue
    time (closed loop); admission may happen later when the in-flight
    cap is full — the gap is the request's queue-wait phase.
    """

    type: ClassVar[str] = "request_arrived"
    request_id: int = -1
    session: int = -1
    object_name: str = ""
    operations: int = 0


@_register
@dataclass(frozen=True)
class RequestAdmitted(TraceEvent):
    """A queued request was admitted: a transaction now runs it."""

    type: ClassVar[str] = "request_admitted"
    request_id: int = -1
    txn: int = -1


@_register
@dataclass(frozen=True)
class PolicySwitched(TraceEvent):
    """The adaptive controller changed one object's concurrency policy.

    Emitted at the safe epoch boundary where the switch was applied (no
    active transaction had executed on the object).  ``conflict_rate``
    and ``abort_rate`` are the lifetime rates that drove the decision;
    ``reason`` names the recommendation source.
    """

    type: ClassVar[str] = "policy_switched"
    object_name: str = ""
    old: str = ""
    new: str = ""
    conflict_rate: float = 0.0
    abort_rate: float = 0.0
    reason: str = "recommendation"


@_register
@dataclass(frozen=True)
class RequestShed(TraceEvent):
    """The serving layer refused or dropped a request without running it.

    ``reason`` names the shed site: ``overload`` (bounded-queue
    oldest-first drop or the degradation ladder's reject rung),
    ``breaker`` (the request's object had a tripped circuit breaker) or
    ``retries_exhausted`` (an at-least-once request used up its retry
    budget).  A shed request never commits — the chaos campaign and the
    property suite certify that.
    """

    type: ClassVar[str] = "request_shed"
    request_id: int = -1
    reason: str = ""
    object_name: str = ""


@_register
@dataclass(frozen=True)
class DeadlineExceeded(TraceEvent):
    """A request ran out of its deadline budget and was shed.

    ``txn`` is the aborted in-flight transaction (``-1`` when the
    deadline expired before admission or in the retry queue).  A
    deadline-exceeded request is *never* silently retried.
    """

    type: ClassVar[str] = "deadline_exceeded"
    request_id: int = -1
    txn: int = -1
    deadline: float = 0.0


@_register
@dataclass(frozen=True)
class BreakerStateChanged(TraceEvent):
    """A per-object circuit breaker moved between states.

    The deterministic state machine is closed -> open -> half-open ->
    (closed | open); ``failure_rate`` is the windowed failure fraction
    that drove the transition (0.0 on cooldown-driven moves).
    """

    type: ClassVar[str] = "breaker_state_changed"
    object_name: str = ""
    old: str = ""
    new: str = ""
    failure_rate: float = 0.0


@_register
@dataclass(frozen=True)
class DegradationStep(TraceEvent):
    """The serving degradation ladder moved to a new level.

    Levels: 0 full service, 1 shed over-deadline work, 2 force queued
    discipline on hot objects, 3 reject at admission.  ``backlog`` is
    the due-but-unadmitted queue depth that drove the step.
    """

    type: ClassVar[str] = "degradation_step"
    level: int = 0
    previous: int = 0
    backlog: int = 0
    reason: str = ""


def event_type_names() -> list[str]:
    """All registered event type tags, sorted."""
    return sorted(_EVENT_TYPES)


def _coerce(value: Any) -> Any:
    """JSON gives back lists where events carry tuples; restore tuples."""
    if isinstance(value, list):
        return tuple(_coerce(item) for item in value)
    return value


def event_from_dict(payload: dict[str, Any]) -> TraceEvent:
    """Reconstruct an event from its :meth:`TraceEvent.to_dict` form."""
    data = dict(payload)
    type_tag = data.pop("type", None)
    if type_tag not in _EVENT_TYPES:
        raise ValueError(f"unknown trace event type {type_tag!r}")
    cls = _EVENT_TYPES[type_tag]
    known = {field.name for field in fields(cls)}
    kwargs = {key: _coerce(value) for key, value in data.items() if key in known}
    return cls(**kwargs)

"""Trace analysis: timelines, firing histograms, trace-only verification.

A JSONL trace produced by the instrumented scheduler stack is a complete
account of a run.  This module reconstructs three things from it:

* a **per-transaction timeline** — every event touching one transaction,
  in order (:func:`transaction_timeline`);
* a **per-table-entry firing histogram** — how often each
  ``(invoked, executing)`` compatibility-table entry produced each
  dependency, under which condition and evidence source
  (:func:`firing_histogram`); this is the paper's "more potential for
  concurrency" claim made countable per refined entry;
* the **serializability verdict, from the trace alone**
  (:func:`find_serialization_from_trace`): committed transactions'
  operation logs, return values, commit order and dependency edges are
  all in the trace, so the same replay argument
  :mod:`repro.cc.serializability` applies to the live scheduler can be
  re-run offline — the cross-check that the trace is faithful.
"""

from __future__ import annotations

import ast
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from itertools import permutations
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.events import (
    CascadeAborted,
    CommitWaited,
    DeadlockResolved,
    DependencyRecorded,
    ObjectRegistered,
    OpBlocked,
    OpGranted,
    RunCompleted,
    TraceEvent,
    TxnAborted,
    TxnBegun,
    TxnCommitted,
)
from repro.obs.tracers import read_trace

__all__ = [
    "read_trace",
    "parse_literal",
    "EntryFiring",
    "firing_histogram",
    "transaction_timeline",
    "render_event",
    "TraceSummary",
    "summarize",
    "TracedOperation",
    "TracedRun",
    "reconstruct_run",
    "find_serialization_from_trace",
    "serializable_from_trace",
    "registry_from_trace",
    "render_dashboard",
]


def parse_literal(text: str):
    """Parse a recorded ``repr`` back into a Python value.

    Abstract states and invocation arguments are plain literals (tuples,
    strings, numbers) except for the set-based ADTs, whose states are
    ``frozenset({...})`` — handled by a restricted eval that exposes
    nothing but the two set constructors.
    """
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return eval(  # noqa: S307 - constructors only, no builtins
            text, {"__builtins__": {}, "frozenset": frozenset, "set": set}
        )


# ---------------------------------------------------------------------------
# Firing histogram
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EntryFiring:
    """One cell of the firing histogram: a decision signature and its count."""

    object_name: str
    invoked: str
    executing: str
    dependency: str
    condition: str
    source: str
    entry: str
    count: int


def firing_histogram(events: Iterable[TraceEvent]) -> list[EntryFiring]:
    """Count :class:`DependencyRecorded` events per decision signature.

    Sorted most-frequent first, then by operation pair for stability.
    """
    tally: TallyCounter = TallyCounter()
    entries: dict[tuple, str] = {}
    for event in events:
        if not isinstance(event, DependencyRecorded):
            continue
        key = (
            event.object_name,
            event.invoked,
            event.executing,
            event.dependency,
            event.condition,
            event.source,
        )
        tally[key] += 1
        entries[key] = event.entry
    return sorted(
        (
            EntryFiring(*key, entry=entries[key], count=count)
            for key, count in tally.items()
        ),
        key=lambda firing: (-firing.count, firing.invoked, firing.executing,
                            firing.dependency, firing.condition),
    )


# ---------------------------------------------------------------------------
# Timelines
# ---------------------------------------------------------------------------

def _touches(event: TraceEvent, txn: int) -> bool:
    if getattr(event, "txn", None) == txn:
        return True
    if isinstance(event, DependencyRecorded) and event.other_txn == txn:
        return True
    if isinstance(event, DeadlockResolved):
        return event.victim == txn or txn in event.cycle
    if isinstance(event, CascadeAborted) and event.root == txn:
        return True
    if isinstance(event, (OpBlocked, CommitWaited)):
        blocked_on = getattr(event, "blocked_on", getattr(event, "waiting_on", ()))
        if txn in blocked_on:
            return True
    return False


def transaction_timeline(
    events: Sequence[TraceEvent], txn: int
) -> list[TraceEvent]:
    """Every event involving ``txn``, in trace order."""
    return [event for event in events if _touches(event, txn)]


def render_event(event: TraceEvent) -> str:
    """One human-readable line per event, for the ``trace`` CLI."""
    payload = event.to_dict()
    payload.pop("type")
    time_stamp = payload.pop("time")
    detail = " ".join(f"{key}={value!r}" for key, value in payload.items())
    return f"t={time_stamp:<8.2f} {event.type:20} {detail}"


# ---------------------------------------------------------------------------
# Summary
# ---------------------------------------------------------------------------

@dataclass
class TraceSummary:
    """Aggregate view of one trace."""

    events: int = 0
    by_type: dict[str, int] = field(default_factory=dict)
    transactions: int = 0
    committed: int = 0
    aborted: int = 0
    deadlocks: int = 0
    cascades: int = 0
    dependencies_by_kind: dict[str, int] = field(default_factory=dict)
    firings: list[EntryFiring] = field(default_factory=list)

    def render(self, top: int = 10) -> str:
        lines = [
            f"events={self.events} transactions={self.transactions} "
            f"committed={self.committed} aborted={self.aborted} "
            f"deadlocks={self.deadlocks} cascades={self.cascades}",
            "dependencies: " + (
                " ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.dependencies_by_kind.items())
                ) or "none"
            ),
        ]
        if self.firings:
            lines.append(f"top table-entry firings (of {len(self.firings)}):")
            for firing in self.firings[:top]:
                condition = firing.condition or "<fallback: strongest>"
                lines.append(
                    f"  {firing.count:5}x ({firing.invoked}, {firing.executing}) "
                    f"-> {firing.dependency} [{firing.source}] {condition}"
                )
        return "\n".join(lines)


def summarize(events: Sequence[TraceEvent]) -> TraceSummary:
    """Compute the :class:`TraceSummary` of a trace."""
    summary = TraceSummary(events=len(events))
    for event in events:
        summary.by_type[event.type] = summary.by_type.get(event.type, 0) + 1
        if isinstance(event, TxnBegun):
            summary.transactions += 1
        elif isinstance(event, TxnCommitted):
            summary.committed += 1
        elif isinstance(event, TxnAborted):
            summary.aborted += 1
        elif isinstance(event, CascadeAborted):
            summary.cascades += 1
            summary.aborted += 1
        elif isinstance(event, DeadlockResolved):
            summary.deadlocks += 1
        elif isinstance(event, DependencyRecorded):
            summary.dependencies_by_kind[event.dependency] = (
                summary.dependencies_by_kind.get(event.dependency, 0) + 1
            )
    summary.firings = firing_histogram(events)
    return summary


# ---------------------------------------------------------------------------
# Trace-based serializability
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TracedOperation:
    """One granted operation reconstructed from the trace."""

    object_name: str
    operation: str
    args: tuple
    outcome: str | None
    result: Any
    sequence: int


@dataclass
class TracedRun:
    """Everything replay needs, reconstructed from a trace."""

    #: object name -> (adt name, parsed initial state)
    objects: dict[str, tuple[str, Any]] = field(default_factory=dict)
    #: txn -> granted operations in execution order
    operations: dict[int, list[TracedOperation]] = field(default_factory=dict)
    #: committed txn -> commit sequence stamp
    commit_sequence: dict[int, int] = field(default_factory=dict)
    #: (later, earlier) dependency edges recorded during the run
    edges: set[tuple[int, int]] = field(default_factory=set)
    #: object name -> repr of the final abstract state (when recorded)
    final_states: dict[str, str] = field(default_factory=dict)

    @property
    def committed(self) -> list[int]:
        """Committed transactions in commit order."""
        return sorted(self.commit_sequence, key=self.commit_sequence.__getitem__)


def reconstruct_run(events: Iterable[TraceEvent]) -> TracedRun:
    """Fold a trace into the replayable :class:`TracedRun` form."""
    run = TracedRun()
    for event in events:
        if isinstance(event, ObjectRegistered):
            run.objects[event.object_name] = (
                event.adt, parse_literal(event.initial_state)
            )
        elif isinstance(event, OpGranted):
            run.operations.setdefault(event.txn, []).append(
                TracedOperation(
                    object_name=event.object_name,
                    operation=event.operation,
                    args=tuple(parse_literal(event.args)),
                    outcome=event.outcome,
                    result=parse_literal(event.result),
                    sequence=event.sequence,
                )
            )
        elif isinstance(event, TxnCommitted):
            run.commit_sequence[event.txn] = event.commit_sequence
        elif isinstance(event, DependencyRecorded):
            run.edges.add((event.txn, event.other_txn))
        elif isinstance(event, RunCompleted):
            run.final_states = dict(event.final_states)
    for operations in run.operations.values():
        operations.sort(key=lambda op: op.sequence)
    return run


def _resolve_adts(
    run: TracedRun, adts: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Object name -> ADT spec, from the caller or the built-in registry."""
    from repro.adts.registry import make_adt

    resolved = {}
    for object_name, (adt_name, _) in run.objects.items():
        if adts is not None and object_name in adts:
            resolved[object_name] = adts[object_name]
        else:
            resolved[object_name] = make_adt(adt_name)
    return resolved


def _replay(run: TracedRun, adts: dict[str, Any], order: Sequence[int]) -> bool:
    """Whether serial execution in ``order`` reproduces the trace.

    Mirrors :func:`repro.cc.serializability.replay_serial`: every recorded
    return value must be reproduced, and — when the trace recorded final
    states — the replayed final states must match them.
    """
    from repro.spec.adt import execute_invocation
    from repro.spec.operation import Invocation
    from repro.spec.returnvalue import ReturnValue

    states = {name: initial for name, (_, initial) in run.objects.items()}
    for txn in order:
        for op in run.operations.get(txn, []):
            execution = execute_invocation(
                adts[op.object_name],
                states[op.object_name],
                Invocation(op.operation, op.args),
            )
            recorded = ReturnValue(outcome=op.outcome, result=op.result)
            if execution.returned != recorded:
                return False
            states[op.object_name] = execution.post_state
    for object_name, final_repr in run.final_states.items():
        if object_name in states and repr(states[object_name]) != final_repr:
            return False
    return True


def _topological(run: TracedRun) -> list[int] | None:
    """Committed transactions ordered so edges point backwards."""
    members = set(run.commit_sequence)
    preds: dict[int, set[int]] = {txn: set() for txn in members}
    for later, earlier in run.edges:
        if later in members and earlier in members:
            preds[later].add(earlier)

    def first_stamp(txn: int) -> int:
        operations = run.operations.get(txn, [])
        return operations[0].sequence if operations else 0

    order: list[int] = []
    remaining = set(members)
    while remaining:
        ready = sorted(
            (txn for txn in remaining if not (preds[txn] & remaining)),
            key=first_stamp,
        )
        if not ready:
            return None
        order.append(ready[0])
        remaining.discard(ready[0])
    return order


def find_serialization_from_trace(
    events: Iterable[TraceEvent],
    adts: Mapping[str, Any] | None = None,
    brute_force_limit: int = 6,
) -> list[int] | None:
    """A serial order of the committed transactions explaining the trace.

    Candidate orders, exactly as in
    :func:`repro.cc.serializability.find_serialization`: the recorded
    commit order, the topological order over the recorded dependency
    edges, then brute force for small populations.  ``adts`` optionally
    maps object names to specs; unmapped objects are resolved through the
    built-in ADT registry by the name recorded at registration.
    """
    run = reconstruct_run(events)
    committed = run.committed
    if not committed:
        return []
    resolved = _resolve_adts(run, adts)
    if _replay(run, resolved, committed):
        return committed
    topological = _topological(run)
    if topological is not None and _replay(run, resolved, topological):
        return topological
    if len(committed) <= brute_force_limit:
        for permutation in permutations(committed):
            candidate = list(permutation)
            if _replay(run, resolved, candidate):
                return candidate
    return None


def serializable_from_trace(
    events: Iterable[TraceEvent],
    adts: Mapping[str, Any] | None = None,
    brute_force_limit: int = 6,
) -> bool:
    """Whether the committed portion of the traced run is serializable."""
    return (
        find_serialization_from_trace(events, adts, brute_force_limit)
        is not None
    )


# ---------------------------------------------------------------------------
# Metrics from a trace
# ---------------------------------------------------------------------------

#: Default histogram bounds for blocked-interval durations (sim-time units).
BLOCKED_BOUNDS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0)


def registry_from_trace(events: Sequence[TraceEvent], registry=None):
    """Populate a metrics registry from a trace.

    Counters per event type and per dependency kind, plus a histogram of
    blocked-interval durations (from each transaction's ``OpBlocked`` to
    its next grant or abort, in sim-time).  Returns the registry.
    """
    from repro.obs.registry import MetricsRegistry

    registry = registry if registry is not None else MetricsRegistry()
    blocked = registry.histogram(
        "blocked_interval_seconds",
        bounds=BLOCKED_BOUNDS,
        help="Duration of operation-blocked intervals (sim-time).",
    )
    blocked_since: dict[int, float] = {}
    for event in events:
        registry.counter(
            "events", help="Trace events by type.", labels={"type": event.type}
        ).inc()
        if isinstance(event, DependencyRecorded):
            registry.counter(
                "dependencies",
                help="Recorded dependencies by kind and evidence source.",
                labels={"kind": event.dependency, "source": event.source},
            ).inc()
        if isinstance(event, OpBlocked):
            blocked_since.setdefault(event.txn, event.time)
        elif isinstance(event, (OpGranted, TxnAborted)):
            txn = event.txn
            if txn in blocked_since:
                blocked.observe(event.time - blocked_since.pop(txn))
    return registry


# ---------------------------------------------------------------------------
# Dashboard (the `report` CLI)
# ---------------------------------------------------------------------------

def _slow_txns_from_spans(forest, top: int) -> list[str]:
    """Top-``top`` slowest transactions with their critical paths."""
    from repro.obs.spans import render_critical_path

    rows = []
    for gtxn, roots in forest.roots_by_gtxn().items():
        for root in roots:
            rows.append((root.duration, gtxn, root))
    rows.sort(key=lambda row: (-row[0], row[1], row[2].event.span_id))
    lines = []
    for duration, gtxn, root in rows[:top]:
        lines.append(
            f"  gtxn={gtxn:<4} {root.event.status:<10} {duration:8.2f}  "
            f"{render_critical_path(root)}"
        )
    return lines


def _slow_txns_from_events(events: Sequence[TraceEvent], top: int) -> list[str]:
    """Span-less fallback: TxnBegun -> resolution durations."""
    begun: dict[int, float] = {}
    rows: list[tuple[float, int, str]] = []
    for event in events:
        if isinstance(event, TxnBegun):
            begun[event.txn] = event.time
        elif isinstance(event, (TxnCommitted, TxnAborted)):
            if event.txn in begun:
                status = (
                    "COMMITTED" if isinstance(event, TxnCommitted) else "ABORTED"
                )
                rows.append((event.time - begun.pop(event.txn), event.txn, status))
    rows.sort(key=lambda row: (-row[0], row[1]))
    return [
        f"  txn={txn:<4} {status:<10} {duration:8.2f}"
        for duration, txn, status in rows[:top]
    ]


def _serving_section(events: Sequence[TraceEvent]) -> list[str]:
    """The serving-layer rows: throughput, phases, policy timeline.

    Rendered only when the trace carries serving events.  Request
    completions come from ``TxnCommitted``/``TxnAborted`` when the trace
    has no spans (bare-scheduler serving) and from root ``txn`` spans
    otherwise (cluster serving, where local txn ids must not be mistaken
    for gtxns).  Formatting is fixed, so identical traces render
    byte-identical sections.
    """
    from repro.obs.events import (
        BreakerStateChanged,
        CascadeAborted,
        CommitWaited,
        DeadlineExceeded,
        DegradationStep,
        PolicySwitched,
        RequestAdmitted,
        RequestArrived,
        RequestShed,
        SpanRecorded,
        TxnAborted,
        TxnCommitted,
    )
    from repro.obs.latency import Histogram

    arrivals: dict[int, RequestArrived] = {}
    admissions: dict[int, RequestAdmitted] = {}
    request_of: dict[int, int] = {}
    first_wait: dict[int, float] = {}
    switches: list[PolicySwitched] = []
    shed_reasons: dict[str, int] = {}
    shed_requests: set[int] = set()
    expired = 0
    breaker_moves: list[BreakerStateChanged] = []
    ladder_moves: list[DegradationStep] = []
    local_resolutions: dict[int, tuple[float, str]] = {}
    span_resolutions: dict[int, tuple[float, str]] = {}
    for event in events:
        if isinstance(event, RequestArrived):
            arrivals.setdefault(event.request_id, event)
        elif isinstance(event, RequestAdmitted):
            # Last admission wins: under at-least-once serving a retried
            # request is re-admitted as a fresh transaction, and the
            # final attempt's outcome is the request's outcome.
            admissions[event.request_id] = event
            request_of.setdefault(event.txn, event.request_id)
        elif isinstance(event, CommitWaited):
            first_wait.setdefault(event.txn, event.time)
        elif isinstance(event, PolicySwitched):
            switches.append(event)
        elif isinstance(event, RequestShed):
            shed_reasons[event.reason] = shed_reasons.get(event.reason, 0) + 1
            shed_requests.add(event.request_id)
        elif isinstance(event, DeadlineExceeded):
            expired += 1
            shed_requests.add(event.request_id)
        elif isinstance(event, BreakerStateChanged):
            breaker_moves.append(event)
        elif isinstance(event, DegradationStep):
            ladder_moves.append(event)
        elif isinstance(event, (TxnCommitted, TxnAborted, CascadeAborted)):
            outcome = "committed" if isinstance(event, TxnCommitted) else "aborted"
            local_resolutions.setdefault(event.txn, (event.time, outcome))
        elif isinstance(event, SpanRecorded):
            if event.name == "txn" and not event.parent_span_id:
                outcome = (
                    "committed" if event.status == "COMMITTED" else "aborted"
                )
                span_resolutions.setdefault(event.gtxn, (event.end, outcome))
    if not arrivals and not switches:
        return []
    resolutions = span_resolutions if span_resolutions else local_resolutions

    phases = {
        name: {"committed": Histogram(), "aborted": Histogram()}
        for name in ("queue_wait", "service", "commit_wait", "e2e")
    }
    committed = aborted = 0
    committed_ops = 0
    first_arrival: float | None = None
    last_finish: float | None = None
    for request_id, admitted in sorted(admissions.items()):
        arrived = arrivals.get(request_id)
        if arrived is None:
            continue
        if first_arrival is None or arrived.time < first_arrival:
            first_arrival = arrived.time
        resolution = resolutions.get(admitted.txn)
        if resolution is None:
            continue
        finish, outcome = resolution
        if outcome == "committed":
            committed += 1
            committed_ops += arrived.operations
        else:
            aborted += 1
        if last_finish is None or finish > last_finish:
            last_finish = finish
        phases["queue_wait"][outcome].observe(admitted.time - arrived.time)
        phases["service"][outcome].observe(finish - admitted.time)
        phases["e2e"][outcome].observe(finish - arrived.time)
        waited = first_wait.get(admitted.txn)
        if waited is not None:
            phases["commit_wait"][outcome].observe(finish - waited)

    lines = ["== serving =="]
    duration = (
        last_finish - first_arrival
        if first_arrival is not None and last_finish is not None
        else 0.0
    )
    lines.append(
        f"  requests: arrived={len(arrivals)} admitted={len(admissions)} "
        f"committed={committed} aborted={aborted}"
    )
    if shed_reasons or expired:
        reasons = " ".join(
            f"{reason}={count}"
            for reason, count in sorted(shed_reasons.items())
        )
        lines.append(
            f"  shed: total={len(shed_requests)} "
            f"deadline_exceeded={expired}"
            + (f" ({reasons})" if reasons else "")
        )
    if duration > 0:
        lines.append(
            f"  sustained throughput: {committed_ops / duration:.2f} "
            f"committed ops/time ({committed_ops} ops over {duration:.2f})"
        )
    rows = [
        (phase, outcome, histogram)
        for phase in ("queue_wait", "service", "commit_wait", "e2e")
        for outcome, histogram in sorted(phases[phase].items())
        if histogram.count
    ]
    if rows:
        lines.append(f"  {'phase':<12} {'outcome':<10} summary")
        for phase, outcome, histogram in rows:
            lines.append(f"  {phase:<12} {outcome:<10} {histogram.summary()}")
    if switches:
        lines.append("  policy switches:")
        for event in switches:
            lines.append(
                f"    t={event.time:8.2f} {event.object_name:<16} "
                f"{event.old:>10} -> {event.new:<10} "
                f"(conflict={event.conflict_rate:.2f} "
                f"abort={event.abort_rate:.2f} {event.reason})"
            )
    else:
        lines.append("  policy switches: (none)")
    if breaker_moves:
        lines.append("  breaker transitions:")
        for event in breaker_moves:
            lines.append(
                f"    t={event.time:8.2f} {event.object_name:<16} "
                f"{event.old:>9} -> {event.new:<9} "
                f"(failure_rate={event.failure_rate:.2f})"
            )
    if ladder_moves:
        lines.append("  degradation timeline:")
        for event in ladder_moves:
            lines.append(
                f"    t={event.time:8.2f} level {event.previous} -> "
                f"{event.level} (backlog={event.backlog} {event.reason})"
            )
    return lines


def _replication_section(events: Sequence[TraceEvent]) -> list[str]:
    """The replica-group rows: view changes, shipping lag, fencing.

    Rendered only when the trace carries replication events
    (:mod:`repro.dist.replication`).  The view-change timeline is the
    failover story of the run; per-primary lag histograms come from the
    ``lag`` each :class:`LogShipped` batch observed (how far the backup
    trailed when the batch was cut); fenced counts show the deposed
    primaries' stale messages being rejected.  Formatting is fixed, so
    identical traces render byte-identical sections.
    """
    from repro.obs.events import (
        LogShipped,
        PrimaryFenced,
        ReplicaReadServed,
        ViewChanged,
    )
    from repro.obs.latency import Histogram

    ships: dict[str, Histogram] = {}
    shipped_records: dict[str, int] = {}
    views: list[ViewChanged] = []
    fenced: dict[tuple[str, str], int] = {}
    reads: dict[str, int] = {}
    read_watermarks = Histogram()
    for event in events:
        if isinstance(event, LogShipped):
            ships.setdefault(event.primary, Histogram()).observe(event.lag)
            shipped_records[event.primary] = (
                shipped_records.get(event.primary, 0) + event.count
            )
        elif isinstance(event, ViewChanged):
            views.append(event)
        elif isinstance(event, PrimaryFenced):
            key = (event.node, event.kind)
            fenced[key] = fenced.get(key, 0) + 1
        elif isinstance(event, ReplicaReadServed):
            reads[event.backup] = reads.get(event.backup, 0) + 1
            read_watermarks.observe(float(event.watermark))
    if not ships and not views and not fenced and not reads:
        return []

    lines = ["== replication =="]
    if views:
        lines.append("  view-change timeline:")
        for event in views:
            in_doubt = (
                f" in_doubt={sorted(event.in_doubt)}" if event.in_doubt else ""
            )
            lines.append(
                f"    t={event.time:8.2f} {event.shard:<16} "
                f"{event.primary} -> {event.promoted} "
                f"(epoch {event.epoch}, log={event.log_records}{in_doubt})"
            )
    else:
        lines.append("  view changes: (none)")
    if ships:
        lines.append(f"  {'primary':<16} {'shipped':>8} lag")
        for primary in sorted(ships):
            lines.append(
                f"  {primary:<16} {shipped_records[primary]:>8} "
                f"{ships[primary].summary()}"
            )
    if fenced:
        lines.append("  fenced messages:")
        for (node, kind), count in sorted(fenced.items()):
            lines.append(f"    {node:<16} {kind:<12} {count:>4}x")
    if reads:
        served = " ".join(
            f"{backup}={count}" for backup, count in sorted(reads.items())
        )
        lines.append(
            f"  replica reads: {served} "
            f"(watermark {read_watermarks.summary()})"
        )
    return lines


def render_dashboard(
    events: Sequence[TraceEvent], top: int = 10, window: int = 32
) -> str:
    """The deterministic text dashboard behind ``repro ... report``.

    Sections: trace summary, slowest transactions with critical paths
    (span-based when the trace has spans, event-based otherwise),
    per-object latency, per-node span latency, the serving layer
    (throughput, per-phase latency, policy-switch timeline — only when
    the trace carries serving events), the replication layer
    (view-change timeline, shipping lag, fenced messages — only when
    the trace carries replication events), and the per-object conflict
    profile with a contention heatmap.  Formatting is fixed
    (``%.2f``, sorted keys), so identical traces render byte-identical
    dashboards.
    """
    from repro.obs.conflict import profiles_from_trace
    from repro.obs.latency import latency_from_trace
    from repro.obs.spans import build_span_trees

    summary = summarize(events)
    recorder = latency_from_trace(events)
    forest = build_span_trees(events)
    profiles = profiles_from_trace(events, window=window)

    lines = ["== trace summary ==", summary.render(top=5)]

    lines.append("")
    lines.append(f"== slowest transactions (top {top}) ==")
    slow = (
        _slow_txns_from_spans(forest, top)
        if forest.trees
        else _slow_txns_from_events(events, top)
    )
    lines.extend(slow or ["  (no resolved transactions)"])
    if forest.orphans or forest.duplicates:
        lines.append(
            f"  !! span anomalies: orphans={len(forest.orphans)} "
            f"duplicates={len(forest.duplicates)}"
        )

    lines.append("")
    lines.append("== per-object latency ==")
    object_rows = [
        (metric, key, histogram)
        for metric, key, histogram in recorder.rows()
        if metric in ("op_grant", "blocked")
    ]
    if object_rows:
        lines.append(f"  {'metric':<10} {'object':<16} summary")
        for metric, key, histogram in object_rows:
            lines.append(f"  {metric:<10} {key:<16} {histogram.summary()}")
    else:
        lines.append("  (no operation latency recorded)")
    e2e = recorder.merged("txn")
    if e2e.count:
        lines.append(f"  end-to-end txn: {e2e.summary()}")

    span_rows = [
        (metric, key, histogram)
        for metric, key, histogram in recorder.rows()
        if metric.startswith("span.")
    ]
    if span_rows:
        lines.append("")
        lines.append("== per-node span latency ==")
        lines.append(f"  {'span':<16} {'node':<14} summary")
        for metric, key, histogram in span_rows:
            lines.append(
                f"  {metric[len('span.'):]:<16} {key:<14} {histogram.summary()}"
            )

    serving = _serving_section(events)
    if serving:
        lines.append("")
        lines.extend(serving)

    replication = _replication_section(events)
    if replication:
        lines.append("")
        lines.extend(replication)

    lines.append("")
    lines.append(f"== conflict profile (window={window}) ==")
    if profiles:
        lines.append(
            f"  {'object':<16} {'req':>6} {'grant':>6} {'block':>6} "
            f"{'abort':>6} {'rate':>6}  mode"
        )
        for name, profile in profiles.items():
            total = profile.total
            lines.append(
                f"  {name:<16} {total.requests:>6} {total.grants:>6} "
                f"{total.blocks:>6} {total.aborts:>6} "
                f"{profile.conflict_rate:>6.2f}  {profile.recommend()}"
            )
        heat = "".join(profile.heat_char() for profile in profiles.values())
        lines.append(f"  heatmap [{heat}]  ({' '.join(profiles)})")
    else:
        lines.append("  (no operations traced)")

    return "\n".join(lines) + "\n"

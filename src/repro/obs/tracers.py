"""Tracer implementations: where trace events go.

The scheduler stack emits events through the tiny :class:`Tracer`
protocol.  The default :class:`NullTracer` is falsy, so instrumented code
guards every emission with ``if tracer:`` — with tracing off, the hot
path pays one truthiness check and never constructs an event object.

:class:`RecordingTracer` keeps events in memory for programmatic
analysis; :class:`JsonlTracer` streams them to a JSON-lines file, one
event object per line, for offline analysis with ``python -m repro
trace``.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Protocol, runtime_checkable

from repro.obs.events import TraceEvent, event_from_dict

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "JsonlTracer",
    "read_trace",
]


@runtime_checkable
class Tracer(Protocol):
    """Anything that accepts trace events.

    Implementations must also be truthy/falsy: falsy means "emissions are
    discarded", letting instrumentation skip event construction entirely.
    """

    def emit(self, event: TraceEvent) -> None:
        """Accept one event."""
        ...  # pragma: no cover - protocol


class NullTracer:
    """The zero-overhead default: falsy, discards everything."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never hot
        pass

    def __bool__(self) -> bool:
        return False


#: Shared default instance (the tracer is stateless).
NULL_TRACER = NullTracer()


class RecordingTracer:
    """Keeps every emitted event in an in-memory list."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_type(self, event_type: type[TraceEvent]) -> list[TraceEvent]:
        """The recorded events of one type, in emission order."""
        return [event for event in self.events if isinstance(event, event_type)]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return True  # even when empty: emissions must not be skipped


class JsonlTracer:
    """Streams events to a JSON-lines file (one ``to_dict`` per line)."""

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        json.dump(event.to_dict(), self._stream, ensure_ascii=False)
        self._stream.write("\n")
        self.emitted += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_trace(source: str | IO[str] | Iterable[str]) -> list[TraceEvent]:
    """Load a JSONL trace back into typed events.

    Accepts a file path, an open text stream, or any iterable of lines.
    Blank lines are skipped; malformed lines raise ``ValueError`` with the
    line number.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as stream:
            return read_trace(stream.readlines())
    events = []
    for number, line in enumerate(source, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"trace line {number} is not JSON: {error}") from None
        events.append(event_from_dict(payload))
    return events

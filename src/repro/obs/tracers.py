"""Tracer implementations: where trace events go.

The scheduler stack emits events through the tiny :class:`Tracer`
protocol.  The default :class:`NullTracer` is falsy, so instrumented code
guards every emission with ``if tracer:`` — with tracing off, the hot
path pays one truthiness check and never constructs an event object.

:class:`RecordingTracer` keeps events in memory for programmatic
analysis; :class:`JsonlTracer` streams them to a JSON-lines file, one
event object per line, for offline analysis with ``python -m repro
trace``.
"""

from __future__ import annotations

import json
import math
from dataclasses import fields
from json.encoder import encode_basestring
from typing import IO, Iterable, Protocol, runtime_checkable

from repro.obs.events import TraceEvent, event_from_dict

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "JsonlTracer",
    "read_trace",
]


@runtime_checkable
class Tracer(Protocol):
    """Anything that accepts trace events.

    Implementations must also be truthy/falsy: falsy means "emissions are
    discarded", letting instrumentation skip event construction entirely.
    """

    def emit(self, event: TraceEvent) -> None:
        """Accept one event."""
        ...  # pragma: no cover - protocol


class NullTracer:
    """The zero-overhead default: falsy, discards everything."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - never hot
        pass

    def __bool__(self) -> bool:
        return False


#: Shared default instance (the tracer is stateless).
NULL_TRACER = NullTracer()


class RecordingTracer:
    """Keeps every emitted event in an in-memory list."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_type(self, event_type: type[TraceEvent]) -> list[TraceEvent]:
        """The recorded events of one type, in emission order."""
        return [event for event in self.events if isinstance(event, event_type)]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return True  # even when empty: emissions must not be skipped


def _json_fragment(value: object) -> str | None:
    """JSON for one non-scalar field value, or ``None`` to punt to json.

    Handles tuples/lists of fast-serializable items with ``json.dumps``'s
    default separators; anything else (dicts, sets, non-finite floats)
    falls back to the stock encoder for the whole event.
    """
    cls = value.__class__
    if cls is tuple or cls is list:
        parts = []
        for item in value:
            icls = item.__class__
            if icls is str:
                parts.append(encode_basestring(item))
            elif icls is int:
                parts.append(int.__repr__(item))
            elif icls is float and math.isfinite(item):
                parts.append(float.__repr__(item))
            elif icls is bool:
                parts.append("true" if item else "false")
            elif item is None:
                parts.append("null")
            else:
                inner = _json_fragment(item)
                if inner is None:
                    return None
                parts.append(inner)
        return "[" + ", ".join(parts) + "]"
    return None


def _fast_line(event: TraceEvent) -> str | None:
    """One event as a JSON line, byte-identical to ``json.dumps`` of
    ``event.to_dict()`` — or ``None`` when a field needs the stock
    encoder.

    Serializing through per-class cached key fragments and direct scalar
    formatting skips the dict build and the encoder's generic dispatch,
    which together dominate the tracing hot path.  ``json`` renders
    finite floats via ``float.__repr__``, ints via their repr, and
    strings via ``encode_basestring`` (C-accelerated), so the bytes
    match exactly; non-finite floats and exotic field types punt.
    """
    cls = type(event)
    meta = cls.__dict__.get("_jsonl_meta")
    if meta is None:
        names = tuple(field.name for field in fields(event))
        prefix = '{"type": ' + encode_basestring(cls.type)
        keys = tuple(
            ", " + encode_basestring(name) + ": " for name in names
        )
        meta = (prefix, tuple(zip(names, keys)))
        cls._jsonl_meta = meta
    prefix, pairs = meta
    parts = [prefix]
    append = parts.append
    for name, key in pairs:
        value = getattr(event, name)
        vcls = value.__class__
        if vcls is str:
            fragment = encode_basestring(value)
        elif vcls is float:
            if not math.isfinite(value):
                return None
            fragment = float.__repr__(value)
        elif vcls is int:
            fragment = int.__repr__(value)
        elif vcls is bool:
            fragment = "true" if value else "false"
        elif value is None:
            fragment = "null"
        else:
            fragment = _json_fragment(value)
            if fragment is None:
                return None
        append(key)
        append(fragment)
    append("}")
    return "".join(parts)


class JsonlTracer:
    """Streams events to a JSON-lines file (one ``to_dict`` per line)."""

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.emitted = 0

    #: One shared C-accelerated encoder for the fallback path:
    #: ``json.dumps(ensure_ascii=False)`` constructs a fresh
    #: ``JSONEncoder`` per call.  Bytes are identical either way.
    _encode = json.JSONEncoder(ensure_ascii=False).encode

    def emit(self, event: TraceEvent) -> None:
        line = _fast_line(event)
        if line is None:
            line = self._encode(event.to_dict())
        self._stream.write(line + "\n")
        self.emitted += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_trace(source: str | IO[str] | Iterable[str]) -> list[TraceEvent]:
    """Load a JSONL trace back into typed events.

    Accepts a file path, an open text stream, or any iterable of lines.
    Blank lines are skipped; malformed lines raise ``ValueError`` with the
    line number.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as stream:
            return read_trace(stream.readlines())
    events = []
    for number, line in enumerate(source, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"trace line {number} is not JSON: {error}") from None
        events.append(event_from_dict(payload))
    return events

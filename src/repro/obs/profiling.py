"""Derivation profiling: where the five-stage pipeline spends its time.

:func:`repro.core.methodology.derive` drives a :class:`StageProfiler`
through its stages; the result is a :class:`DerivationProfile` of
per-stage wall time and table-entry counts, and — when a tracer is
supplied — a :class:`~repro.obs.events.StageTimed` event per stage, so
derivation cost lands in the same trace as the scheduling decisions the
derived table later produces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.events import StageTimed
from repro.obs.tracers import NULL_TRACER, Tracer

__all__ = ["StageProfile", "DerivationProfile", "StageProfiler"]


@dataclass(frozen=True)
class StageProfile:
    """One pipeline stage: wall time plus the size of what it produced."""

    stage: str
    seconds: float
    #: Cells of the stage's table (0 for the non-table stages 1-2).
    table_entries: int = 0
    #: Cells carrying at least one non-vacuous condition.
    conditional_entries: int = 0
    #: Execution-cache traffic attributed to this stage (0 when no cache
    #: was installed for the run).
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass
class DerivationProfile:
    """Per-stage profile of one :func:`~repro.core.methodology.derive` run."""

    adt_name: str
    stages: list[StageProfile] = field(default_factory=list)
    #: Execution-cache totals over the whole run (0 when uncached).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: Worker processes of the Stage-4/5 pair fan-out (1 = sequential).
    parallel_jobs: int = 1

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits per lookup over the run, ``0.0`` when uncached."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def stage(self, name: str) -> StageProfile:
        for profile in self.stages:
            if profile.stage == name:
                return profile
        raise KeyError(f"no stage {name!r} profiled")

    def speedup_vs(self, baseline: "DerivationProfile") -> dict[str, float]:
        """Per-stage (and total) wall-time speedup relative to ``baseline``.

        Keys are stage names plus ``"total"``; a stage missing from either
        profile, or taking no measurable time in this one, is omitted.
        """
        speedups: dict[str, float] = {}
        mine = {profile.stage: profile.seconds for profile in self.stages}
        for profile in baseline.stages:
            seconds = mine.get(profile.stage)
            if seconds:
                speedups[profile.stage] = profile.seconds / seconds
        if self.total_seconds:
            speedups["total"] = baseline.total_seconds / self.total_seconds
        return speedups

    def publish(self, registry, labels: dict[str, str] | None = None) -> None:
        """Export the profile through a :class:`~repro.obs.registry.MetricsRegistry`."""
        labels = dict(labels or {})
        labels.setdefault("adt", self.adt_name)
        registry.gauge(
            "derivation_seconds",
            help="Total wall time of the last derivation.",
            labels=labels,
        ).set(self.total_seconds)
        registry.gauge(
            "derivation_cache_hit_rate",
            help="Execution-cache hit rate of the last derivation.",
            labels=labels,
        ).set(self.cache_hit_rate)
        for stage in self.stages:
            registry.gauge(
                "derivation_stage_seconds",
                help="Wall time of one derivation stage.",
                labels={**labels, "stage": stage.stage},
            ).set(stage.seconds)

    def summary(self) -> str:
        """One line per stage, ``stage3 0.123s entries=25 conditional=4``."""
        lines = []
        for profile in self.stages:
            line = f"{profile.stage:10} {profile.seconds:8.4f}s"
            if profile.table_entries:
                line += (
                    f" entries={profile.table_entries}"
                    f" conditional={profile.conditional_entries}"
                )
            if profile.cache_hits or profile.cache_misses:
                line += (
                    f" cache={profile.cache_hits}h/{profile.cache_misses}m"
                )
            lines.append(line)
        total_line = f"{'total':10} {self.total_seconds:8.4f}s"
        if self.cache_hits or self.cache_misses:
            total_line += (
                f" cache_hit_rate={self.cache_hit_rate:.3f}"
                f" evictions={self.cache_evictions}"
            )
        if self.parallel_jobs != 1:
            total_line += f" jobs={self.parallel_jobs}"
        lines.append(total_line)
        return "\n".join(lines)


class StageProfiler:
    """Context-manager-per-stage timer feeding a :class:`DerivationProfile`."""

    def __init__(
        self, adt_name: str, tracer: Tracer | None = None, cache=None
    ) -> None:
        self.profile = DerivationProfile(adt_name=adt_name)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional :class:`~repro.perf.cache.ExecutionCache` whose
        #: hit/miss counters are snapshotted around each stage.
        self._cache = cache

    class _Stage:
        def __init__(self, profiler: "StageProfiler", name: str) -> None:
            self._profiler = profiler
            self._name = name
            self._started = 0.0
            self._hits_before = 0
            self._misses_before = 0
            self.table_entries = 0
            self.conditional_entries = 0

        def __enter__(self) -> "StageProfiler._Stage":
            cache = self._profiler._cache
            if cache is not None:
                self._hits_before = cache.hits
                self._misses_before = cache.misses
            self._started = time.perf_counter()
            return self

        def count_table(self, table) -> None:
            """Record the entry counts of the stage's output table."""
            cells = list(table.cells())
            self.table_entries = len(cells)
            self.conditional_entries = sum(
                1 for _, _, entry in cells if entry.is_conditional
            )

        def __exit__(self, *exc_info: object) -> None:
            elapsed = time.perf_counter() - self._started
            cache = self._profiler._cache
            stage_hits = stage_misses = 0
            if cache is not None:
                stage_hits = cache.hits - self._hits_before
                stage_misses = cache.misses - self._misses_before
            profile = StageProfile(
                stage=self._name,
                seconds=elapsed,
                table_entries=self.table_entries,
                conditional_entries=self.conditional_entries,
                cache_hits=stage_hits,
                cache_misses=stage_misses,
            )
            self._profiler.profile.stages.append(profile)
            tracer = self._profiler._tracer
            if tracer:
                tracer.emit(
                    StageTimed(
                        time=0.0,
                        adt=self._profiler.profile.adt_name,
                        stage=profile.stage,
                        seconds=profile.seconds,
                        table_entries=profile.table_entries,
                        conditional_entries=profile.conditional_entries,
                    )
                )

    def stage(self, name: str) -> "StageProfiler._Stage":
        """``with profiler.stage("stage3") as s: ... s.count_table(t)``."""
        return StageProfiler._Stage(self, name)

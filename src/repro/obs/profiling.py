"""Derivation profiling: where the five-stage pipeline spends its time.

:func:`repro.core.methodology.derive` drives a :class:`StageProfiler`
through its stages; the result is a :class:`DerivationProfile` of
per-stage wall time and table-entry counts, and — when a tracer is
supplied — a :class:`~repro.obs.events.StageTimed` event per stage, so
derivation cost lands in the same trace as the scheduling decisions the
derived table later produces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.events import StageTimed
from repro.obs.tracers import NULL_TRACER, Tracer

__all__ = ["StageProfile", "DerivationProfile", "StageProfiler"]


@dataclass(frozen=True)
class StageProfile:
    """One pipeline stage: wall time plus the size of what it produced."""

    stage: str
    seconds: float
    #: Cells of the stage's table (0 for the non-table stages 1-2).
    table_entries: int = 0
    #: Cells carrying at least one non-vacuous condition.
    conditional_entries: int = 0


@dataclass
class DerivationProfile:
    """Per-stage profile of one :func:`~repro.core.methodology.derive` run."""

    adt_name: str
    stages: list[StageProfile] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def stage(self, name: str) -> StageProfile:
        for profile in self.stages:
            if profile.stage == name:
                return profile
        raise KeyError(f"no stage {name!r} profiled")

    def summary(self) -> str:
        """One line per stage, ``stage3 0.123s entries=25 conditional=4``."""
        lines = []
        for profile in self.stages:
            line = f"{profile.stage:10} {profile.seconds:8.4f}s"
            if profile.table_entries:
                line += (
                    f" entries={profile.table_entries}"
                    f" conditional={profile.conditional_entries}"
                )
            lines.append(line)
        lines.append(f"{'total':10} {self.total_seconds:8.4f}s")
        return "\n".join(lines)


class StageProfiler:
    """Context-manager-per-stage timer feeding a :class:`DerivationProfile`."""

    def __init__(self, adt_name: str, tracer: Tracer | None = None) -> None:
        self.profile = DerivationProfile(adt_name=adt_name)
        self._tracer = tracer if tracer is not None else NULL_TRACER

    class _Stage:
        def __init__(self, profiler: "StageProfiler", name: str) -> None:
            self._profiler = profiler
            self._name = name
            self._started = 0.0
            self.table_entries = 0
            self.conditional_entries = 0

        def __enter__(self) -> "StageProfiler._Stage":
            self._started = time.perf_counter()
            return self

        def count_table(self, table) -> None:
            """Record the entry counts of the stage's output table."""
            cells = list(table.cells())
            self.table_entries = len(cells)
            self.conditional_entries = sum(
                1 for _, _, entry in cells if entry.is_conditional
            )

        def __exit__(self, *exc_info: object) -> None:
            elapsed = time.perf_counter() - self._started
            profile = StageProfile(
                stage=self._name,
                seconds=elapsed,
                table_entries=self.table_entries,
                conditional_entries=self.conditional_entries,
            )
            self._profiler.profile.stages.append(profile)
            tracer = self._profiler._tracer
            if tracer:
                tracer.emit(
                    StageTimed(
                        time=0.0,
                        adt=self._profiler.profile.adt_name,
                        stage=profile.stage,
                        seconds=profile.seconds,
                        table_entries=profile.table_entries,
                        conditional_entries=profile.conditional_entries,
                    )
                )

    def stage(self, name: str) -> "StageProfiler._Stage":
        """``with profiler.stage("stage3") as s: ... s.count_table(t)``."""
        return StageProfiler._Stage(self, name)

"""A lightweight metrics registry: counters, gauges, fixed-bound histograms.

No runtime dependencies — the registry is a plain-Python miniature of the
Prometheus client model, sufficient for the scheduler stack's
observables.  Two export formats:

* :meth:`MetricsRegistry.to_json` / :meth:`render_json` — a stable JSON
  document for programmatic consumers;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / samples), so a scrape of a
  long-running simulation needs nothing beyond an HTTP handler that
  returns this string.

Histograms use *fixed* bucket bounds chosen at registration: observation
is O(#buckets) with no allocation, and cumulative ``le`` buckets are
computed at export time.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.errors import SchedulerError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without a dot)."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return "{" + inner + "}"


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    help: str = ""
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise SchedulerError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A value that can go up and down."""

    name: str
    help: str = ""
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Observations bucketed against fixed upper bounds.

    ``bounds`` are the finite bucket upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches the tail.  Export produces the usual
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    """

    def __init__(
        self,
        name: str,
        bounds: tuple[float, ...],
        help: str = "",
        labels: dict[str, str] | None = None,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise SchedulerError(
                f"histogram {name} needs increasing finite bucket bounds"
            )
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.bounds = tuple(float(bound) for bound in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # last = +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    def accumulate(self, value: float, count: int) -> None:
        """Record ``count`` observations of ``value`` in one step.

        Bulk bridge for pre-bucketed sources (e.g. the log₂ latency
        histograms): ``sum`` accrues ``value * count``, which callers
        holding an exact sum may overwrite afterwards.
        """
        self.sum += value * count
        self.count += count
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self._counts[index] += count
                return
        self._counts[-1] += count

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative counts keyed by upper bound (``inf`` for the tail)."""
        cumulative: dict[float, int] = {}
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            cumulative[bound] = running
        cumulative[math.inf] = running + self._counts[-1]
        return cumulative


class MetricsRegistry:
    """Get-or-create home of the process's instruments.

    Instruments are keyed by ``(name, frozen labels)``; re-registration
    with a different kind is an error, re-registration with the same kind
    returns the existing instrument (so instrumented code never needs a
    module-level singleton dance).
    """

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get_or_create(self, kind: type, key_name: str, labels: dict[str, str] | None, factory):
        key = (key_name, tuple(sorted((labels or {}).items())))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, kind):
                raise SchedulerError(
                    f"metric {key_name!r} already registered as "
                    f"{type(existing).__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[key] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(
            Counter, name, labels,
            lambda: Counter(name=name, help=help, labels=dict(labels or {})),
        )

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, labels,
            lambda: Gauge(name=name, help=help, labels=dict(labels or {})),
        )

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...],
        help: str = "",
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels,
            lambda: Histogram(name=name, bounds=bounds, help=help, labels=labels),
        )

    def instruments(self) -> list[object]:
        """All registered instruments in registration order."""
        return list(self._instruments.values())

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """A stable JSON document of every instrument's current value."""
        counters, gauges, histograms = {}, {}, {}
        for instrument in self._instruments.values():
            label_suffix = _format_labels(getattr(instrument, "labels", {}))
            key = f"{instrument.name}{label_suffix}"
            if isinstance(instrument, Counter):
                counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.value
            else:
                assert isinstance(instrument, Histogram)
                histograms[key] = {
                    "sum": instrument.sum,
                    "count": instrument.count,
                    "buckets": {
                        _format_value(bound): count
                        for bound, count in instrument.bucket_counts().items()
                    },
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for instrument in self._instruments.values():
            full = f"{self.prefix}_{instrument.name}"
            kind = (
                "counter" if isinstance(instrument, Counter)
                else "gauge" if isinstance(instrument, Gauge)
                else "histogram"
            )
            if full not in seen_headers:
                seen_headers.add(full)
                if instrument.help:
                    lines.append(f"# HELP {full} {instrument.help}")
                lines.append(f"# TYPE {full} {kind}")
            labels = dict(getattr(instrument, "labels", {}))
            if isinstance(instrument, (Counter, Gauge)):
                suffix = "_total" if isinstance(instrument, Counter) else ""
                lines.append(
                    f"{full}{suffix}{_format_labels(labels)} "
                    f"{_format_value(instrument.value)}"
                )
            else:
                assert isinstance(instrument, Histogram)
                for bound, count in instrument.bucket_counts().items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{full}_bucket{_format_labels(bucket_labels)} {count}"
                    )
                lines.append(
                    f"{full}_sum{_format_labels(labels)} "
                    f"{_format_value(instrument.sum)}"
                )
                lines.append(
                    f"{full}_count{_format_labels(labels)} {instrument.count}"
                )
        return "\n".join(lines) + "\n"

"""Per-object conflict telemetry: windowed rates for adaptive policies.

The adaptive concurrency-control direction (ROADMAP item 1, and the
conflict-class accounting of the composability / Malta–Martinez lines in
PAPERS.md) needs a per-object answer to "how contended is this object,
and how do its conflicts resolve?".  This module keeps cheap windowed
counters next to each compatibility table entry:

* ``requests`` — operation requests arriving at the object;
* ``grants`` — requests admitted (immediately or after blocking);
* ``blocks`` — requests that blocked on a commutativity conflict;
* ``aborts`` — transaction aborts attributed to the object;
* ``nd_fast_path`` — ND-dependency fast-path hits (the paper's
  recoverability relaxation actually paying off here);
* ``ad_edges`` / ``cd_edges`` / ``nd_pairs`` — dependency-class mix.

Counters accumulate into the **current window**; every ``window_size``
requests the window is sealed and a fresh one starts, so a
:class:`ConflictProfile` reports both lifetime totals and the most
recent sealed window — the recency signal a policy switch wants.

``recommend()`` maps a profile onto the blocking/optimistic/queued
triple the adaptive policy chooses between: high abort share → queued
(contention is resolving by churn; serialize rather than keep paying
aborts), low conflict rate → optimistic, otherwise blocking.  The abort
check runs first because an optimistic object never *blocks* — its
conflict rate stays zero while aborts pile up, and that is exactly the
situation the queued recommendation exists for.  The cutoffs live in
:class:`RecommendThresholds` and are constructor-configurable; the
defaults (0.15 / 0.25) are the documented PR 6 values.

:func:`profiles_from_trace` rebuilds profiles offline from a recorded
trace (for the ``report`` CLI), attributing aborts to the last object
the transaction touched; ND fast-path hits are scheduler-internal and
appear only in live profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.events import (
    OpBlocked,
    OpGranted,
    OpRequested,
    TraceEvent,
    TxnAborted,
)

__all__ = [
    "ConflictWindow",
    "ConflictProfile",
    "ObjectConflictTracker",
    "RecommendThresholds",
    "profiles_from_trace",
]

#: Shade ramp for the dashboard heatmap, sparse → dense.
HEAT_CHARS = " .:-=+*#%@"


@dataclass
class ConflictWindow:
    """Counter deltas over one window of ``window_size`` requests."""

    requests: int = 0
    grants: int = 0
    blocks: int = 0
    aborts: int = 0
    nd_fast_path: int = 0
    ad_edges: int = 0
    cd_edges: int = 0
    nd_pairs: int = 0

    def add(self, other: "ConflictWindow") -> None:
        self.requests += other.requests
        self.grants += other.grants
        self.blocks += other.blocks
        self.aborts += other.aborts
        self.nd_fast_path += other.nd_fast_path
        self.ad_edges += other.ad_edges
        self.cd_edges += other.cd_edges
        self.nd_pairs += other.nd_pairs


@dataclass(frozen=True)
class RecommendThresholds:
    """Cutoffs :meth:`ConflictProfile.recommend` decides against.

    * ``queued_abort_above`` — abort rate beyond which contention is
      resolving by churn and the object should serialize (``queued``);
    * ``optimistic_below`` — conflict rate under which validate-at-commit
      wins (``optimistic``).

    The defaults are the documented PR 6 values; the adaptive controller
    and tests construct tuned instances without touching them.
    """

    optimistic_below: float = 0.15
    queued_abort_above: float = 0.25


#: The default cutoffs, shared so profiles compare equal across sources.
DEFAULT_THRESHOLDS = RecommendThresholds()


@dataclass(frozen=True)
class ConflictProfile:
    """The published per-object conflict signal.

    ``total`` covers the object's lifetime; ``recent`` is the last
    *sealed* window (all-zero until one full window has elapsed).  Rates
    are computed over the lifetime totals.
    """

    object_name: str
    window_size: int
    windows_sealed: int
    total: ConflictWindow
    recent: ConflictWindow
    thresholds: RecommendThresholds = DEFAULT_THRESHOLDS

    @property
    def conflict_rate(self) -> float:
        """Fraction of requests that hit any conflict (blocked)."""
        return self.total.blocks / self.total.requests if self.total.requests else 0.0

    @property
    def block_rate(self) -> float:
        return self.conflict_rate

    @property
    def abort_rate(self) -> float:
        """Aborts attributed here per request."""
        return self.total.aborts / self.total.requests if self.total.requests else 0.0

    def recommend(self) -> str:
        """Suggested concurrency-control mode for this object.

        * abort rate > ``queued_abort_above`` → ``queued`` (contention
          is resolving by churn; serialize instead) — checked first, so
          an optimistic object whose conflicts surface only as aborts
          (it never blocks, so its conflict rate stays zero) still gets
          the serialize recommendation;
        * conflict rate < ``optimistic_below`` → ``optimistic``
          (conflicts are rare enough that validate-at-commit wins);
        * otherwise → ``blocking`` (the table-driven default).
        """
        if self.abort_rate > self.thresholds.queued_abort_above:
            return "queued"
        if self.conflict_rate < self.thresholds.optimistic_below:
            return "optimistic"
        return "blocking"

    def heat_char(self) -> str:
        """One shade of :data:`HEAT_CHARS` proportional to conflict rate."""
        index = min(int(self.conflict_rate * len(HEAT_CHARS)), len(HEAT_CHARS) - 1)
        return HEAT_CHARS[index]

    def to_dict(self) -> dict:
        return {
            "object": self.object_name,
            "window_size": self.window_size,
            "windows_sealed": self.windows_sealed,
            "requests": self.total.requests,
            "grants": self.total.grants,
            "blocks": self.total.blocks,
            "aborts": self.total.aborts,
            "nd_fast_path": self.total.nd_fast_path,
            "ad_edges": self.total.ad_edges,
            "cd_edges": self.total.cd_edges,
            "nd_pairs": self.total.nd_pairs,
            "conflict_rate": self.conflict_rate,
            "abort_rate": self.abort_rate,
            "recommendation": self.recommend(),
        }


@dataclass
class ObjectConflictTracker:
    """Live windowed counters for one registered object.

    The scheduler calls the ``note_*`` hooks from its existing decision
    points; each is a couple of integer increments, so the hot path cost
    is negligible and — critically — identical whether or not a tracer
    is attached.
    """

    object_name: str
    window_size: int = 64
    windows_sealed: int = 0
    total: ConflictWindow = field(default_factory=ConflictWindow)
    current: ConflictWindow = field(default_factory=ConflictWindow)
    recent: ConflictWindow = field(default_factory=ConflictWindow)
    thresholds: RecommendThresholds = DEFAULT_THRESHOLDS

    def _seal_if_full(self) -> None:
        if self.current.requests >= self.window_size:
            self.recent = self.current
            self.current = ConflictWindow()
            self.windows_sealed += 1

    def note_request(self) -> None:
        self.total.requests += 1
        self.current.requests += 1
        self._seal_if_full()

    def note_grant(self) -> None:
        self.total.grants += 1
        self.current.grants += 1

    def note_block(self) -> None:
        self.total.blocks += 1
        self.current.blocks += 1

    def note_abort(self) -> None:
        self.total.aborts += 1
        self.current.aborts += 1

    def note_dep(self, kind: str) -> None:
        if kind == "AD":
            self.total.ad_edges += 1
            self.current.ad_edges += 1
        elif kind == "CD":
            self.total.cd_edges += 1
            self.current.cd_edges += 1
        else:
            self.total.nd_pairs += 1
            self.current.nd_pairs += 1

    def add_nd_fast(self, delta: int) -> None:
        if delta:
            self.total.nd_fast_path += delta
            self.current.nd_fast_path += delta

    def profile(self) -> ConflictProfile:
        return ConflictProfile(
            object_name=self.object_name,
            window_size=self.window_size,
            windows_sealed=self.windows_sealed,
            total=self.total,
            recent=self.recent,
            thresholds=self.thresholds,
        )


def profiles_from_trace(
    events: Sequence[TraceEvent],
    window: int = 32,
    thresholds: RecommendThresholds = DEFAULT_THRESHOLDS,
) -> dict[str, ConflictProfile]:
    """Rebuild per-object conflict profiles from a recorded trace.

    Aborts are attributed to the last object the aborting transaction
    touched (requested or blocked on) — the best offline approximation
    of "which object's conflict killed it".  ND fast-path hits are not
    reconstructible from events and stay zero here.
    """
    trackers: dict[str, ObjectConflictTracker] = {}
    last_object: dict[int, str] = {}

    def tracker(name: str) -> ObjectConflictTracker:
        existing = trackers.get(name)
        if existing is None:
            existing = trackers[name] = ObjectConflictTracker(
                object_name=name, window_size=window, thresholds=thresholds
            )
        return existing

    for event in events:
        if isinstance(event, OpRequested):
            tracker(event.object_name).note_request()
            last_object[event.txn] = event.object_name
        elif isinstance(event, OpGranted):
            tracker(event.object_name).note_grant()
            last_object[event.txn] = event.object_name
        elif isinstance(event, OpBlocked):
            tracker(event.object_name).note_block()
            last_object[event.txn] = event.object_name
        elif isinstance(event, TxnAborted):
            name = last_object.pop(event.txn, None)
            if name is not None:
                tracker(name).note_abort()
    return {name: trackers[name].profile() for name in sorted(trackers)}

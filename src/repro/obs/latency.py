"""Sim-time latency histograms: mergeable log₂ buckets with quantiles.

The serving-layer roadmap needs "p99 latency and which phase dominates
it" from every run, cheaply.  :class:`Histogram` is the classic
HdrHistogram-lite answer sized for sim-time: fixed power-of-two buckets
(one per octave, exponents ``MIN_EXP``..``MAX_EXP``, plus a dedicated
zero bucket), O(1) observation with no allocation, exact ``count`` /
``sum`` / ``min`` / ``max``, and mergeability by plain bucket addition —
so per-object and per-node histograms roll up into cluster totals
without storing samples.

Quantile error bound: a reported quantile is the upper bound of the
bucket containing the rank (clamped to the observed maximum), so it
overestimates by at most one octave — a factor of 2.  Sim-time latencies
span many decades (0 for same-tick grants, tens of units under fault
storms), which is exactly the regime log bucketing is built for.

:class:`LatencyRecorder` is a keyed bag of histograms — ``(metric,
key)`` pairs like ``("op_grant", "shard0")`` — with deterministic
iteration and registry export; :func:`latency_from_trace` fills one from
a recorded JSONL trace: operation grant latency and blocked time per
object, commit-wait, 2PC phase round-trips per span, and end-to-end
transaction latency.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.obs.events import (
    CommitWaited,
    OpBlocked,
    OpGranted,
    OpRequested,
    SpanRecorded,
    TraceEvent,
    TxnAborted,
    TxnBegun,
    TxnCommitted,
)

__all__ = [
    "Histogram",
    "LatencyRecorder",
    "POW2_BOUNDS",
    "latency_from_trace",
]

#: Smallest and largest bucket exponents: buckets cover (2^(k-1), 2^k].
MIN_EXP = -20
MAX_EXP = 20

#: The finite bucket upper bounds, for registry-histogram export.
POW2_BOUNDS = tuple(float(2.0 ** exp) for exp in range(MIN_EXP, MAX_EXP + 1))


def _bucket_exponent(value: float) -> int:
    """Exponent ``k`` with ``2^(k-1) < value <= 2^k``, clamped to range.

    Uses ``math.frexp`` (``value = m * 2^e`` with ``0.5 <= m < 1``) so
    exact powers of two land in their own bucket without float-log
    imprecision.
    """
    mantissa, exponent = math.frexp(value)
    k = exponent - 1 if mantissa == 0.5 else exponent
    return min(max(k, MIN_EXP), MAX_EXP)


class Histogram:
    """A mergeable fixed-bucket log₂ latency histogram."""

    __slots__ = ("zeros", "buckets", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.zeros = 0
        self.buckets = [0] * (MAX_EXP - MIN_EXP + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one latency; negative values clamp to the zero bucket."""
        if value < 0.0:
            value = 0.0
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value == 0.0:
            self.zeros += 1
        else:
            self.buckets[_bucket_exponent(value) - MIN_EXP] += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (bucketwise addition)."""
        self.zeros += other.zeros
        for index, count in enumerate(other.buckets):
            self.buckets[index] += count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile, accurate to one log₂ bucket (≤ 2×).

        Returns the upper bound of the bucket holding the ceil-rank
        observation, clamped to the exact observed maximum (so
        ``quantile(1.0) == max``).  Empty histograms report ``0.0``.
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zeros:
            return 0.0
        running = self.zeros
        for index, count in enumerate(self.buckets):
            running += count
            if rank <= running:
                return min(float(2.0 ** (MIN_EXP + index)), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Non-empty ``(upper bound, count)`` buckets, ascending."""
        pairs = [(0.0, self.zeros)] if self.zeros else []
        pairs.extend(
            (float(2.0 ** (MIN_EXP + index)), count)
            for index, count in enumerate(self.buckets)
            if count
        )
        return pairs

    def summary(self) -> str:
        """``p50=… p90=… p99=… max=… (n=…)`` — the footer building block."""
        return (
            f"p50={self.p50:.2f} p90={self.p90:.2f} p99={self.p99:.2f} "
            f"max={self.max:.2f} (n={self.count})"
        )


class LatencyRecorder:
    """Histograms keyed by ``(metric, key)``, deterministic to iterate."""

    def __init__(self) -> None:
        self._histograms: dict[tuple[str, str], Histogram] = {}

    def observe(self, metric: str, key: str, value: float) -> None:
        histogram = self._histograms.get((metric, key))
        if histogram is None:
            histogram = self._histograms[(metric, key)] = Histogram()
        histogram.observe(value)

    def get(self, metric: str, key: str) -> Histogram | None:
        return self._histograms.get((metric, key))

    def merged(self, metric: str) -> Histogram:
        """All keys of one metric folded into a single histogram."""
        total = Histogram()
        for (name, _key), histogram in self._histograms.items():
            if name == metric:
                total.merge(histogram)
        return total

    def metrics(self) -> list[str]:
        return sorted({metric for metric, _ in self._histograms})

    def rows(self) -> list[tuple[str, str, Histogram]]:
        """Every ``(metric, key, histogram)``, sorted for stable output."""
        return [
            (metric, key, self._histograms[(metric, key)])
            for metric, key in sorted(self._histograms)
        ]

    def __len__(self) -> int:
        return len(self._histograms)

    def publish(self, registry, prefix: str = "latency") -> None:
        """Export into a :class:`~repro.obs.registry.MetricsRegistry`.

        Each ``(metric, key)`` becomes a registry histogram over the
        power-of-two bounds (populated via
        :meth:`~repro.obs.registry.Histogram.accumulate`, preserving the
        exact sum), ready for JSON or Prometheus rendering.
        """
        for metric, key, histogram in self.rows():
            target = registry.histogram(
                f"{prefix}_{metric}",
                bounds=POW2_BOUNDS,
                help=f"Sim-time {metric} latency (log2 buckets).",
                labels={"key": key},
            )
            for bound, count in histogram.bucket_counts():
                target.accumulate(bound, count)
            # accumulate() summed bucket bounds; restore the exact sum.
            target.sum = histogram.sum


def latency_from_trace(events: Sequence[TraceEvent]) -> LatencyRecorder:
    """Latency histograms reconstructed from one trace.

    * ``op_grant`` per object — first ``OpRequested`` of a step to its
      ``OpGranted`` (requests are serialized per transaction, so the
      pending-request map needs one slot per txn);
    * ``blocked`` per object — ``OpBlocked`` to the next grant or abort;
    * ``commit_wait`` — ``CommitWaited`` to commit/abort;
    * ``span.<name>`` per node — every recorded span's duration (2PC
      phases, scheduler intervals, retries, recovery);
    * ``txn`` — end-to-end latency per committed transaction: from root
      ``txn`` spans when the trace has spans (node-safe in distributed
      traces, where local txn ids collide), else ``TxnBegun`` →
      ``TxnCommitted``.
    """
    recorder = LatencyRecorder()
    pending_request: dict[int, tuple[float, str]] = {}
    blocked_since: dict[int, tuple[float, str]] = {}
    commit_wait_since: dict[int, float] = {}
    begun_at: dict[int, float] = {}
    saw_spans = False
    for event in events:
        if isinstance(event, SpanRecorded):
            saw_spans = True
            duration = event.end - event.start
            recorder.observe(f"span.{event.name}", event.node, duration)
            if event.name == "txn" and event.status == "COMMITTED":
                recorder.observe("txn", "committed", duration)
        elif isinstance(event, OpRequested):
            pending_request.setdefault(
                event.txn, (event.time, event.object_name)
            )
        elif isinstance(event, OpGranted):
            pending = pending_request.pop(event.txn, None)
            if pending is not None:
                recorder.observe(
                    "op_grant", pending[1], event.time - pending[0]
                )
            blocked = blocked_since.pop(event.txn, None)
            if blocked is not None:
                recorder.observe("blocked", blocked[1], event.time - blocked[0])
        elif isinstance(event, OpBlocked):
            blocked_since.setdefault(
                event.txn, (event.time, event.object_name)
            )
        elif isinstance(event, CommitWaited):
            commit_wait_since.setdefault(event.txn, event.time)
        elif isinstance(event, TxnBegun):
            begun_at[event.txn] = event.time
        elif isinstance(event, TxnCommitted):
            waited = commit_wait_since.pop(event.txn, None)
            if waited is not None:
                recorder.observe("commit_wait", "all", event.time - waited)
            if not saw_spans and event.txn in begun_at:
                recorder.observe(
                    "txn", "committed", event.time - begun_at[event.txn]
                )
        elif isinstance(event, TxnAborted):
            pending_request.pop(event.txn, None)
            waited = commit_wait_since.pop(event.txn, None)
            if waited is not None:
                recorder.observe("commit_wait", "all", event.time - waited)
            blocked = blocked_since.pop(event.txn, None)
            if blocked is not None:
                recorder.observe("blocked", blocked[1], event.time - blocked[0])
    return recorder


def histogram_of(values: Iterable[float]) -> Histogram:
    """Convenience: a histogram over an iterable of samples."""
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram

"""repro.obs — observability for the scheduler stack.

Structured event tracing (:mod:`repro.obs.events`,
:mod:`repro.obs.tracers`), a dependency-free metrics registry with JSON
and Prometheus exports (:mod:`repro.obs.registry`), derivation profiling
(:mod:`repro.obs.profiling`), and offline trace analysis — timelines,
table-entry firing histograms, and trace-only serializability
re-verification (:mod:`repro.obs.analysis`).

The tracing contract: every instrumented component takes an optional
``tracer``; the default :class:`~repro.obs.tracers.NullTracer` is falsy
and instrumentation guards each emission with ``if tracer:``, so the
un-traced hot path never constructs an event.
"""

from repro.obs.analysis import (
    EntryFiring,
    TraceSummary,
    find_serialization_from_trace,
    firing_histogram,
    parse_literal,
    registry_from_trace,
    render_dashboard,
    serializable_from_trace,
    summarize,
    transaction_timeline,
)
from repro.obs.conflict import (
    ConflictProfile,
    ConflictWindow,
    ObjectConflictTracker,
    profiles_from_trace,
)
from repro.obs.events import (
    CascadeAborted,
    CommitWaited,
    DeadlockResolved,
    DependencyRecorded,
    ObjectRegistered,
    OpBlocked,
    OpGranted,
    OpRequested,
    RunCompleted,
    RunStarted,
    SpanRecorded,
    StageTimed,
    TraceEvent,
    TxnAborted,
    TxnBegun,
    TxnCommitted,
    event_from_dict,
)
from repro.obs.latency import LatencyRecorder, latency_from_trace
from repro.obs.latency import Histogram as LatencyHistogram
from repro.obs.profiling import DerivationProfile, StageProfile, StageProfiler
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import (
    NULL_SPAN,
    SpanEmitter,
    SpanForest,
    SpanNode,
    build_span_trees,
    critical_path,
    render_critical_path,
    trace_id_for,
)
from repro.obs.tracers import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    read_trace,
)

__all__ = [
    # events
    "TraceEvent",
    "RunStarted",
    "ObjectRegistered",
    "TxnBegun",
    "OpRequested",
    "OpGranted",
    "OpBlocked",
    "DependencyRecorded",
    "CommitWaited",
    "TxnCommitted",
    "TxnAborted",
    "CascadeAborted",
    "DeadlockResolved",
    "StageTimed",
    "SpanRecorded",
    "RunCompleted",
    "event_from_dict",
    # tracers
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RecordingTracer",
    "JsonlTracer",
    "read_trace",
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # profiling
    "StageProfile",
    "DerivationProfile",
    "StageProfiler",
    # analysis
    "parse_literal",
    "EntryFiring",
    "firing_histogram",
    "transaction_timeline",
    "TraceSummary",
    "summarize",
    "find_serialization_from_trace",
    "serializable_from_trace",
    "registry_from_trace",
    "render_dashboard",
    # spans
    "NULL_SPAN",
    "SpanEmitter",
    "SpanForest",
    "SpanNode",
    "build_span_trees",
    "critical_path",
    "render_critical_path",
    "trace_id_for",
    # latency
    "LatencyHistogram",
    "LatencyRecorder",
    "latency_from_trace",
    # conflict
    "ConflictProfile",
    "ConflictWindow",
    "ObjectConflictTracker",
    "profiles_from_trace",
]

"""Structural analysis of object graphs.

Utilities used by tests, experiments and the methodology engine to reason
about the shape of object graphs: ordering-graph cycles (permitted by
Section 4.1), traversal orders induced by ordering edges, hierarchy depth of
complex objects, and validation of the single-level restriction on ordering
edges.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.object_graph import ObjectGraph
from repro.graph.vertex import VertexId

__all__ = [
    "has_ordering_cycle",
    "ordering_walk",
    "hierarchy_depth",
    "component_count",
    "is_linear_chain",
]


def has_ordering_cycle(graph: ObjectGraph) -> bool:
    """Whether the ordering graph of ``graph`` contains a cycle.

    Section 4.1: "At any level of the hierarchy, the ordering graph of the
    object at that level may contain cycles."  This predicate lets callers
    detect when an ordering walk would not terminate naturally.
    """
    colour: dict[VertexId, int] = {}  # 0 = in progress, 1 = done

    def visit(vid: VertexId) -> bool:
        colour[vid] = 0
        for successor in graph.successors(vid):
            state = colour.get(successor)
            if state == 0:
                return True
            if state is None and visit(successor):
                return True
        colour[vid] = 1
        return False

    return any(visit(vid) for vid in graph.vertex_ids() if vid not in colour)


def ordering_walk(
    graph: ObjectGraph, start: VertexId, limit: int | None = None
) -> Iterator[VertexId]:
    """Walk ordering edges from ``start``, yielding each visited vertex once.

    "The ordering edge emanating from a component indicates the next
    component that can be accessed following access to this component."
    When a vertex has several outgoing ordering edges the walk follows the
    smallest-id successor (a deterministic choice; linear objects have at
    most one).  The walk stops at a vertex without successors, on revisiting
    a vertex (cycle), or after ``limit`` vertices.
    """
    seen: set[VertexId] = set()
    current: VertexId | None = start
    steps = 0
    while current is not None and current not in seen:
        if limit is not None and steps >= limit:
            return
        yield current
        seen.add(current)
        steps += 1
        successors = graph.successors(current)
        current = min(successors) if successors else None


def hierarchy_depth(graph: ObjectGraph) -> int:
    """Depth of the composition hierarchy.

    A graph whose components are all primitive has depth 1; each level of
    nested component objects adds one (Figure 1's object ``A`` has depth 2).
    An empty graph has depth 1 by convention (the object itself exists).
    """
    depths = [1]
    for vertex in graph.vertices():
        if vertex.is_complex():
            depths.append(1 + hierarchy_depth(vertex.value))
    return max(depths)


def component_count(graph: ObjectGraph, recursive: bool = False) -> int:
    """Number of components; with ``recursive`` counts nested components too."""
    total = len(graph)
    if recursive:
        for vertex in graph.vertices():
            if vertex.is_complex():
                total += component_count(vertex.value, recursive=True)
    return total


def is_linear_chain(graph: ObjectGraph) -> bool:
    """Whether the ordering graph is a single simple path covering all vertices.

    The QStack's ordering graph is always a linear chain from the back
    element to the front element; this predicate is the invariant checked by
    the QStack property tests after every operation.
    """
    vids = graph.vertex_ids()
    if len(vids) <= 1:
        return not graph.ordering_edges()
    out_degrees = {vid: len(graph.successors(vid)) for vid in vids}
    in_degrees = {vid: len(graph.predecessors(vid)) for vid in vids}
    heads = [vid for vid in vids if in_degrees[vid] == 0]
    tails = [vid for vid in vids if out_degrees[vid] == 0]
    if len(heads) != 1 or len(tails) != 1:
        return False
    if any(out_degrees[vid] > 1 or in_degrees[vid] > 1 for vid in vids):
        return False
    walked = list(ordering_walk(graph, heads[0]))
    return len(walked) == len(vids)

"""Fluent construction of object graphs.

Building the graphs of the paper's figures by hand is verbose; the builder
provides a compact, readable way to declare components, ordering edges,
nested component objects and references.  It is used by the ADT models in
:mod:`repro.adts` and by the figure-reproduction experiments.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import GraphError
from repro.graph.object_graph import ObjectGraph
from repro.graph.vertex import VertexId

__all__ = ["GraphBuilder", "build_chain"]


class GraphBuilder:
    """Incrementally assemble an :class:`ObjectGraph`.

    Components may be given string labels; ordering edges and references can
    then be declared in terms of those labels, which keeps figure
    definitions close to the paper's notation::

        graph = (
            GraphBuilder("A")
            .component("B", value=1)
            .component("C", value=2)
            .component("D", value=GraphBuilder("D").component("E").build())
            .order("B", "C")
            .order("C", "D")
            .build()
        )
    """

    def __init__(self, name: str = "object") -> None:
        self._graph = ObjectGraph(name)
        self._by_label: dict[str, VertexId] = {}
        self._built = False

    def component(self, label: str, value: Any = None) -> "GraphBuilder":
        """Add a labelled component vertex.

        ``value`` may be a simple data value or a nested ``ObjectGraph``
        (making the parent a complex object, as in Figure 1).
        """
        self._check_open()
        if label in self._by_label:
            raise GraphError(f"duplicate component label {label!r}")
        vid = self._graph.add_vertex(value=value, label=label)
        self._by_label[label] = vid
        return self

    def order(self, source_label: str, target_label: str) -> "GraphBuilder":
        """Add an ordering edge between two labelled components."""
        self._check_open()
        self._graph.add_ordering_edge(
            self._resolve(source_label), self._resolve(target_label)
        )
        return self

    def reference(self, name: str, target_label: str | None) -> "GraphBuilder":
        """Declare a named reference, optionally aimed at a component."""
        self._check_open()
        target = None if target_label is None else self._resolve(target_label)
        self._graph.declare_reference(name, target)
        return self

    def build(self) -> ObjectGraph:
        """Finish construction and return the graph.

        The builder is single-use: further calls raise ``GraphError``.
        """
        self._check_open()
        self._built = True
        return self._graph

    def vertex_id(self, label: str) -> VertexId:
        """Look up the vertex id assigned to a label."""
        return self._resolve(label)

    # -- internals ------------------------------------------------------

    def _resolve(self, label: str) -> VertexId:
        try:
            return self._by_label[label]
        except KeyError:
            raise GraphError(f"unknown component label {label!r}") from None

    def _check_open(self) -> None:
        if self._built:
            raise GraphError("builder already finished; create a new one")


def build_chain(
    name: str,
    values: Sequence[Any],
    references: Iterable[tuple[str, int | None]] = (),
    reverse_order: bool = True,
) -> ObjectGraph:
    """Build a linear object: components holding ``values``, chained by order.

    This is the shape of the paper's QStack (Figure 2): components
    ``values[0] .. values[n-1]`` from front to back, with ordering edges
    pointing *towards the front* when ``reverse_order`` is true (edge from
    each element to the element in front of it).

    Args:
        name: Object name (root label).
        values: Component contents, front first.
        references: ``(reference_name, index_into_values_or_None)`` pairs;
            an index of ``None`` declares a dangling reference.
        reverse_order: Direction of ordering edges.  ``True`` gives
            back-to-front edges (QStack convention); ``False`` gives
            front-to-back edges (plain queue convention).

    Returns:
        The assembled object graph.
    """
    graph = ObjectGraph(name)
    vids = [graph.add_vertex(value=value) for value in values]
    pairs = zip(vids[1:], vids) if reverse_order else zip(vids, vids[1:])
    for source, target in pairs:
        graph.add_ordering_edge(source, target)
    for ref_name, index in references:
        target = None if index is None else vids[index]
        graph.declare_reference(ref_name, target)
    return graph

"""Instrumented object-graph access and locality traces (Defs. 11-17).

The paper derives the concurrency properties of an operation from its
*locality*: the set of vertices it inserted/deleted, whose existence it
observed, whose content it changed or observed, and to/from which it
changed or observed ordering edges (Def. 11).  The locality splits into

* structure-observation locality ``L^so`` (Def. 14),
* structure-modification locality ``L^sm`` (Def. 15),
* content-observation locality ``L^co`` (Def. 16), and
* content-modification locality ``L^cm`` (Def. 17).

Operations in this library are written as *graph programs* against an
:class:`InstrumentedGraph`, a thin wrapper over
:class:`~repro.graph.object_graph.ObjectGraph` that performs the underlying
mutation or observation **and** records it in a :class:`LocalityTrace`.
Deriving a locality therefore never requires annotating an operation by
hand — it falls out of executing the operation, which is the behaviour the
paper anticipates ("finding the actual locality of an operation may require
the execution of the operation", Section 4.3).

Attribution of ordering-edge changes
------------------------------------

Def. 15 places in ``L^sm`` the vertices "to/from which ordering edges are
changed".  Read literally, a changed edge contributes *both* endpoints
(``EdgeAttribution.BOTH``).  The paper's own Stage-5 reasoning for the
QStack, however, works at the granularity of *references* and effectively
attributes an inserted vertex's new ordering edge only to the inserted
vertex.  Both attributions are implemented; ``BOTH`` is the default because
it is the literal reading, and the difference between the two is the
subject of an ablation benchmark (see DESIGN.md §5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.graph.object_graph import ObjectGraph
from repro.graph.vertex import VertexId

__all__ = [
    "EdgeAttribution",
    "LocalityTrace",
    "InstrumentedGraph",
    "discard_trace",
]


class EdgeAttribution(enum.Enum):
    """How an ordering-edge change is attributed to vertex localities."""

    #: Both endpoints of the edge enter the locality (literal Def. 15).
    BOTH = "both"
    #: Only the source of the edge enters the locality (reference-granular
    #: reading used implicitly by the paper's Stage 5).
    SOURCE = "source"


@dataclass
class LocalityTrace:
    """Record of the locality of one executed operation.

    The four vertex sets correspond directly to Defs. 14-17.  In addition
    the trace records which named references the operation read and wrote —
    that information belongs to dimension *D5* of the Stage-2
    characterisation (Section 5) and feeds the Stage-5 locality predicates.
    """

    structure_observed: set[VertexId] = field(default_factory=set)
    structure_modified: set[VertexId] = field(default_factory=set)
    content_observed: set[VertexId] = field(default_factory=set)
    content_modified: set[VertexId] = field(default_factory=set)
    references_read: set[str] = field(default_factory=set)
    references_written: set[str] = field(default_factory=set)

    # -- Derived sets of the paper ------------------------------------

    @property
    def structure_locality(self) -> set[VertexId]:
        """``L^s`` of Def. 12."""
        return self.structure_observed | self.structure_modified

    @property
    def content_locality(self) -> set[VertexId]:
        """``L^c`` of Def. 13."""
        return self.content_observed | self.content_modified

    @property
    def locality(self) -> set[VertexId]:
        """``L = L^s ∪ L^c`` of Def. 11."""
        return self.structure_locality | self.content_locality

    def kind(self, name: str) -> set[VertexId]:
        """Locality set by short name: ``'so'``, ``'sm'``, ``'co'`` or ``'cm'``."""
        return {
            "so": self.structure_observed,
            "sm": self.structure_modified,
            "co": self.content_observed,
            "cm": self.content_modified,
        }[name]

    def merge(self, other: "LocalityTrace") -> "LocalityTrace":
        """Union of two traces (used when aggregating over states/arguments)."""
        return LocalityTrace(
            structure_observed=self.structure_observed | other.structure_observed,
            structure_modified=self.structure_modified | other.structure_modified,
            content_observed=self.content_observed | other.content_observed,
            content_modified=self.content_modified | other.content_modified,
            references_read=self.references_read | other.references_read,
            references_written=self.references_written | other.references_written,
        )

    def observes_structure(self) -> bool:
        """Whether the operation noted the existence/ordering of any vertex."""
        return bool(self.structure_observed)

    def modifies_structure(self) -> bool:
        """Whether the operation inserted/deleted vertices or changed order."""
        return bool(self.structure_modified)

    def observes_content(self) -> bool:
        """Whether the operation read the content of any vertex."""
        return bool(self.content_observed)

    def modifies_content(self) -> bool:
        """Whether the operation changed the content of any vertex."""
        return bool(self.content_modified)

    def is_pure_observer(self) -> bool:
        """True when nothing was modified (structure or content)."""
        return not (self.structure_modified or self.content_modified)


class _DiscardSet(set):
    """A set that drops everything added to it.

    Backing store of :func:`discard_trace`: the instrumentation code paths
    stay identical (no per-call-site "am I tracing?" branches) while the
    bookkeeping itself becomes a no-op.
    """

    __slots__ = ()

    def add(self, _element: object) -> None:
        pass

    def update(self, *_others: object) -> None:
        pass


def discard_trace() -> LocalityTrace:
    """A :class:`LocalityTrace` that records nothing.

    For callers that execute an operation only for its post-state or
    return value (e.g. reachability sweeps), locality bookkeeping is pure
    overhead; executing against a discarding trace skips it without
    forking the execution path.
    """
    return LocalityTrace(
        structure_observed=_DiscardSet(),
        structure_modified=_DiscardSet(),
        content_observed=_DiscardSet(),
        content_modified=_DiscardSet(),
        references_read=_DiscardSet(),
        references_written=_DiscardSet(),
    )


class InstrumentedGraph:
    """Object-graph facade that records every access in a locality trace.

    All mutating and observing graph primitives of the paper's Section 4.2
    list are provided:

    1. change the contents of vertices        -> :meth:`modify_content`
    2. insert or delete vertices and edges    -> :meth:`insert_vertex`,
                                                 :meth:`delete_vertex`
    3. change the structure (ordering edges)  -> :meth:`add_ordering_edge`,
                                                 :meth:`remove_ordering_edge`
    4. observe the contents of vertices       -> :meth:`observe_content`
    5. observe the structure / presence       -> :meth:`observe_presence`,
                                                 :meth:`observe_order`,
                                                 :meth:`observe_all_presence`

    Reference handling (Def. 20) goes through :meth:`deref` and
    :meth:`retarget`; dereferencing a non-dangling reference counts as a
    structure observation of the referenced vertex (the operation noted the
    vertex's existence through the composed-of edge).
    """

    def __init__(
        self,
        graph: ObjectGraph,
        attribution: EdgeAttribution = EdgeAttribution.BOTH,
        trace: LocalityTrace | None = None,
    ) -> None:
        self.graph = graph
        self.attribution = attribution
        self.trace = trace if trace is not None else LocalityTrace()

    # ------------------------------------------------------------------
    # Structure modification
    # ------------------------------------------------------------------

    def insert_vertex(self, value: Any = None, label: str | None = None) -> VertexId:
        """Insert a vertex; enters both ``L^sm`` and ``L^cm`` (Defs. 15, 17)."""
        vid = self.graph.add_vertex(value=value, label=label)
        self.trace.structure_modified.add(vid)
        self.trace.content_modified.add(vid)
        return vid

    def delete_vertex(self, vid: VertexId, observe_value: bool = True) -> Any:
        """Delete a vertex; enters both ``L^sm`` and ``L^cm``.

        The deleted value is returned to the caller, so by default the
        vertex also enters ``L^co``: a Pop that hands its transaction the
        popped element has *observed* that content (this is what makes a
        Pop conflict with a preceding Replace).  Pass
        ``observe_value=False`` for operations that discard the value.

        Ordering edges incident to the vertex disappear with it; under
        ``BOTH`` attribution their surviving endpoints also enter ``L^sm``
        because edges "from which" them changed.
        """
        if self.attribution is EdgeAttribution.BOTH:
            for other in self.graph.successors(vid) | self.graph.predecessors(vid):
                self.trace.structure_modified.add(other)
        vertex = self.graph.remove_vertex(vid)
        self.trace.structure_modified.add(vid)
        self.trace.content_modified.add(vid)
        if observe_value:
            self.trace.content_observed.add(vid)
        return vertex.value

    def add_ordering_edge(self, source: VertexId, target: VertexId) -> None:
        """Add an ordering edge; endpoints enter ``L^sm`` per attribution."""
        self.graph.add_ordering_edge(source, target)
        self._attribute_edge_change(source, target)

    def remove_ordering_edge(self, source: VertexId, target: VertexId) -> None:
        """Remove an ordering edge; endpoints enter ``L^sm`` per attribution."""
        self.graph.remove_ordering_edge(source, target)
        self._attribute_edge_change(source, target)

    # ------------------------------------------------------------------
    # Content access
    # ------------------------------------------------------------------

    def modify_content(self, vid: VertexId, value: Any) -> None:
        """Change a vertex's content; the vertex enters ``L^cm`` (Def. 17)."""
        self.graph.set_content(vid, value)
        self.trace.content_modified.add(vid)

    def observe_content(self, vid: VertexId) -> Any:
        """Read a vertex's content; the vertex enters ``L^co`` (Def. 16)."""
        self.trace.content_observed.add(vid)
        return self.graph.content(vid)

    # ------------------------------------------------------------------
    # Structure observation
    # ------------------------------------------------------------------

    def observe_presence(self, vid: VertexId) -> bool:
        """Note the existence of a vertex; it enters ``L^so`` (Def. 14)."""
        present = self.graph.has_vertex(vid)
        if present:
            self.trace.structure_observed.add(vid)
        return present

    def observe_all_presence(self) -> set[VertexId]:
        """Observe the presence of *every* component (e.g. QStack ``Size``).

        "Size observes the structure and counts the vertices present"
        (Section 4.2).  Every current vertex enters ``L^so``.
        """
        vids = self.graph.vertex_ids()
        self.trace.structure_observed.update(vids)
        return vids

    def observe_order(self, vid: VertexId) -> set[VertexId]:
        """Observe the ordering edges emanating from ``vid``.

        ``vid`` and (under ``BOTH`` attribution) the observed successors
        enter ``L^so``; returns the successor set.
        """
        successors = self.graph.successors(vid)
        self.trace.structure_observed.add(vid)
        if self.attribution is EdgeAttribution.BOTH:
            self.trace.structure_observed.update(successors)
        return successors

    def observe_predecessors(self, vid: VertexId) -> set[VertexId]:
        """Observe the ordering edges arriving at ``vid`` (symmetric to
        :meth:`observe_order`)."""
        predecessors = self.graph.predecessors(vid)
        self.trace.structure_observed.add(vid)
        if self.attribution is EdgeAttribution.BOTH:
            self.trace.structure_observed.update(predecessors)
        return predecessors

    # ------------------------------------------------------------------
    # References (Def. 20 / dimension D5)
    # ------------------------------------------------------------------

    def deref(self, name: str) -> VertexId | None:
        """Follow a named reference.

        Recorded as a reference read; when the reference designates a
        vertex, the operation has noted that vertex's existence, so the
        vertex enters ``L^so``.
        """
        self.trace.references_read.add(name)
        vid = self.graph.reference(name)
        if vid is not None:
            self.trace.structure_observed.add(vid)
        return vid

    def retarget(self, name: str, target: VertexId | None) -> None:
        """Point a named reference at a (possibly different) component.

        Recorded as a reference write.  Reference retargeting selects a
        different composed-of edge (Def. 20 discussion); it does not by
        itself place any vertex in a locality set — the vertices involved
        will already be in the trace through the graph accesses that
        located them.
        """
        self.trace.references_written.add(name)
        self.graph.retarget_reference(name, target)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _attribute_edge_change(self, source: VertexId, target: VertexId) -> None:
        self.trace.structure_modified.add(source)
        if self.attribution is EdgeAttribution.BOTH:
            self.trace.structure_modified.add(target)

"""Object-graph substrate (Section 4.1 of the paper).

Public surface:

* :class:`~repro.graph.object_graph.ObjectGraph` — the graph ``G_ob`` of
  Def. 8 with composition and ordering subgraphs (Def. 9), recursive
  content (Def. 10), ``V_simple`` (Def. 18) and references (Def. 20).
* :class:`~repro.graph.instrument.InstrumentedGraph` /
  :class:`~repro.graph.instrument.LocalityTrace` — execution-time recording
  of operation localities (Defs. 11-17).
* :class:`~repro.graph.builder.GraphBuilder` and
  :func:`~repro.graph.builder.build_chain` — fluent construction.
* Rendering (:func:`render_ascii`, :func:`render_dot`,
  :func:`render_chain`) and analysis helpers.
"""

from repro.graph.analysis import (
    component_count,
    has_ordering_cycle,
    hierarchy_depth,
    is_linear_chain,
    ordering_walk,
)
from repro.graph.builder import GraphBuilder, build_chain
from repro.graph.edges import ComposedOfEdge, OrderingEdge
from repro.graph.instrument import EdgeAttribution, InstrumentedGraph, LocalityTrace
from repro.graph.object_graph import CompositionGraph, ObjectGraph, OrderingGraph
from repro.graph.render import render_ascii, render_chain, render_dot
from repro.graph.vertex import Vertex, VertexId, VertexIdAllocator

__all__ = [
    "ObjectGraph",
    "CompositionGraph",
    "OrderingGraph",
    "Vertex",
    "VertexId",
    "VertexIdAllocator",
    "ComposedOfEdge",
    "OrderingEdge",
    "InstrumentedGraph",
    "LocalityTrace",
    "EdgeAttribution",
    "GraphBuilder",
    "build_chain",
    "render_ascii",
    "render_dot",
    "render_chain",
    "has_ordering_cycle",
    "ordering_walk",
    "hierarchy_depth",
    "component_count",
    "is_linear_chain",
]

"""Vertices of the object graph (Def. 8 of the paper).

A vertex represents one component of an object.  A component is either a
*primitive* object carrying a simple data value, or itself a *complex*
object, in which case the vertex's value is a nested
:class:`~repro.graph.object_graph.ObjectGraph` (the recursive view of
Def. 7: "the primitive object has a simple data value").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["VertexId", "Vertex", "VertexIdAllocator"]

#: Vertices are identified by small integers; identities are stable for the
#: lifetime of a graph so that locality sets (Defs. 11-17) can be compared
#: across the execution of several operations on the same graph.
VertexId = int


@dataclass
class Vertex:
    """One component of an object.

    Attributes:
        vid: The identity of the vertex inside its graph.
        value: The content of the vertex.  A simple data value for a
            primitive component, or a nested ``ObjectGraph`` for a component
            that is itself an object (Def. 10).
        label: Optional human-readable name used when rendering figures
            (e.g. ``"B"`` in Figure 1 of the paper).
    """

    vid: VertexId
    value: Any = None
    label: str | None = None

    def is_complex(self) -> bool:
        """Return ``True`` when this vertex holds a nested object graph.

        Imported lazily to avoid a circular import between ``vertex`` and
        ``object_graph``.
        """
        from repro.graph.object_graph import ObjectGraph

        return isinstance(self.value, ObjectGraph)

    def display_name(self) -> str:
        """Name used by the renderers: the label if set, else ``v<id>``."""
        return self.label if self.label is not None else f"v{self.vid}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_complex():
            return f"Vertex({self.display_name()}, <complex>)"
        return f"Vertex({self.display_name()}, {self.value!r})"


@dataclass
class VertexIdAllocator:
    """Monotonically increasing vertex-id source.

    Each :class:`~repro.graph.object_graph.ObjectGraph` owns one allocator so
    that vertex ids are never reused within a graph, even after deletions.
    Never reusing ids keeps locality traces unambiguous: a vertex deleted by
    one operation can never be confused with a vertex inserted by a later
    one.
    """

    _next: int = 0

    def allocate(self) -> VertexId:
        """Return a fresh, never-before-issued vertex id."""
        vid = self._next
        self._next += 1
        return vid

    def clone(self) -> "VertexIdAllocator":
        """A copy that will issue the same future ids.

        Cloned graphs (used for conflict previews) must allocate the *same*
        ids a real execution would, so that previewed locality traces are
        comparable with traces recorded on the original graph.
        """
        return VertexIdAllocator(_next=self._next)

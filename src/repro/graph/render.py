"""Rendering of object graphs as text and Graphviz DOT.

Used to regenerate the paper's Figure 1 (example object graph) and
Figure 2 (QStack object graph).  Composed-of edges are drawn solid, ordering
edges dotted, matching the paper's drawing conventions.
"""

from __future__ import annotations

from repro.graph.object_graph import ObjectGraph
from repro.graph.vertex import VertexId

__all__ = ["render_ascii", "render_dot", "render_chain"]


def _name(graph: ObjectGraph, vid: VertexId) -> str:
    return graph.vertex(vid).display_name()


def render_ascii(graph: ObjectGraph, indent: str = "") -> str:
    """Render a graph as an indented text diagram.

    Composed-of edges appear as indentation under the root; ordering edges
    and references are listed explicitly.  Nested component objects are
    rendered recursively one indentation level deeper.
    """
    lines = [f"{indent}{graph.name}"]
    for vid in sorted(graph.vertex_ids()):
        vertex = graph.vertex(vid)
        if vertex.is_complex():
            nested = render_ascii(vertex.value, indent + "    ")
            lines.append(f"{indent}  +-- {vertex.display_name()} (complex):")
            lines.append(nested)
        else:
            lines.append(
                f"{indent}  +-- {vertex.display_name()} = {vertex.value!r}"
            )
    ordering = sorted(
        graph.ordering_edges(), key=lambda e: (e.source, e.target)
    )
    if ordering:
        rendered = ", ".join(
            f"{_name(graph, e.source)}..>{_name(graph, e.target)}" for e in ordering
        )
        lines.append(f"{indent}  order: {rendered}")
    for ref in sorted(graph.reference_names()):
        target = graph.reference(ref)
        shown = "-" if target is None else _name(graph, target)
        lines.append(f"{indent}  ref {ref} -> {shown}")
    return "\n".join(lines)


def render_dot(graph: ObjectGraph) -> str:
    """Render a graph in Graphviz DOT syntax.

    Solid arrows are composed-of edges (root to each component), dotted
    arrows are ordering edges, dashed grey arrows are references.  Nested
    component objects are rendered as subgraph clusters.
    """
    lines = ["digraph object_graph {", "  rankdir=TB;"]
    lines.extend(_dot_body(graph, prefix="n"))
    lines.append("}")
    return "\n".join(lines)


def _dot_body(graph: ObjectGraph, prefix: str) -> list[str]:
    root = f"{prefix}_root"
    lines = [f'  {root} [label="{graph.name}", shape=box];']
    for vid in sorted(graph.vertex_ids()):
        vertex = graph.vertex(vid)
        node = f"{prefix}_{vid}"
        if vertex.is_complex():
            lines.append(f"  subgraph cluster_{node} {{")
            lines.extend(
                "  " + line for line in _dot_body(vertex.value, prefix=node)
            )
            lines.append("  }")
            lines.append(f"  {root} -> {node}_root;")
        else:
            label = vertex.display_name()
            if vertex.value is not None:
                label = f"{label}\\n{vertex.value!r}"
            lines.append(f'  {node} [label="{label}"];')
            lines.append(f"  {root} -> {node};")
    for edge in sorted(graph.ordering_edges(), key=lambda e: (e.source, e.target)):
        lines.append(
            f"  {prefix}_{edge.source} -> {prefix}_{edge.target} [style=dotted];"
        )
    for ref in sorted(graph.reference_names()):
        target = graph.reference(ref)
        if target is not None:
            lines.append(
                f'  {prefix}_ref_{ref} [label="{ref}", shape=plaintext];'
            )
            lines.append(
                f"  {prefix}_ref_{ref} -> {prefix}_{target} "
                "[style=dashed, color=grey];"
            )
    return lines


def render_chain(graph: ObjectGraph, front_reference: str = "f") -> str:
    """Render a linear object (e.g. a QStack) on a single line.

    Produces ``front <.. e1 <.. e2 <.. back`` style output with reference
    markers, mirroring Figure 2's left-to-right layout.  Falls back to
    :func:`render_ascii` when the object is not a linear chain.
    """
    from repro.graph.analysis import is_linear_chain, ordering_walk

    if not is_linear_chain(graph):
        return render_ascii(graph)
    vids = graph.vertex_ids()
    if not vids:
        markers = ",".join(sorted(graph.reference_names()))
        return f"{graph.name}: <empty> ({markers} dangling)" if markers else (
            f"{graph.name}: <empty>"
        )
    heads = [vid for vid in vids if not graph.predecessors(vid)]
    back_to_front = list(ordering_walk(graph, heads[0]))
    cells = []
    for vid in reversed(back_to_front):  # front first
        refs = sorted(
            ref
            for ref in graph.reference_names()
            if graph.reference(ref) == vid
        )
        marker = f"[{','.join(refs)}]" if refs else ""
        cells.append(f"{graph.vertex(vid).value!r}{marker}")
    del front_reference  # layout is always front-first; kept for API clarity
    return f"{graph.name}: front | " + " <.. ".join(cells) + " | back"

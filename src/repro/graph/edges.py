"""Edge kinds of the object graph (Def. 8 of the paper).

The object graph has two kinds of edges:

* *composed-of* edges (``E_com``) from the root vertex to every component
  vertex — they represent the composition of the object, and
* *ordering* edges (``E_ord``) between component vertices — they represent
  the relative ordering among the components.  "The ordering edge emanating
  from a component indicates the next component that can be accessed
  following access to this component."

Ordering edges are restricted to a single level of the composition
hierarchy (Section 4.1): they never connect vertices of different objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.vertex import VertexId

__all__ = ["ComposedOfEdge", "OrderingEdge"]


@dataclass(frozen=True)
class ComposedOfEdge:
    """A composed-of edge from the root of an object to a component.

    The root is implicit (each graph has exactly one), so the edge is
    identified by the component vertex it points to.  References (Def. 20)
    are distinguished composed-of edges, i.e. values of this type held under
    a name.
    """

    target: VertexId

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComposedOf(->{self.target})"


@dataclass(frozen=True)
class OrderingEdge:
    """An ordering edge between two component vertices.

    ``source -> target`` means *target is the next component that can be
    accessed after source*.  For the QStack of Figure 2 the ordering edges
    point from the back of the stack towards the front.
    """

    source: VertexId
    target: VertexId

    def endpoints(self) -> tuple[VertexId, VertexId]:
        """Both endpoints, in (source, target) order."""
        return (self.source, self.target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ordering({self.source}->{self.target})"

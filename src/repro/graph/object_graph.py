"""The object graph of Defs. 7-10 and its two subgraphs.

An object ``ob`` is a 3-tuple ``(S, R, O)``: a set of components ``S``, a
set of ordering rules ``R`` and a set of operations ``O`` (Def. 7).  Its
*object graph* ``G_ob`` (Def. 8) consists of

* a root vertex ``v_ob``,
* component vertices ``V_ob``,
* composed-of edges ``E_com`` from the root to every component, and
* ordering edges ``E_ord`` between components.

Def. 9 names the two subgraphs: the *composition graph* (root, components
and composed-of edges) and the *ordering graph* (components and ordering
edges).  Def. 10 defines the *content* of a vertex recursively; Def. 18
defines ``V_simple``, the set of all primitive vertices in the hierarchy;
Def. 20 defines *references* as distinguished composed-of edges.

This module implements the graph as a mutable structure: operations on an
ADT are expressed as sequences of graph mutations and observations (see
:mod:`repro.graph.instrument`), which is exactly how the paper derives the
locality of an operation.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import (
    DuplicateVertexError,
    InvalidEdgeError,
    UnknownReferenceError,
    UnknownVertexError,
)
from repro.graph.edges import ComposedOfEdge, OrderingEdge
from repro.graph.vertex import Vertex, VertexId, VertexIdAllocator

__all__ = ["ObjectGraph", "CompositionGraph", "OrderingGraph"]


class ObjectGraph:
    """Mutable object graph ``G_ob`` of Def. 8.

    The root vertex is implicit; components live in :attr:`_vertices` and
    every component is automatically connected to the root by a composed-of
    edge (Def. 8 mandates a composed-of edge from the root to *every*
    vertex, so the set of composed-of edges is exactly the set of component
    vertices and needs no separate bookkeeping).

    References (Def. 20) are named composed-of edges kept in
    :attr:`_references`.  A reference may be *dangling* (``None``) — the
    paper allows references to be deleted, "for example when a QStack
    becomes empty".

    Args:
        name: Name of the object, used as the root-vertex label when
            rendering (e.g. ``"QStack"``).
    """

    def __init__(self, name: str = "object") -> None:
        self.name = name
        self._vertices: dict[VertexId, Vertex] = {}
        self._ordering: set[OrderingEdge] = set()
        self._references: dict[str, VertexId | None] = {}
        self._allocator = VertexIdAllocator()

    # ------------------------------------------------------------------
    # Vertices and composed-of edges
    # ------------------------------------------------------------------

    def add_vertex(self, value: Any = None, label: str | None = None) -> VertexId:
        """Insert a new component vertex and its composed-of edge.

        Returns the freshly allocated vertex id.
        """
        vid = self._allocator.allocate()
        if vid in self._vertices:  # pragma: no cover - allocator guarantees
            raise DuplicateVertexError(vid)
        self._vertices[vid] = Vertex(vid=vid, value=value, label=label)
        return vid

    def remove_vertex(self, vid: VertexId) -> Vertex:
        """Delete a component vertex, its composed-of edge and its ordering edges.

        Any reference that targeted the vertex becomes dangling (``None``),
        mirroring the paper's observation that references can be deleted.
        Returns the removed vertex.
        """
        vertex = self._require(vid)
        del self._vertices[vid]
        self._ordering = {
            edge for edge in self._ordering if vid not in edge.endpoints()
        }
        for ref_name, target in self._references.items():
            if target == vid:
                self._references[ref_name] = None
        return vertex

    def vertex(self, vid: VertexId) -> Vertex:
        """Return the vertex with id ``vid`` (raises if unknown)."""
        return self._require(vid)

    def has_vertex(self, vid: VertexId) -> bool:
        """Whether ``vid`` currently names a component of this object."""
        return vid in self._vertices

    def vertex_ids(self) -> set[VertexId]:
        """Ids of all current components (the set ``V_ob``)."""
        return set(self._vertices)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over the current component vertices."""
        return iter(self._vertices.values())

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, vid: object) -> bool:
        return vid in self._vertices

    def composed_of_edges(self) -> set[ComposedOfEdge]:
        """The set ``E_com``: one composed-of edge per component (Def. 8)."""
        return {ComposedOfEdge(target=vid) for vid in self._vertices}

    def clone(self) -> "ObjectGraph":
        """An independent copy preserving vertex ids and allocator state.

        Used for conflict previews: an operation executed on the clone
        reads/creates exactly the vertex ids it would on the original, so
        its locality trace is directly comparable with traces recorded on
        the original graph.
        """
        copy = ObjectGraph(self.name)
        copy._allocator = self._allocator.clone()
        for vid, vertex in self._vertices.items():
            value = vertex.value.clone() if vertex.is_complex() else vertex.value
            copy._vertices[vid] = Vertex(vid=vid, value=value, label=vertex.label)
        copy._ordering = set(self._ordering)
        copy._references = dict(self._references)
        return copy

    # ------------------------------------------------------------------
    # Content (Def. 10)
    # ------------------------------------------------------------------

    def content(self, vid: VertexId) -> Any:
        """The content of a vertex per Def. 10.

        For a primitive vertex this is its simple data value; for a complex
        vertex it is the (recursively computed) content of the nested
        object graph, rendered as a mapping from nested vertex id to nested
        content.
        """
        vertex = self._require(vid)
        if vertex.is_complex():
            nested: ObjectGraph = vertex.value
            return {inner: nested.content(inner) for inner in nested.vertex_ids()}
        return vertex.value

    def set_content(self, vid: VertexId, value: Any) -> None:
        """Replace the content of a primitive vertex."""
        self._require(vid).value = value

    def simple_vertices(self) -> set[tuple[int, ...]]:
        """``V_simple`` of Def. 18, as hierarchical paths.

        Each primitive vertex is identified by the path of vertex ids from
        this graph down to it, so that primitives of nested component
        objects are distinguishable from primitives of the parent.
        """
        simple: set[tuple[int, ...]] = set()
        for vid, vertex in self._vertices.items():
            if vertex.is_complex():
                nested: ObjectGraph = vertex.value
                simple.update((vid, *path) for path in nested.simple_vertices())
            else:
                simple.add((vid,))
        return simple

    # ------------------------------------------------------------------
    # Ordering edges
    # ------------------------------------------------------------------

    def add_ordering_edge(self, source: VertexId, target: VertexId) -> OrderingEdge:
        """Add an ordering edge between two components of *this* object.

        Both endpoints must be components at this level of the hierarchy:
        "ordering edges are restricted to lie at a single level" (Section
        4.1).  Self-loops are rejected; cycles between distinct vertices are
        allowed ("the ordering graph ... may contain cycles").
        """
        if source == target:
            raise InvalidEdgeError(
                f"ordering edge {source}->{target} would be a self-loop"
            )
        self._require(source)
        self._require(target)
        edge = OrderingEdge(source=source, target=target)
        self._ordering.add(edge)
        return edge

    def remove_ordering_edge(self, source: VertexId, target: VertexId) -> None:
        """Remove the ordering edge ``source -> target`` if present."""
        self._ordering.discard(OrderingEdge(source=source, target=target))

    def ordering_edges(self) -> set[OrderingEdge]:
        """The current set ``E_ord`` of ordering edges."""
        return set(self._ordering)

    def successors(self, vid: VertexId) -> set[VertexId]:
        """Targets of ordering edges emanating from ``vid``."""
        self._require(vid)
        return {edge.target for edge in self._ordering if edge.source == vid}

    def predecessors(self, vid: VertexId) -> set[VertexId]:
        """Sources of ordering edges arriving at ``vid``."""
        self._require(vid)
        return {edge.source for edge in self._ordering if edge.target == vid}

    # ------------------------------------------------------------------
    # References (Def. 20)
    # ------------------------------------------------------------------

    def declare_reference(self, name: str, target: VertexId | None = None) -> None:
        """Declare a named reference, optionally pointing it at a component.

        References are part of the object state (Section 4.3): "this set is
        a subset of the composed-of edges ... and is generally maintained as
        part of the object state".
        """
        if target is not None:
            self._require(target)
        self._references[name] = target

    def reference(self, name: str) -> VertexId | None:
        """The component currently designated by reference ``name``.

        Returns ``None`` for a dangling reference (e.g. ``f`` on an empty
        QStack).  Raises :class:`UnknownReferenceError` for an undeclared
        name.
        """
        if name not in self._references:
            raise UnknownReferenceError(name)
        return self._references[name]

    def retarget_reference(self, name: str, target: VertexId | None) -> None:
        """Point reference ``name`` at another composed-of edge (or nothing).

        The paper: "Modification can be done without necessarily deleting
        the corresponding composed-of edge by selecting a different
        composed-of edge as the new reference."
        """
        if name not in self._references:
            raise UnknownReferenceError(name)
        if target is not None:
            self._require(target)
        self._references[name] = target

    def reference_names(self) -> set[str]:
        """All declared reference names."""
        return set(self._references)

    # ------------------------------------------------------------------
    # Subgraphs (Def. 9)
    # ------------------------------------------------------------------

    def composition_graph(self) -> "CompositionGraph":
        """The composition graph ``G'_ob`` (root, components, ``E_com``)."""
        return CompositionGraph(
            root_label=self.name,
            component_ids=self.vertex_ids(),
            edges=self.composed_of_edges(),
        )

    def ordering_graph(self) -> "OrderingGraph":
        """The ordering graph ``G''_ob`` (components, ``E_ord``)."""
        return OrderingGraph(
            component_ids=self.vertex_ids(), edges=self.ordering_edges()
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require(self, vid: VertexId) -> Vertex:
        try:
            return self._vertices[vid]
        except KeyError:
            raise UnknownVertexError(vid) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ObjectGraph({self.name!r}, |V|={len(self._vertices)}, "
            f"|E_ord|={len(self._ordering)}, refs={sorted(self._references)})"
        )


class CompositionGraph:
    """Immutable snapshot of the composition subgraph ``G'_ob`` (Def. 9)."""

    def __init__(
        self,
        root_label: str,
        component_ids: Iterable[VertexId],
        edges: Iterable[ComposedOfEdge],
    ) -> None:
        self.root_label = root_label
        self.component_ids = frozenset(component_ids)
        self.edges = frozenset(edges)

    def __len__(self) -> int:
        return len(self.component_ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompositionGraph):
            return NotImplemented
        return (
            self.component_ids == other.component_ids and self.edges == other.edges
        )

    def __hash__(self) -> int:
        return hash((self.component_ids, self.edges))


class OrderingGraph:
    """Immutable snapshot of the ordering subgraph ``G''_ob`` (Def. 9)."""

    def __init__(
        self, component_ids: Iterable[VertexId], edges: Iterable[OrderingEdge]
    ) -> None:
        self.component_ids = frozenset(component_ids)
        self.edges = frozenset(edges)

    def successors(self, vid: VertexId) -> set[VertexId]:
        """Targets of edges emanating from ``vid`` in the snapshot."""
        return {edge.target for edge in self.edges if edge.source == vid}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderingGraph):
            return NotImplemented
        return (
            self.component_ids == other.component_ids and self.edges == other.edges
        )

    def __hash__(self) -> int:
        return hash((self.component_ids, self.edges))

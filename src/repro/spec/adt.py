"""Abstract data type specifications.

An ADT specification bundles everything the methodology needs about an
object type (Def. 7's 3-tuple ``(S, R, O)`` in executable form):

* the set of operations (``O``),
* a way to enumerate a bounded abstract state space (``S``), and
* a mapping between abstract states and object graphs, whose ordering
  edges realise the ordering rules (``R``).

Abstract states are hashable canonical values (e.g. a tuple of elements
front-to-back for the QStack) so that post-states of different executions
can be compared — that comparison is how Defs. 1-6 are decided.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Mapping

from repro.errors import UnknownOperationError
from repro.graph.instrument import (
    EdgeAttribution,
    InstrumentedGraph,
    LocalityTrace,
    discard_trace,
)
from repro.graph.object_graph import ObjectGraph
from repro.spec.operation import Invocation, OperationSpec
from repro.spec.returnvalue import ReturnValue

__all__ = [
    "EnumerationBounds",
    "ADTSpec",
    "Execution",
    "execute_invocation",
    "post_state_of",
    "install_execution_cache",
    "active_execution_cache",
]

#: Abstract states are opaque hashable values.
AbstractState = Hashable


@dataclass(frozen=True)
class EnumerationBounds:
    """Bounds for the finite state-space / argument enumeration.

    The paper's "∃s" / "∀s" quantifiers (Defs. 1-6, 18-19) are decided by
    exhaustive enumeration over the states these bounds induce.  The
    defaults (capacity 3, two-element domain) are small enough to enumerate
    every operation pair over every state in milliseconds yet large enough
    to distinguish all the operation classes of the paper's QStack; the
    bound-sensitivity tests confirm classifications are stable from
    capacity 2 upward.

    Attributes:
        capacity: Maximum number of elements a bounded container holds
            (``Push`` on a full container returns ``nok``).
        domain: Universe of element values.
    """

    capacity: int = 3
    domain: tuple[Any, ...] = ("a", "b")

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not self.domain:
            raise ValueError("domain must not be empty")


class ADTSpec(abc.ABC):
    """Executable specification of an abstract data type.

    Subclasses provide the state space, the state <-> graph mapping and the
    operation set.  Everything else in the library (classification,
    localities, template lookups, the five-stage pipeline, the Section-3
    semantic notions, the scheduler) is generic over this interface.
    """

    #: Type name, e.g. ``"QStack"``.
    name: str = "ADT"
    #: Default bounds used when a caller does not supply their own.
    default_bounds: EnumerationBounds = EnumerationBounds()

    @property
    @abc.abstractmethod
    def operations(self) -> Mapping[str, OperationSpec]:
        """The operations defined on the type, by name."""

    @abc.abstractmethod
    def states(self, bounds: EnumerationBounds) -> Iterable[AbstractState]:
        """Enumerate every abstract state within ``bounds``."""

    @abc.abstractmethod
    def initial_state(self) -> AbstractState:
        """The state of a freshly created instance (used by histories)."""

    @abc.abstractmethod
    def build_graph(self, state: AbstractState) -> ObjectGraph:
        """Materialise the object graph (Def. 8) for an abstract state."""

    @abc.abstractmethod
    def abstract_state(self, graph: ObjectGraph) -> AbstractState:
        """Extract the canonical abstract state from an object graph."""

    # ------------------------------------------------------------------
    # Conveniences shared by every ADT
    # ------------------------------------------------------------------

    def operation(self, name: str) -> OperationSpec:
        """Look up an operation by name."""
        try:
            return self.operations[name]
        except KeyError:
            raise UnknownOperationError(self.name, name) from None

    def operation_names(self) -> list[str]:
        """Operation names in declaration order."""
        return list(self.operations)

    def invocations(
        self, bounds: EnumerationBounds | None = None
    ) -> list[Invocation]:
        """Every (operation, argument-tuple) pair within ``bounds``."""
        bounds = bounds or self.default_bounds
        found = []
        for name, op in self.operations.items():
            for args in op.argument_tuples(bounds):
                found.append(Invocation(operation=name, args=tuple(args)))
        return found

    def invocations_of(
        self, operation: str, bounds: EnumerationBounds | None = None
    ) -> list[Invocation]:
        """The invocations of a single operation within ``bounds``."""
        bounds = bounds or self.default_bounds
        op = self.operation(operation)
        return [
            Invocation(operation=operation, args=tuple(args))
            for args in op.argument_tuples(bounds)
        ]

    def state_list(self, bounds: EnumerationBounds | None = None) -> list:
        """All states within ``bounds`` as a list."""
        return list(self.states(bounds or self.default_bounds))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ADTSpec {self.name} ops={self.operation_names()}>"


@dataclass(frozen=True)
class Execution:
    """The complete record of executing one invocation in one state.

    This is the paper's ``(state(s, p), return(s, p))`` plus the locality
    trace of Defs. 11-17 and ``V_simple`` of the *pre*-state (needed for
    the globality test of Def. 19).
    """

    pre_state: AbstractState
    invocation: Invocation
    post_state: AbstractState
    returned: ReturnValue
    trace: LocalityTrace
    pre_simple_vertices: frozenset

    @property
    def is_identity(self) -> bool:
        """Whether the execution left the abstract state unchanged."""
        return self.pre_state == self.post_state


#: Process-wide :class:`~repro.perf.cache.ExecutionCache`, or ``None``.
#: Installed for the duration of a derivation (or explicitly by callers);
#: when present every :func:`execute_invocation` goes through it.  The
#: specs are deterministic, so the cached and uncached paths are
#: bit-identical by construction.
_ACTIVE_CACHE = None


def install_execution_cache(cache):
    """Install (or, with ``None``, remove) the process-wide execution cache.

    Returns the previously installed cache so callers can restore it —
    the idiom used by :func:`~repro.core.methodology.derive` and by
    :func:`~repro.perf.cache.ensure_execution_cache` to support nesting.
    """
    global _ACTIVE_CACHE
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    return previous


def active_execution_cache():
    """The currently installed execution cache, or ``None``."""
    return _ACTIVE_CACHE


def execute_invocation(
    adt: ADTSpec,
    state: AbstractState,
    invocation: Invocation,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
) -> Execution:
    """Run one invocation against a fresh graph built from ``state``.

    The single entry point used by classification, locality analysis, the
    Section-3 semantic notions and the experiments; building a fresh graph
    per execution keeps executions independent and reproducible.  When an
    execution cache is installed the result is memoized by
    ``(adt, state, invocation, attribution)``.
    """
    cache = _ACTIVE_CACHE
    if cache is not None:
        return cache.get_or_execute(adt, state, invocation, attribution)
    return execute_uncached(adt, state, invocation, attribution)


def execute_uncached(
    adt: ADTSpec,
    state: AbstractState,
    invocation: Invocation,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
) -> Execution:
    """The raw execution path (also the cache's miss handler)."""
    graph = adt.build_graph(state)
    pre_simple = frozenset(graph.simple_vertices())
    view = InstrumentedGraph(graph, attribution=attribution)
    operation = adt.operation(invocation.operation)
    returned = operation.execute(view, *invocation.args)
    return Execution(
        pre_state=state,
        invocation=invocation,
        post_state=adt.abstract_state(graph),
        returned=returned,
        trace=view.trace,
        pre_simple_vertices=pre_simple,
    )


def post_state_of(
    adt: ADTSpec, state: AbstractState, invocation: Invocation
) -> AbstractState:
    """The successor state only, skipping locality bookkeeping.

    Reachability-style sweeps need nothing but the state transition; the
    full :class:`Execution` record (locality trace, ``V_simple`` snapshot,
    ``BOTH`` edge attribution) is pure overhead there.  With a cache
    installed the full execution is computed once and shared with every
    other consumer; without one the invocation runs against a discarding
    trace under ``SOURCE`` attribution (attribution and tracing cannot
    affect the post-state, so the result is identical either way).
    """
    cache = _ACTIVE_CACHE
    if cache is not None:
        return cache.get_or_execute(
            adt, state, invocation, EdgeAttribution.BOTH
        ).post_state
    graph = adt.build_graph(state)
    view = InstrumentedGraph(
        graph,
        attribution=EdgeAttribution.SOURCE,
        trace=discard_trace(),
    )
    adt.operation(invocation.operation).execute(view, *invocation.args)
    return adt.abstract_state(graph)

"""Return values of abstract operations.

Section 2 of the paper: "We refer to the 'status', such as *ok* or *nok*,
returned by an operation as the *outcome* of the operation.  Other values
returned are referred to as its *result*.  It is assumed that an operation
always produces a return-value, that is, it has an outcome or a result or
both."

The outcome/result split matters to the methodology: Stage 4 refines
compatibility entries with conditions over *outcomes* (e.g.
``Push_out = nok``), while *results* only influence the
modifier/modifier-observer distinction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["ReturnValue", "OK", "NOK"]

#: Conventional outcome constants used by the built-in ADTs.
OK = "ok"
NOK = "nok"


@dataclass(frozen=True)
class ReturnValue:
    """The value returned by one execution of an operation.

    Attributes:
        outcome: Status component (``"ok"``, ``"nok"``, ...) or ``None``
            when the operation has no status (e.g. QStack ``Size``).
        result: Data component (e.g. the element returned by ``Pop``) or
            ``None`` when the operation returns no data.

    At least one of the two must be present (the paper assumes every
    operation produces a return value).
    """

    outcome: str | None = None
    result: Any = None

    def __post_init__(self) -> None:
        if self.outcome is None and self.result is None:
            raise ValueError(
                "an operation always has an outcome or a result or both"
            )

    @property
    def has_outcome(self) -> bool:
        """Whether the return value carries a status component."""
        return self.outcome is not None

    @property
    def has_result(self) -> bool:
        """Whether the return value carries a data component."""
        return self.result is not None

    def __repr__(self) -> str:
        if self.outcome is not None and self.result is not None:
            return f"Return(outcome={self.outcome!r}, result={self.result!r})"
        if self.outcome is not None:
            return f"Return(outcome={self.outcome!r})"
        return f"Return(result={self.result!r})"


def ok(result: Any = None) -> ReturnValue:
    """Shorthand for a successful return, optionally carrying a result."""
    return ReturnValue(outcome=OK, result=result)


def nok() -> ReturnValue:
    """Shorthand for an unsuccessful (overflow / empty) return."""
    return ReturnValue(outcome=NOK)


def result_only(value: Any) -> ReturnValue:
    """Shorthand for a pure-result return (no status), e.g. ``Size``."""
    return ReturnValue(outcome=None, result=value)


__all__ += ["ok", "nok", "result_only"]

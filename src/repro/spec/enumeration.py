"""Bounded enumeration utilities over ADT specifications.

The paper's definitions quantify over states ("∃s", "∀s'") and over
operation sequences.  This module provides the exhaustive, bounded
enumerations that decide those quantifiers for the finite fragments
configured by :class:`~repro.spec.adt.EnumerationBounds`.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.graph.instrument import EdgeAttribution
from repro.spec.adt import (
    ADTSpec,
    AbstractState,
    EnumerationBounds,
    Execution,
    execute_invocation,
    post_state_of,
)
from repro.spec.operation import Invocation

__all__ = [
    "all_executions",
    "executions_of",
    "reachable_states",
    "state_pairs",
    "execution_index",
]


def all_executions(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
) -> Iterator[Execution]:
    """Execute every invocation in every state within ``bounds``.

    The cross product |states| x |invocations| is the evidence base for
    every state-independent judgement in the library.
    """
    bounds = bounds or adt.default_bounds
    invocations = adt.invocations(bounds)
    for state in adt.states(bounds):
        for invocation in invocations:
            yield execute_invocation(adt, state, invocation, attribution)


def executions_of(
    adt: ADTSpec,
    invocation: Invocation,
    bounds: EnumerationBounds | None = None,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
) -> Iterator[Execution]:
    """Execute one fixed invocation in every state within ``bounds``."""
    bounds = bounds or adt.default_bounds
    for state in adt.states(bounds):
        yield execute_invocation(adt, state, invocation, attribution)


def reachable_states(
    adt: ADTSpec,
    start: AbstractState | None = None,
    bounds: EnumerationBounds | None = None,
    max_steps: int | None = None,
) -> set[AbstractState]:
    """States reachable from ``start`` by invocation sequences.

    Used by tests to confirm that the declared state enumeration covers the
    reachable fragment (and nothing forces unreachable states into it).
    ``max_steps`` bounds the exploration depth; ``None`` explores to a fixed
    point.

    Only successor states matter here, so the walk goes through
    :func:`~repro.spec.adt.post_state_of` — no locality tracing, no
    ordering-edge attribution — rather than a fully instrumented
    execution per edge.
    """
    bounds = bounds or adt.default_bounds
    invocations = adt.invocations(bounds)
    start = adt.initial_state() if start is None else start
    seen = {start}
    frontier = [start]
    steps = 0
    while frontier and (max_steps is None or steps < max_steps):
        next_frontier = []
        for state in frontier:
            for invocation in invocations:
                post = post_state_of(adt, state, invocation)
                if post not in seen:
                    seen.add(post)
                    next_frontier.append(post)
        frontier = next_frontier
        steps += 1
    return seen


def state_pairs(
    adt: ADTSpec, bounds: EnumerationBounds | None = None
) -> Iterator[tuple[AbstractState, AbstractState]]:
    """All ordered pairs of states (used by equivalence-style checks)."""
    states = adt.state_list(bounds)
    for first in states:
        for second in states:
            yield first, second


def execution_index(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
    predicate: Callable[[Execution], bool] | None = None,
) -> dict[Invocation, list[Execution]]:
    """Group executions by invocation, optionally filtered.

    Many analyses need "all executions of p" repeatedly; indexing them once
    per derivation keeps the pipeline close to linear in the evidence size.
    """
    index: dict[Invocation, list[Execution]] = {}
    for execution in all_executions(adt, bounds, attribution):
        if predicate is not None and not predicate(execution):
            continue
        index.setdefault(execution.invocation, []).append(execution)
    return index

"""Abstract operation specifications.

Operations are "functions from one object state to another object state"
(Section 2.1); the paper writes ``state(s, p)`` for the post-state and
``return(s, p)`` for the return value of operation ``p`` in state ``s``.

In this library an operation is specified *executably*: its
:meth:`OperationSpec.execute` method is a graph program that manipulates an
:class:`~repro.graph.instrument.InstrumentedGraph` and returns a
:class:`~repro.spec.returnvalue.ReturnValue`.  Executing the program yields
all three artefacts the methodology needs at once: the post-state, the
return value, and the locality trace (Defs. 11-17).

Operations are *total*: instead of failing on boundary states they return a
``nok`` outcome, exactly like the paper's QStack operations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Literal

from repro.graph.instrument import InstrumentedGraph
from repro.spec.returnvalue import ReturnValue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spec.adt import EnumerationBounds

__all__ = ["OperationSpec", "Invocation", "Referencing"]

#: How an operation locates the components it works on (dimension D5):
#: through references held in the object state (implicit), through its
#: input parameters (explicit), or not at all (e.g. global operations).
Referencing = Literal["implicit", "explicit", "none"]


class OperationSpec(abc.ABC):
    """One abstract operation of an ADT.

    Subclasses define the graph program in :meth:`execute` and enumerate
    the operation's possible argument tuples in :meth:`argument_tuples`.
    The three class attributes below declare dimension-D5 information that
    cannot be observed from execution alone (which *named* references the
    operation is specified to use).
    """

    #: Operation name, e.g. ``"Push"``.
    name: str = "operation"
    #: Referencing style (dimension D5).
    referencing: Referencing = "none"
    #: Names of the references the operation uses (dimension D5); empty for
    #: global operations like ``Size``.
    references_used: frozenset[str] = frozenset()
    #: Optional self-declared Stage-2 answers (the paper's questionnaire
    #: filled in by hand), enabling annotation-only characterisation
    #: without state enumeration.  Keys: ``"class"`` ("O"/"M"/"MO"),
    #: ``"observer_kind"`` / ``"modifier_kind"`` ("S"/"C"/"CS"/None),
    #: ``"is_global"`` (bool), ``"outcomes"`` (set of outcome labels) and
    #: ``"has_result"`` (bool).  ``None`` means "derive by enumeration".
    declared_profile: dict | None = None

    @abc.abstractmethod
    def argument_tuples(self, bounds: "EnumerationBounds") -> Iterable[tuple]:
        """All argument tuples considered during bounded enumeration.

        An operation without parameters yields the single empty tuple.
        """

    @abc.abstractmethod
    def execute(self, view: InstrumentedGraph, *args: Any) -> ReturnValue:
        """Run the operation against an instrumented object graph.

        Must express every state access through ``view`` so that the
        locality trace is complete.  Returns the operation's return value.
        """

    def describe(self) -> str:
        """One-line human description used in reports."""
        refs = ", ".join(sorted(self.references_used)) or "-"
        return f"{self.name} (referencing={self.referencing}, refs={refs})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OperationSpec {self.name}>"


@dataclass(frozen=True)
class Invocation:
    """An operation together with concrete arguments.

    The unit over which classification (Defs. 1-6), commutativity and the
    other Section-3 notions quantify.  Hashable so invocations can key
    tables and sets.
    """

    operation: str
    args: tuple = ()

    def render(self) -> str:
        """``Push(a)`` style rendering."""
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.operation}({inner})"

    def __repr__(self) -> str:
        return self.render()

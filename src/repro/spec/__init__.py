"""Executable abstract specifications (Section 2 of the paper).

The spec layer turns the paper's mathematical view of operations —
functions ``state(s, p)`` / ``return(s, p)`` over object states — into
runnable graph programs whose execution yields post-states, return values
*and* locality traces at once.
"""

from repro.spec.adt import (
    ADTSpec,
    EnumerationBounds,
    Execution,
    execute_invocation,
)
from repro.spec.enumeration import (
    all_executions,
    execution_index,
    executions_of,
    reachable_states,
    state_pairs,
)
from repro.spec.operation import Invocation, OperationSpec, Referencing
from repro.spec.returnvalue import NOK, OK, ReturnValue, nok, ok, result_only

__all__ = [
    "ADTSpec",
    "EnumerationBounds",
    "Execution",
    "execute_invocation",
    "OperationSpec",
    "Invocation",
    "Referencing",
    "ReturnValue",
    "OK",
    "NOK",
    "ok",
    "nok",
    "result_only",
    "all_executions",
    "executions_of",
    "reachable_states",
    "state_pairs",
    "execution_index",
]

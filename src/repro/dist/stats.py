"""Counters of the distributed layer, exported as ``dist_*`` metrics."""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["DistStats"]


@dataclass
class DistStats:
    """Counters shared by the bus, the nodes and the coordinator.

    One instance is threaded through a whole cluster (the
    :class:`~repro.cc.scheduler.SchedulerStats` pattern) and exported
    through the metrics registry by :meth:`publish` as ``dist_*``
    counters — what ``simulate --shards N --metrics-format ...`` shows.
    """

    # -- bus ----------------------------------------------------------
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    messages_reordered: int = 0
    partitions_opened: int = 0
    partition_drops: int = 0
    stale_replies: int = 0
    rpc_retries: int = 0
    rpc_timeouts: int = 0
    # -- commit protocol ----------------------------------------------
    one_phase_commits: int = 0
    prepares_sent: int = 0
    votes_yes: int = 0
    votes_wait: int = 0
    votes_no: int = 0
    decisions_commit: int = 0
    decisions_abort: int = 0
    indoubt_queries: int = 0
    global_deadlocks: int = 0
    # -- crash/recovery -----------------------------------------------
    node_crashes: int = 0
    node_recoveries: int = 0
    coordinator_recoveries: int = 0
    orphans_aborted: int = 0
    # -- deadlines (serving) ------------------------------------------
    #: RPCs abandoned because the caller's deadline budget ran out.
    rpc_expired: int = 0
    #: Deadline-carrying messages dropped past their deadline.
    messages_expired: int = 0
    # -- serving-layer sheds over this cluster -------------------------
    serve_shed_overload: int = 0
    serve_shed_breaker: int = 0
    serve_shed_deadline: int = 0
    serve_shed_retries: int = 0
    # -- replication ---------------------------------------------------
    repl_records_shipped: int = 0
    repl_records_applied: int = 0
    repl_acks: int = 0
    repl_retransmits: int = 0
    heartbeats_sent: int = 0
    heartbeats_missed: int = 0
    view_changes: int = 0
    fenced_messages: int = 0
    replica_reads: int = 0
    replica_crashes: int = 0

    def publish(self, registry) -> None:
        """Export every counter into a metrics registry as ``dist_<name>``."""
        for spec in fields(self):
            registry.counter(
                f"dist_{spec.name}",
                f"Distributed layer: {spec.name.replace('_', ' ')}.",
            ).inc(getattr(self, spec.name))

    def to_dict(self) -> dict:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def as_tuple(self) -> tuple[tuple[str, int], ...]:
        """Sorted ``(name, value)`` pairs (transcript-embeddable form)."""
        return tuple(sorted(self.to_dict().items()))

"""Sharded multi-node simulation over the table-driven scheduler stack.

The paper's compatibility tables are purely per-object, which makes
object-sharded distribution the natural scaling unit: each simulated
node runs one existing :class:`~repro.cc.scheduler.TableDrivenScheduler`
over its shard of objects, and the cross-object AD/CD dependencies the
scheduler records locally are exactly the constraints the commit
protocol must carry across nodes.  The pieces:

* :class:`~repro.dist.bus.SimBus` — a deterministic, seeded message bus
  with injectable message faults (drop, duplicate, reorder, bounded
  delay, bidirectional partition) via the extended
  :class:`~repro.robust.faults.FaultPlan`.
* :class:`~repro.dist.node.ParticipantNode` — one scheduler per shard
  behind duplicate-safe idempotent handlers, logging protocol decisions
  into the shared :class:`~repro.robust.decision_log.DecisionLog`.
* :class:`~repro.dist.coordinator.Coordinator` — presumed-abort
  two-phase commit with dependency piggybacking: participants ship their
  local AD/CD predecessor sets in PREPARE votes and only vote yes once
  every predecessor has resolved.
* :class:`~repro.dist.cluster.Cluster` / :func:`~repro.dist.cluster.run_distributed`
  — the deterministic closed-loop driver (the harness's round-robin
  discipline over the bus); a one-shard run is transcript-identical to
  the bare scheduler harness.
* :mod:`~repro.dist.audit` — stitches per-node histories into one global
  history and re-checks it with the existing serializability machinery.
* :mod:`~repro.dist.crash` / :mod:`~repro.dist.chaos` — the exhaustive
  distributed crash-point sweep and the distributed chaos campaign.
"""

from repro.dist.audit import GlobalAudit, StitchedRun, audit_global, stitch_edges
from repro.dist.bus import Message, SimBus, SimCrash
from repro.dist.chaos import run_dist_chaos
from repro.dist.cluster import (
    Cluster,
    DistTranscript,
    run_distributed,
    shard_workload,
)
from repro.dist.coordinator import Coordinator
from repro.dist.crash import (
    CrashSchedule,
    DistCrashPointResult,
    DistCrashSweepResult,
    dist_crash_sweep,
)
from repro.dist.node import ParticipantNode
from repro.dist.stats import DistStats

__all__ = [
    "Cluster",
    "Coordinator",
    "CrashSchedule",
    "DistCrashPointResult",
    "DistCrashSweepResult",
    "DistStats",
    "DistTranscript",
    "GlobalAudit",
    "Message",
    "ParticipantNode",
    "SimBus",
    "SimCrash",
    "StitchedRun",
    "audit_global",
    "dist_crash_sweep",
    "run_dist_chaos",
    "run_distributed",
    "shard_workload",
    "stitch_edges",
]

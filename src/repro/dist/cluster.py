"""The deterministic closed-loop driver of a sharded cluster.

This is :func:`repro.cc.harness.drive` lifted over the bus: each shard's
objects live on one :class:`~repro.dist.node.ParticipantNode`, the
driver plays every transaction program round-robin (one action per live
transaction per round, admission in program order), and every scheduler
interaction travels through the :class:`~repro.dist.bus.SimBus` as a
coordinator RPC.  The observable outcome is a :class:`DistTranscript`,
the distributed analogue of :class:`~repro.cc.harness.Transcript` — and
for a one-shard cluster the two are *identical*: a zero-latency
fault-free bus plus the one-phase commit optimization make the single
node's scheduler see the exact same call sequence as the bare harness
(:meth:`DistTranscript.to_harness` converts; the parity is asserted by
``benchmarks/bench_dist.py`` and the dist test suite).

Turn discipline:

* Turn boundaries (once per round) revive crashed endpoints — nodes
  recover from their durable logs and resolve in-doubt transactions with
  the termination protocol — flush unacknowledged decisions, and consult
  the fault plan's crash point (round-robin victim over the coordinator
  and the nodes).
* A coordinator crash (:class:`~repro.dist.bus.SimCrash` escaping a
  protocol crash point) loses the turn: volatile 2PC state dies, the
  coordinator restarts from its decision log, and the runner retries on
  its next turn.
* Cross-node wait cycles — invisible to every local scheduler — are
  detected on the coordinator's global wait graph, fed by blocked-op and
  commit-wait outcomes; the youngest cycle member is aborted, matching
  the local victim rule.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.cc.harness import Transcript
from repro.cc.scheduler import CommitDecision, OpDecision
from repro.cc.transaction import OperationRecord
from repro.cc.workload import Workload
from repro.errors import SchedulerError
from repro.obs.events import FaultInjected, NodeCrashed, NodeRecovered
from repro.obs.latency import LatencyRecorder
from repro.obs.spans import _NO_CONTEXT, SpanEmitter, trace_id_for
from repro.obs.tracers import NULL_TRACER

from repro.dist.audit import stitch_edges
from repro.dist.bus import SimBus, SimCrash
from repro.dist.coordinator import Coordinator
from repro.dist.node import ParticipantNode
from repro.dist.replication import ReplicationManager
from repro.dist.stats import DistStats

__all__ = [
    "Cluster",
    "ClusterFrontend",
    "DistTranscript",
    "run_distributed",
    "shard_workload",
]


def shard_workload(
    workload: Workload, shard_names, seed: int = 0
) -> tuple[tuple[str, ...], ...]:
    """Per-program, per-step shard (object) assignments.

    One shard → every step runs there (the degenerate assignment the
    one-shard parity rests on); several shards → a seeded uniform choice
    per step, stable across runs and processes (string seeding).
    """
    shard_names = list(shard_names)
    if len(shard_names) == 1:
        only = shard_names[0]
        return tuple(
            tuple(only for _ in program.steps) for program in workload.programs
        )
    rng = random.Random(f"shard:{seed}")
    return tuple(
        tuple(
            shard_names[rng.randrange(len(shard_names))]
            for _ in program.steps
        )
        for program in workload.programs
    )


@dataclass(frozen=True)
class DistTranscript:
    """The complete observable outcome of one distributed run.

    Field-for-field the shape of :class:`~repro.cc.harness.Transcript`
    with the per-shard final states and the distributed-layer counters
    added; every field is hashable/comparable, so determinism is a
    single ``==`` between two same-``(seed, FaultPlan)`` runs.
    """

    shards: int
    #: (gtxn, step index, decision) per answered operation attempt.
    op_decisions: tuple
    #: (gtxn, kind, detail); the harness kinds plus nothing new — 2PC
    #: aborts surface as ``must-abort``, cascades as ``observed-abort``.
    resolutions: tuple
    #: Stitched global dependency edges: ((later, earlier), name), sorted.
    edges: tuple
    #: (gtxn, status name) for every admitted transaction.
    statuses: tuple
    #: (object name, repr of final state) per shard, in shard order.
    final_states: tuple
    #: Scheduler seed counters summed across all nodes, sorted by name.
    seed_stats: tuple
    #: The distributed-layer counters (:meth:`DistStats.as_tuple`).
    dist_stats: tuple

    def to_harness(self) -> Transcript:
        """The equivalent harness transcript (one-shard clusters only)."""
        if self.shards != 1:
            raise ValueError(
                f"only a 1-shard transcript converts; this one has "
                f"{self.shards} shards"
            )
        return Transcript(
            op_decisions=self.op_decisions,
            resolutions=self.resolutions,
            edges=self.edges,
            statuses=self.statuses,
            final_state=self.final_states[0][1],
            seed_stats=self.seed_stats,
        )


class _GRunner:
    """Progress of one global transaction program through the cluster."""

    __slots__ = (
        "gtxn",
        "program",
        "shards",
        "step",
        "done",
        "externally_aborted",
        "participants",
        "op_counts",
        "pending_abort",
        "admitted_at",
    )

    def __init__(self, gtxn: int, program, shards: tuple[str, ...]) -> None:
        self.gtxn = gtxn
        self.program = program
        self.shards = shards  # per-step shard assignment
        self.step = 0
        self.done = False
        self.externally_aborted = False
        self.participants: set[str] = set()
        self.op_counts: dict[str, int] = {}  # node -> executed ops there
        self.pending_abort: tuple[str, str] | None = None  # (kind, reason)
        self.admitted_at = 0.0  # bus sim-time at admission (e2e latency)


class Cluster:
    """A sharded cluster: N participant nodes, one coordinator, one bus."""

    def __init__(
        self,
        adt,
        table,
        shards: int = 1,
        policy: str = "optimistic",
        fault_plan=None,
        tracer=NULL_TRACER,
        crash_schedule=None,
        initial_state=None,
        replicas: int = 1,
    ) -> None:
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.adt = adt
        self.table = table
        self.policy = policy
        self.plan = fault_plan
        self.tracer = tracer
        self.crash_schedule = crash_schedule
        self.stats = DistStats()
        self.bus = SimBus(plan=fault_plan, stats=self.stats, tracer=tracer)
        #: Always-on sim-time latency histograms (end-to-end txn latency
        #: and per-kind RPC round-trips); tracer-independent, never part
        #: of the transcript.
        self.latency = LatencyRecorder()
        self.bus.latency = (
            lambda kind, value: self.latency.observe("rpc", kind, value)
        )
        self._spans = SpanEmitter("driver", tracer, clock=lambda: self.bus.now)
        self._root_span: dict[int, object] = {}
        self._root_ctx: dict[int, tuple] = {}
        self.coordinator = Coordinator(tracer=tracer, stats=self.stats)
        self.coordinator.bus = self.bus
        self.coordinator.crash_hook = self._crash_point
        self.bus.register_endpoint(self.coordinator.name, self.coordinator.handle)
        # One shard → the harness's default object name, for parity.
        self.shard_names = (
            ["obj"] if shards == 1 else [f"shard{i}" for i in range(shards)]
        )
        self.nodes: list[ParticipantNode] = []
        self.owner: dict[str, str] = {}
        for index, shard in enumerate(self.shard_names):
            node = ParticipantNode(
                f"node{index}", policy=policy, tracer=tracer, stats=self.stats
            )
            node.bus = self.bus
            node.crash_hook = self._crash_point
            self.bus.register_endpoint(node.name, node.handle)
            node.register_object(shard, adt, table, initial_state)
            self.nodes.append(node)
            self.owner[shard] = node.name
        self._node_by_name = {node.name: node for node in self.nodes}
        self.bus.partition_links = [
            frozenset((self.coordinator.name, node.name)) for node in self.nodes
        ]
        self._victims = itertools.cycle(
            [self.coordinator.name] + [node.name for node in self.nodes]
        )
        #: Crashed primaries a brewing failover holds down — the
        #: ordinary revive-from-own-log path must not race a promotion.
        self._held: set[str] = set()
        #: ``replicas > 1`` turns each shard into a replica group; with
        #: one replica the manager (and every replication code path) is
        #: absent, keeping such clusters bit-identical to earlier runs.
        self.replication = (
            ReplicationManager(self, replicas) if replicas > 1 else None
        )
        # Post-run state the global audit stitches over.
        self.gstatus: dict[int, str] = {}
        self.grecords: dict[int, list[OperationRecord]] = {}
        self.gstamps: dict[int, int] = {}
        self.admitted = 0
        self.transcript: DistTranscript | None = None

    # ------------------------------------------------------------------
    # Crash machinery
    # ------------------------------------------------------------------

    def _log_records(self, actor: str) -> int:
        if actor == self.coordinator.name:
            return len(self.coordinator.log)
        return len(self._node_by_name[actor].log)

    def _crash_point(self, actor: str, label: str) -> None:
        """Hook run at every named protocol step; may kill ``actor``."""
        if self.crash_schedule is None:
            return
        if self.crash_schedule.fire(actor, label):
            if self.tracer:
                self.tracer.emit(
                    NodeCrashed(
                        time=self.bus.now,
                        node=actor,
                        log_records=self._log_records(actor),
                    )
                )
            raise SimCrash(actor)

    def _coordinator_crashed(self) -> None:
        """Restart the coordinator from its log (volatile 2PC state dies)."""
        self.stats.node_crashes += 1
        self.coordinator.recover()
        self.stats.coordinator_recoveries += 1
        if self.tracer:
            self.tracer.emit(
                NodeRecovered(
                    time=self.bus.now,
                    node=self.coordinator.name,
                    replayed=len(self.coordinator.log),
                )
            )

    def _induce_crash(self, victim: str) -> None:
        """A fault-plan crash: kill ``victim`` at a turn boundary."""
        if self.tracer:
            self.tracer.emit(
                NodeCrashed(
                    time=self.bus.now,
                    node=victim,
                    log_records=self._log_records(victim),
                )
            )
        self.stats.node_crashes += 1
        if victim == self.coordinator.name:
            # The driver embeds the coordinator, so its restart is
            # immediate; the damage is the lost volatile state.
            self.coordinator.recover()
            self.stats.coordinator_recoveries += 1
            if self.tracer:
                self.tracer.emit(
                    NodeRecovered(
                        time=self.bus.now,
                        node=victim,
                        replayed=len(self.coordinator.log),
                    )
                )
        else:
            # Nodes stay unreachable for the rest of the round and are
            # revived from their logs at the next turn boundary.
            self.bus.crash(victim)

    def _revive_down(self, mark_aborted) -> None:
        for actor in sorted(self.bus.down()):
            if actor in self._held:
                continue  # a failover is brewing; hands off
            if (
                actor != self.coordinator.name
                and actor not in self._node_by_name
            ):
                continue  # backup replicas are revived by the manager
            self.bus.revive(actor)
            if actor == self.coordinator.name:
                self.coordinator.recover()
                self.stats.coordinator_recoveries += 1
                if self.tracer:
                    self.tracer.emit(
                        NodeRecovered(
                            time=self.bus.now,
                            node=actor,
                            replayed=len(self.coordinator.log),
                        )
                    )
                continue
            node = self._node_by_name[actor]
            recovery_span = self._spans.start(
                f"node:{actor}", "recovery", detail=actor
            )
            try:
                replayed = node.recover()
                self.stats.node_recoveries += 1
                in_doubt = node.in_doubt()
                if self.tracer:
                    self.tracer.emit(
                        NodeRecovered(
                            time=self.bus.now,
                            node=actor,
                            replayed=replayed,
                            in_doubt=len(in_doubt),
                        )
                    )
                self._terminate(node, in_doubt, mark_aborted)
            finally:
                recovery_span.finish("ok")

    def _terminate(self, node, in_doubt, mark_aborted) -> None:
        """Termination protocol: ask the coordinator about in-doubt gtxns."""
        for gtxn in in_doubt:
            term_span = self._spans.child(
                self._root_ctx.get(gtxn, _NO_CONTEXT),
                "termination", gtxn, detail=node.name,
            )
            reply = self.bus.rpc(
                node.name, self.coordinator.name, "query", gtxn,
                span=term_span.context,
            )
            if reply is None:
                term_span.finish("timeout")
                continue  # still in doubt; retried at the next boundary
            try:
                result = node.apply_decision(
                    gtxn, reply.payload["decision"], span=term_span.context
                )
            except SimCrash as crash:
                term_span.finish("crashed")
                self.stats.node_crashes += 1
                self.bus.crash(crash.actor)
                return
            term_span.finish(reply.payload["decision"])
            mark_aborted(result.get("others_aborted", ()))

    # ------------------------------------------------------------------
    # The drive loop
    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        seed: int = 0,
        concurrency: int | None = None,
        max_turns: int | None = None,
    ) -> DistTranscript:
        """Run ``workload`` to completion; the distributed ``drive``."""
        programs = list(workload.programs)
        assignments = shard_workload(workload, self.shard_names, seed)
        concurrency = (
            len(programs) if concurrency is None else max(1, concurrency)
        )
        if max_turns is None:
            max_turns = 1000 * max(1, workload.total_operations())
        coordinator = self.coordinator
        plan = self.plan

        ops: list = []
        resolutions: list = []
        live: list[_GRunner] = []
        runner_of: dict[int, _GRunner] = {}
        admitted = 0
        stamps = itertools.count()
        sequence = itertools.count()

        def admit() -> None:
            nonlocal admitted
            while admitted < len(programs) and len(live) < concurrency:
                runner = _GRunner(
                    admitted, programs[admitted], assignments[admitted]
                )
                runner.admitted_at = self.bus.now
                root = self._spans.start(
                    trace_id_for(admitted), "txn", admitted
                )
                self._root_span[admitted] = root
                self._root_ctx[admitted] = root.context
                live.append(runner)
                runner_of[admitted] = runner
                admitted += 1

        def mark_aborted(gtxns) -> None:
            for gtxn in gtxns:
                victim = runner_of.get(gtxn)
                if victim is not None and not victim.done:
                    victim.externally_aborted = True

        def emit_fault(kind: str, gtxn: int = -1, detail: str = "") -> None:
            if self.tracer:
                self.tracer.emit(
                    FaultInjected(
                        time=self.bus.now, kind=kind, txn=gtxn, detail=detail
                    )
                )

        def finish(runner: _GRunner, status: str) -> None:
            runner.done = True
            self.gstatus[runner.gtxn] = status
            coordinator.clear_waiting(runner.gtxn)
            live.remove(runner)
            self.latency.observe(
                "e2e",
                "committed" if status == "COMMITTED" else "aborted",
                self.bus.now - runner.admitted_at,
            )
            root = self._root_span.pop(runner.gtxn, None)
            if root is not None:
                root.finish(status)

        def attempt_abort(runner: _GRunner, reason: str):
            """One abort attempt; ``None`` means a node was unreachable."""
            if not runner.participants:
                return ()
            others = coordinator.do_abort(
                runner.gtxn, sorted(runner.participants), reason=reason,
                span=self._root_ctx.get(runner.gtxn, _NO_CONTEXT),
            )
            if others is None:
                return None
            mark_aborted(others)
            return others

        def break_deadlock() -> None:
            victim_gtxn = coordinator.find_deadlock_victim()
            if victim_gtxn is None:
                return
            victim = runner_of.get(victim_gtxn)
            if victim is None or victim.done:
                coordinator.clear_waiting(victim_gtxn)
                return
            others = attempt_abort(victim, "global-deadlock")
            if others is None:
                return  # unreachable; the cycle is re-found later
            self.stats.global_deadlocks += 1
            coordinator.clear_waiting(victim_gtxn)
            victim.externally_aborted = True

        def turn_boundary() -> None:
            if self.replication is not None:
                self.replication.boundary(mark_aborted)
            self._revive_down(mark_aborted)
            coordinator.flush_unacked()

        admit()
        turns = 0
        while live:
            turn_boundary()
            for runner in list(live):
                turns += 1
                if turns > max_turns:
                    raise SchedulerError(
                        f"cluster exceeded {max_turns} turns; "
                        f"workload livelocked"
                    )
                gtxn = runner.gtxn
                if plan and plan.crash():
                    # A fault-plan crash: the victim rotates round-robin
                    # over the coordinator and the nodes; crashed nodes
                    # stay unreachable until the next turn boundary.
                    emit_fault("crash")
                    self._induce_crash(next(self._victims))
                try:
                    if runner.externally_aborted:
                        # Aborted from outside its own turn: a cascade, a
                        # deadlock victim, or a 2PC abort seen elsewhere.
                        # The abort is known from ONE node's report; the
                        # transaction's other legs must be taken down too
                        # (idempotent: dead legs ack without a scheduler
                        # call, so a one-shard run stays bit-identical to
                        # the harness, which makes no call here either).
                        others = attempt_abort(runner, "cascade")
                        if others is None:
                            continue  # a leg was unreachable; retry
                        resolutions.append((gtxn, "observed-abort", ()))
                        finish(runner, "ABORTED")
                        continue
                    if runner.pending_abort is not None:
                        kind, reason = runner.pending_abort
                        others = attempt_abort(runner, reason)
                        if others is None:
                            continue  # retry on the next turn
                        if kind:  # "" = an own-abort already recorded
                            resolutions.append((gtxn, kind, tuple(others)))
                        finish(runner, "ABORTED")
                        continue
                    if runner.step < len(runner.program.steps):
                        if plan and plan.spurious_abort(gtxn):
                            emit_fault("spurious_abort", gtxn=gtxn)
                            runner.pending_abort = (
                                "fault-abort", "fault-injected",
                            )
                            others = attempt_abort(runner, "fault-injected")
                            if others is not None:
                                resolutions.append(
                                    (gtxn, "fault-abort", tuple(others))
                                )
                                finish(runner, "ABORTED")
                            continue
                        if plan and plan.op_failure(gtxn):
                            emit_fault("op_failure", gtxn=gtxn)
                            continue  # transient: retried next turn
                        self._op_turn(
                            runner, ops, sequence, finish, attempt_abort,
                            mark_aborted, break_deadlock,
                        )
                        continue
                    if runner.program.voluntary_abort:
                        runner.pending_abort = ("voluntary-abort", "voluntary")
                        others = attempt_abort(runner, "voluntary")
                        if others is None:
                            continue
                        resolutions.append(
                            (gtxn, "voluntary-abort", tuple(others))
                        )
                        finish(runner, "ABORTED")
                        continue
                    if plan and plan.commit_delay(gtxn) is not None:
                        emit_fault("commit_delay", gtxn=gtxn)
                        continue
                    self._commit_turn(
                        runner,
                        resolutions,
                        stamps,
                        finish,
                        mark_aborted,
                        break_deadlock,
                    )
                except SimCrash:
                    # The coordinator died mid-protocol: the action is
                    # lost and retried on the runner's next turn.
                    self._coordinator_crashed()
            admit()
        self._finalize(mark_aborted)

        self.admitted = admitted
        edge_map = stitch_edges(self)
        edges = tuple(
            sorted((pair, dep.name) for pair, dep in edge_map.items())
        )
        statuses = tuple(
            (gtxn, self.gstatus.get(gtxn, "ABORTED"))
            for gtxn in range(admitted)
        )
        final_states = tuple(
            (shard, repr(self._shard_object(shard).state()))
            for shard in self.shard_names
        )
        totals: dict[str, int] = {}
        for node in self.nodes:
            for name, value in node.sched.stats.seed_counters().items():
                totals[name] = totals.get(name, 0) + value
        self.transcript = DistTranscript(
            shards=len(self.nodes),
            op_decisions=tuple(ops),
            resolutions=tuple(resolutions),
            edges=edges,
            statuses=statuses,
            final_states=final_states,
            seed_stats=tuple(sorted(totals.items())),
            dist_stats=self.stats.as_tuple(),
        )
        return self.transcript

    def _shard_object(self, shard: str):
        return self._node_by_name[self.owner[shard]].sched.object(shard)

    def observer_read(self, shard: str, invocation):
        """A snapshot observer read, served off the primary's critical path.

        With replication, a live backup previews the invocation against
        its replica state at its applied watermark (traced as
        :class:`~repro.obs.events.ReplicaReadServed`); without — or when
        every backup is down — the primary's object previews it
        directly.  Pure either way: no transaction, no log record, no
        scheduler decision.
        """
        if self.replication is not None:
            result = self.replication.observer_read(shard, invocation)
            if result is not None:
                return result
        return self._shard_object(shard).preview(invocation)

    def _op_turn(
        self, runner, ops, sequence, finish, attempt_abort,
        mark_aborted, break_deadlock,
    ) -> None:
        """Forward the runner's next operation and absorb the outcome."""
        gtxn = runner.gtxn
        step = runner.program.steps[runner.step]
        shard = runner.shards[runner.step]
        node_name = self.owner[shard]
        outcome = self.coordinator.do_operation(
            gtxn,
            node_name,
            {
                "op_seq": runner.op_counts.get(node_name, 0),
                "object_name": shard,
                "invocation": step.invocation,
            },
            span=self._root_ctx.get(gtxn, _NO_CONTEXT),
        )
        if outcome.status == "unreachable":
            return  # no decision was observed; retried next turn
        runner.participants.add(node_name)
        mark_aborted(outcome.others_aborted)
        decision = OpDecision(
            executed=outcome.status == "executed",
            returned=outcome.returned,
            blocked_on=frozenset(outcome.blocked_on),
            aborted=outcome.status == "aborted",
            dependencies=outcome.dependencies,
        )
        ops.append((gtxn, runner.step, decision))
        if decision.executed:
            runner.op_counts[node_name] = (
                runner.op_counts.get(node_name, 0) + 1
            )
            self.grecords.setdefault(gtxn, []).append(
                OperationRecord(
                    object_name=shard,
                    invocation=step.invocation,
                    returned=outcome.returned,
                    sequence=next(sequence),
                )
            )
            runner.step += 1
            self.coordinator.clear_waiting(gtxn)
        elif decision.aborted:
            # An own-turn abort is recorded in the op decision alone —
            # the harness writes no resolution line for it either.  The
            # other legs must still be taken down (idempotent: on the
            # originating node the dead leg acks without a scheduler
            # call, so one-shard parity is untouched).
            others = attempt_abort(runner, "cascade")
            if others is None:
                runner.pending_abort = ("", "cascade")
            else:
                finish(runner, "ABORTED")
        else:
            self.coordinator.note_waiting(gtxn, outcome.blocked_on)
            break_deadlock()

    def _commit_turn(
        self, runner, resolutions, stamps, finish, mark_aborted, break_deadlock
    ) -> None:
        gtxn = runner.gtxn
        if not runner.participants:
            # A stepless program: nothing anywhere to prepare — the
            # trivial commit, decided locally by the driver.
            resolutions.append((gtxn, "committed", ()))
            self.gstamps[gtxn] = next(stamps)
            finish(runner, "COMMITTED")
            return
        outcome = self.coordinator.do_commit(
            gtxn, sorted(runner.participants),
            span=self._root_ctx.get(gtxn, _NO_CONTEXT),
        )
        if outcome.status == "unreachable":
            return
        mark_aborted(outcome.others_aborted)
        if outcome.status == "committed":
            resolutions.append((gtxn, "committed", ()))
            self.gstamps[gtxn] = next(stamps)
            finish(runner, "COMMITTED")
        elif outcome.status == "aborted":
            resolutions.append((gtxn, "must-abort", ()))
            finish(runner, "ABORTED")
        else:  # waiting
            resolutions.append(
                (gtxn, "commit-waiting", tuple(sorted(outcome.waiting_on)))
            )
            self.coordinator.note_waiting(gtxn, outcome.waiting_on)
            break_deadlock()

    def _finalize(self, mark_aborted) -> None:
        """Settle the tail: unacked decisions, in-doubt and orphan legs."""
        for _ in range(2 * (len(self.nodes) + 2)):
            if self.replication is not None:
                self.replication.boundary(mark_aborted)
            self._revive_down(mark_aborted)
            self.coordinator.flush_unacked()
            dirty = False
            for node in self.nodes:
                if node.name in self.bus.down():
                    dirty = True
                    continue
                in_doubt = node.in_doubt()
                if in_doubt:
                    dirty = True
                    self._terminate(node, in_doubt, mark_aborted)
                for gtxn in node.unresolved():
                    status = self.gstatus.get(gtxn)
                    if status is None:
                        continue
                    dirty = True
                    decision = "commit" if status == "COMMITTED" else "abort"
                    reply = self.bus.rpc(
                        self.coordinator.name,
                        node.name,
                        "decide",
                        gtxn,
                        {"decision": decision},
                    )
                    if reply is not None:
                        mark_aborted(
                            reply.payload.get("others_aborted", ())
                        )
            down = {
                actor
                for actor in self.bus.down()
                if actor == self.coordinator.name
                or actor in self._node_by_name
            }
            if not dirty and not down:
                if not self.coordinator.volatile.unacked:
                    return


def run_distributed(
    adt,
    table,
    workload: Workload,
    shards: int = 1,
    policy: str = "optimistic",
    seed: int = 0,
    fault_plan=None,
    tracer=NULL_TRACER,
    crash_schedule=None,
    initial_state=None,
    concurrency: int | None = None,
    max_turns: int | None = None,
    replicas: int = 1,
) -> DistTranscript:
    """Build a cluster, run ``workload``, return the transcript."""
    cluster = Cluster(
        adt,
        table,
        shards=shards,
        policy=policy,
        fault_plan=fault_plan,
        tracer=tracer,
        crash_schedule=crash_schedule,
        initial_state=initial_state,
        replicas=replicas,
    )
    return cluster.run(
        workload, seed=seed, concurrency=concurrency, max_turns=max_turns
    )


class _FrontTxn:
    """Per-transaction 2PC bookkeeping held by the frontend."""

    __slots__ = ("participants", "op_counts", "admitted_at")

    def __init__(self, admitted_at: float) -> None:
        self.participants: set[str] = set()
        self.op_counts: dict[str, int] = {}
        self.admitted_at = admitted_at


class ClusterFrontend:
    """Per-call 2PC submission over a fault-free cluster.

    :meth:`Cluster.run` owns the scripted round-robin drive (and all
    fault handling); this is the *serving* door — the
    :class:`~repro.serve.loop.ServingLoop` begins, requests, and commits
    transactions one call at a time, in whatever order its batching
    produces, and the frontend keeps the coordinator bookkeeping the
    drive loop would have kept:

    * participants and per-node operation sequence numbers per gtxn;
    * the coordinator's global wait graph (``note_waiting`` /
      ``clear_waiting``) with the youngest-victim cycle break after
      every blocked or waiting outcome;
    * **eager settlement** of externally aborted transactions — when an
      outcome reports ``others_aborted``, every reported gtxn has its
      remaining legs taken down immediately (a worklist, since those
      aborts can cascade further), so callers learn of the abort
      through their resolution listener instead of a stale status;
    * ``cluster.gstatus`` / ``grecords`` / ``gstamps`` / ``admitted``,
      so :func:`~repro.dist.audit.audit_global` certifies a served run
      exactly as it certifies a driven one;
    * root spans and the cluster's e2e latency histogram per gtxn.

    By default fault plans and crash schedules remain the drive loop's
    domain: the frontend refuses a cluster configured with either, which
    is what makes every RPC outcome reliably reachable here.  With
    ``allow_faults=True`` the frontend instead *serves over* the faulty
    cluster: an unreachable/crashed outcome becomes a transient decision
    (not executed, not aborted — the caller retries), an incomplete
    abort is parked in ``_unsettled`` and re-driven at tick boundaries,
    and :meth:`tick_boundary` / :meth:`finalize` run the same
    revive/flush/terminate machinery ``Cluster.run`` runs at its turn
    boundaries, so at-least-once serving converges to the exact same
    audited end state.
    """

    def __init__(self, cluster: Cluster, allow_faults: bool = False) -> None:
        faulty = (
            cluster.plan is not None or cluster.crash_schedule is not None
        )
        if faulty and not allow_faults:
            raise SchedulerError(
                "ClusterFrontend serves fault-free clusters only; "
                "fault plans belong to Cluster.run "
                "(or pass allow_faults=True)"
            )
        self.cluster = cluster
        self.allow_faults = allow_faults
        self._txn: dict[int, _FrontTxn] = {}
        self._status: dict[int, str] = {}
        self._listeners: list = []
        self._stamps = itertools.count()
        self._sequence = itertools.count()
        #: gtxn -> abort reason, for aborts a fault left incomplete.
        self._unsettled: dict[int, str] = {}

    # -- lifecycle -----------------------------------------------------

    def begin(self) -> int:
        cluster = self.cluster
        gtxn = cluster.admitted
        cluster.admitted += 1
        root = cluster._spans.start(trace_id_for(gtxn), "txn", gtxn)
        cluster._root_span[gtxn] = root
        cluster._root_ctx[gtxn] = root.context
        self._txn[gtxn] = _FrontTxn(admitted_at=cluster.bus.now)
        self._status[gtxn] = "ACTIVE"
        return gtxn

    def status(self, gtxn: int) -> str:
        return self._status[gtxn]

    def add_resolution_listener(self, listener) -> None:
        """``listener(gtxn, "committed" | "aborted")`` on every settlement."""
        self._listeners.append(listener)

    def request(
        self,
        gtxn: int,
        object_name: str,
        invocation,
        deadline: float | None = None,
    ) -> OpDecision:
        cluster = self.cluster
        state = self._txn[gtxn]
        node_name = cluster.owner[object_name]
        try:
            outcome = cluster.coordinator.do_operation(
                gtxn,
                node_name,
                {
                    "op_seq": state.op_counts.get(node_name, 0),
                    "object_name": object_name,
                    "invocation": invocation,
                },
                span=cluster._root_ctx.get(gtxn, _NO_CONTEXT),
                deadline=deadline,
            )
        except SimCrash:
            cluster._coordinator_crashed()
            return self._transient_op()
        if outcome.status == "unreachable":
            if self.allow_faults:
                # No decision was observed; the caller retries.
                return self._transient_op()
            raise SchedulerError(
                f"unreachable node {node_name} on a fault-free bus"
            )
        state.participants.add(node_name)
        self._mark_aborted(outcome.others_aborted)
        decision = OpDecision(
            executed=outcome.status == "executed",
            returned=outcome.returned,
            blocked_on=frozenset(outcome.blocked_on),
            aborted=outcome.status == "aborted",
            dependencies=outcome.dependencies,
        )
        if decision.executed:
            state.op_counts[node_name] = state.op_counts.get(node_name, 0) + 1
            cluster.grecords.setdefault(gtxn, []).append(
                OperationRecord(
                    object_name=object_name,
                    invocation=invocation,
                    returned=outcome.returned,
                    sequence=next(self._sequence),
                )
            )
            cluster.coordinator.clear_waiting(gtxn)
        elif decision.aborted:
            others = self._finish_abort(gtxn, "cascade")
            self._mark_aborted(others)
        else:
            cluster.coordinator.note_waiting(gtxn, outcome.blocked_on)
            self._break_deadlock()
        return decision

    def try_commit(
        self, gtxn: int, deadline: float | None = None
    ) -> CommitDecision:
        cluster = self.cluster
        state = self._txn[gtxn]
        if not state.participants:
            # A stepless transaction: nothing anywhere to prepare.
            cluster.gstamps[gtxn] = next(self._stamps)
            self._settle(gtxn, "COMMITTED")
            return CommitDecision(committed=True)
        try:
            outcome = cluster.coordinator.do_commit(
                gtxn,
                sorted(state.participants),
                span=cluster._root_ctx.get(gtxn, _NO_CONTEXT),
                deadline=deadline,
            )
        except SimCrash:
            cluster._coordinator_crashed()
            return self._transient_commit()
        if outcome.status == "unreachable":
            if self.allow_faults:
                return self._transient_commit()
            raise SchedulerError("unreachable participant on a fault-free bus")
        self._mark_aborted(outcome.others_aborted)
        if outcome.status == "committed":
            cluster.gstamps[gtxn] = next(self._stamps)
            self._settle(gtxn, "COMMITTED")
            return CommitDecision(committed=True)
        if outcome.status == "aborted":
            self._settle(gtxn, "ABORTED")
            return CommitDecision(committed=False, must_abort=True)
        cluster.coordinator.note_waiting(gtxn, outcome.waiting_on)
        self._break_deadlock()
        return CommitDecision(
            committed=False, waiting_on=frozenset(outcome.waiting_on)
        )

    def abort(self, gtxn: int, reason: str = "voluntary") -> tuple:
        others = self._finish_abort(gtxn, reason)
        self._mark_aborted(others)
        return others

    # -- settlement ----------------------------------------------------

    def _transient_op(self) -> OpDecision:
        """A no-decision operation outcome: not executed, retry later."""
        return OpDecision(executed=False, blocked_on=frozenset())

    def _transient_commit(self) -> CommitDecision:
        """A no-decision commit outcome: still waiting, retry later."""
        return CommitDecision(committed=False, waiting_on=frozenset())

    def _finish_abort(self, gtxn: int, reason: str) -> tuple:
        """Take down every leg of ``gtxn`` and settle it; returns cascades."""
        state = self._txn[gtxn]
        if state.participants:
            others = self.cluster.coordinator.do_abort(
                gtxn,
                sorted(state.participants),
                reason=reason,
                span=self.cluster._root_ctx.get(gtxn, _NO_CONTEXT),
            )
            if others is None:
                if not self.allow_faults:
                    raise SchedulerError(
                        "incomplete abort on a fault-free bus"
                    )
                # A leg was unreachable.  The abort is decided (the
                # caller sees ABORTED now); delivery to the remaining
                # legs is re-driven at tick boundaries until complete.
                self._unsettled[gtxn] = reason
                others = ()
        else:
            others = ()
        self._settle(gtxn, "ABORTED")
        return others

    def _settle(self, gtxn: int, status: str) -> None:
        cluster = self.cluster
        self._status[gtxn] = status
        cluster.gstatus[gtxn] = status
        cluster.coordinator.clear_waiting(gtxn)
        state = self._txn[gtxn]
        cluster.latency.observe(
            "e2e",
            "committed" if status == "COMMITTED" else "aborted",
            cluster.bus.now - state.admitted_at,
        )
        root = cluster._root_span.pop(gtxn, None)
        if root is not None:
            root.finish(status)
        outcome = "committed" if status == "COMMITTED" else "aborted"
        for listener in list(self._listeners):
            listener(gtxn, outcome)

    def _mark_aborted(self, gtxns) -> None:
        """Eagerly settle externally aborted transactions (worklist)."""
        worklist = [g for g in gtxns if self._status.get(g) == "ACTIVE"]
        while worklist:
            gtxn = worklist.pop(0)
            if self._status.get(gtxn) != "ACTIVE":
                continue
            others = self._finish_abort(gtxn, "cascade")
            worklist.extend(
                g for g in others if self._status.get(g) == "ACTIVE"
            )

    def _break_deadlock(self) -> None:
        coordinator = self.cluster.coordinator
        victim = coordinator.find_deadlock_victim()
        if victim is None:
            return
        if self._status.get(victim) != "ACTIVE":
            coordinator.clear_waiting(victim)
            return
        self.cluster.stats.global_deadlocks += 1
        others = self._finish_abort(victim, "global-deadlock")
        self._mark_aborted(others)

    # -- fault-mode boundaries -----------------------------------------

    def _retry_unsettled(self) -> None:
        """Re-drive aborts whose delivery a fault left incomplete."""
        for gtxn in sorted(self._unsettled):
            reason = self._unsettled[gtxn]
            state = self._txn[gtxn]
            others = self.cluster.coordinator.do_abort(
                gtxn,
                sorted(state.participants),
                reason=reason,
                span=self.cluster._root_ctx.get(gtxn, _NO_CONTEXT),
            )
            if others is not None:
                del self._unsettled[gtxn]
                self._mark_aborted(others)

    def tick_boundary(self) -> None:
        """The served analogue of ``Cluster.run``'s turn boundary.

        Revives crashed endpoints (nodes recover from their logs and run
        the termination protocol), flushes unacknowledged decisions,
        re-drives incomplete aborts, and consults the fault plan's crash
        point.  A no-op on a fault-free cluster: nothing is down,
        nothing is unacked, the plan draws nothing.
        """
        cluster = self.cluster
        if cluster.replication is not None:
            cluster.replication.boundary(self._mark_aborted)
        cluster._revive_down(self._mark_aborted)
        try:
            cluster.coordinator.flush_unacked()
        except SimCrash:
            cluster._coordinator_crashed()
        self._retry_unsettled()
        plan = cluster.plan
        if plan and plan.crash():
            if cluster.tracer:
                cluster.tracer.emit(
                    FaultInjected(time=cluster.bus.now, kind="crash")
                )
            cluster._induce_crash(next(cluster._victims))

    def finalize(self) -> None:
        """Settle the tail after serving ends (crash-free boundaries)."""
        # Suspend the crash plan: the run is over, the tail must drain.
        plan, self.cluster.plan = self.cluster.plan, None
        schedule, self.cluster.crash_schedule = (
            self.cluster.crash_schedule, None,
        )
        try:
            for _ in range(2 * (len(self.cluster.nodes) + 2)):
                self.tick_boundary()
                down = {
                    actor
                    for actor in self.cluster.bus.down()
                    if actor == self.cluster.coordinator.name
                    or actor in self.cluster._node_by_name
                }
                if not self._unsettled and not down:
                    if not self.cluster.coordinator.volatile.unacked:
                        break
            self.cluster._finalize(self._mark_aborted)
        finally:
            self.cluster.plan = plan
            self.cluster.crash_schedule = schedule

"""Per-shard primary/backup replication with deterministic failover.

Each shard's :class:`~repro.dist.node.ParticipantNode` becomes the
primary of a **replica group**: the primary ships its
:class:`~repro.robust.decision_log.DecisionLog` records to ``N - 1``
seeded backups over the existing :class:`~repro.dist.bus.SimBus`
(pipelined, acked, with a per-backup replication-lag watermark), and a
deterministic heartbeat failure detector drives an **epoch-numbered view
change** that promotes the most-caught-up backup when the primary stays
unreachable.  Three rules make failover safe:

1. **Ship before reply.**  The primary ships every record it logged
   while handling a message *before* the reply externalizes the outcome
   (replicate messages are enqueued ahead of the reply, and the bus
   delivers in ``(deliver_at, seq)`` order), so no outcome is ever
   observable whose durable evidence lives only on the primary.  A
   record logged by a handler that crashed mid-call was never
   externalized, so a promoted backup missing it is consistent — the
   coordinator saw a timeout and retries or presumes abort.
2. **Name takeover.**  The promoted backup assumes the deposed
   primary's bus name (the name is the shard's *role address*), so the
   coordinator's participant lists, unacked-decision queues, the
   termination protocol, the serving backend and the global audit all
   survive failover unchanged; the deposed instance simply becomes
   unreachable.
3. **Epoch fencing.**  The :class:`ReplicationManager` installs a
   :attr:`~repro.dist.bus.SimBus.epoch_stamp` hook that stamps every
   message to a primary with the group's current epoch (re-evaluated per
   RPC retry attempt); a group member that receives a message stamped
   with an older epoch — a deposed view's in-flight 2PC PREPARE or
   decide leg, a delayed duplicate — rejects it with a ``fenced`` reply
   instead of applying it (:class:`~repro.obs.events.PrimaryFenced`).

The manager is the *driver-side control plane* — the simulation's stand
-in for a reliable external configuration service: view changes are
decided synchronously at cluster turn boundaries and epochs are
installed directly on the surviving members, so no protocol message can
ever race a view change.  Backups that crash (the
:meth:`~repro.robust.faults.FaultPlan.replica_crash` fault point) are
revived at the next boundary by **state transfer** from the primary's
durable log — the log is disk, readable even while the primary process
itself is down — which is what keeps every promotion candidate fully
caught up by promotion time.

Backups additionally serve **snapshot observer reads** at their applied
watermark (:meth:`Cluster.observer_read <repro.dist.cluster.Cluster.observer_read>`):
a pure :meth:`~repro.cc.objects.SharedObject.preview` against the
backup's replica state, traced as
:class:`~repro.obs.events.ReplicaReadServed` — the start of the
ROADMAP's replicated-read serving story.
"""

from __future__ import annotations

import itertools

from repro.cc.scheduler import TableDrivenScheduler
from repro.obs.events import (
    LogShipped,
    NodeCrashed,
    NodeRecovered,
    ReplicaReadServed,
    ViewChanged,
)
from repro.obs.tracers import NULL_TRACER
from repro.robust.decision_log import (
    DecisionLog,
    LoggingScheduler,
    apply_record,
)

from repro.dist.node import ParticipantNode
from repro.dist.stats import DistStats

__all__ = ["BackupReplica", "ReplicaGroup", "ReplicationManager"]


class BackupReplica:
    """A warm standby: an applied copy of the primary's decision log.

    The backup owns a silent (untraced) scheduler built by verified
    replay of the seeded log; every shipped record is appended and
    applied incrementally with the same
    :func:`~repro.robust.decision_log.apply_record` verification the
    crash-recovery path runs, so a diverging backup fails loudly instead
    of silently serving garbage.  ``applied`` is the replication
    watermark: the number of primary records this backup has durably
    applied (and acknowledged).
    """

    def __init__(
        self,
        name: str,
        shard: str,
        group: "ReplicaGroup",
        log: DecisionLog,
        policy: str,
        tracer=NULL_TRACER,
        stats: DistStats | None = None,
    ) -> None:
        self.name = name
        self.shard = shard
        self.group = group
        self.policy = policy
        self.tracer = tracer
        self.stats = stats if stats is not None else DistStats()
        self.bus = None  # wired by the manager
        self.reseed(log)

    def reseed(self, log: DecisionLog) -> None:
        """(Re)build the replica state by verified replay of ``log``.

        Used at construction and for post-crash state transfer: a
        revived backup reseeds from a fork of the primary's durable log
        rather than trying to patch its lost volatile state.
        """
        self.log = log
        self.sched = TableDrivenScheduler(policy=self.policy)
        for index, record in enumerate(log.records):
            apply_record(self.sched, log, record, index)
        self.applied = len(log.records)

    def handle(self, message) -> None:
        """Bus endpoint: apply shipped records, serve observer reads."""
        if message.kind == "replicate":
            start = message.payload["from"]
            if start > self.applied:
                # A gap: records between our watermark and this batch
                # were lost to a crash on our side.  Ignore the batch;
                # the boundary state transfer re-seeds us whole.
                return
            for offset, record in enumerate(message.payload["records"]):
                index = start + offset
                if index < self.applied:
                    continue  # duplicate of an already-applied record
                self.log.records.append(record)
                apply_record(self.sched, self.log, record, index)
                self.applied += 1
                self.stats.repl_records_applied += 1
            self.stats.repl_acks += 1
            self.bus.send(
                self.name,
                message.src,
                "replicate-ack",
                payload={"backup": self.name, "acked": self.applied},
                reliable=True,
            )
        elif message.kind == "replica-read":
            shard = message.payload["object_name"]
            invocation = message.payload["invocation"]
            returned = self.sched.object(shard).preview(invocation)
            self.stats.replica_reads += 1
            if self.tracer:
                self.tracer.emit(
                    ReplicaReadServed(
                        time=self.bus.now,
                        backup=self.name,
                        shard=shard,
                        operation=invocation.operation,
                        watermark=self.applied,
                    )
                )
            self.bus.send(
                self.name,
                message.src,
                "replica-read-reply",
                message.gtxn,
                {"returned": returned, "watermark": self.applied},
                request_id=message.request_id,
            )


class ReplicaGroup:
    """One shard's replication state: primary, backups, epoch, watermarks."""

    def __init__(self, shard: str, primary: ParticipantNode) -> None:
        self.shard = shard
        self.primary = primary
        self.backups: list[BackupReplica] = []
        self.epoch = 0
        #: Per-backup shipped / acknowledged record watermarks.
        self.shipped: dict[str, int] = {}
        self.acked: dict[str, int] = {}
        #: Consecutive missed heartbeats (reset by any answered ping).
        self.missed = 0
        #: ``(epoch, incarnation)`` of every non-fenced served message —
        #: the evidence behind the single-primary-per-epoch certificate.
        self.servings: set[tuple[int, int]] = set()

    def note_ack(self, backup: str, acked: int) -> None:
        if backup in self.acked:
            self.acked[backup] = max(self.acked[backup], acked)

    def note_serve(self, incarnation: int) -> None:
        self.servings.add((self.epoch, incarnation))

    def ship(self) -> None:
        """Ship the primary's unshipped log tail to every live backup.

        Called by the primary after handling each message, *before* the
        reply is sent (the replicate messages take lower bus sequence
        numbers than the reply, so backups apply them first), and by the
        manager at boundaries to push tails written outside handlers.
        """
        node = self.primary
        total = len(node.log.records)
        down = node.bus.down()
        for backup in self.backups:
            if backup.name in down:
                continue
            start = self.shipped[backup.name]
            if start >= total:
                continue
            batch = tuple(node.log.records[start:])
            if node.tracer:
                node.tracer.emit(
                    LogShipped(
                        time=node.bus.now,
                        primary=node.name,
                        backup=backup.name,
                        from_index=start,
                        count=len(batch),
                        lag=start - self.acked[backup.name],
                    )
                )
            node.bus.send(
                node.name,
                backup.name,
                "replicate",
                payload={"from": start, "records": batch},
                reliable=True,
            )
            node.stats.repl_records_shipped += len(batch)
            self.shipped[backup.name] = total


class ReplicationManager:
    """The driver-side control plane of every replica group.

    Modeled as a reliable external configuration service: it observes
    liveness through seeded heartbeats at cluster boundaries, decides
    view changes synchronously (no protocol message can race one), and
    installs the new epoch directly on the surviving members.  All of it
    is clock-free and seeded, so two runs of the same ``(seed, plan)``
    promote the same backups at the same boundaries.
    """

    #: Consecutive missed heartbeats before a view change is declared.
    HEARTBEAT_THRESHOLD = 2

    def __init__(self, cluster, replicas: int) -> None:
        if replicas < 1:
            raise ValueError("a replica group needs at least one member")
        self.cluster = cluster
        self.replicas = replicas
        self.stats = cluster.stats
        self.tracer = cluster.tracer
        self.groups: dict[str, ReplicaGroup] = {}
        self._incarnations = itertools.count(1)
        shard_of = {owner: shard for shard, owner in cluster.owner.items()}
        for node in cluster.nodes:
            group = ReplicaGroup(shard_of[node.name], node)
            node.group = group
            node.incarnation = next(self._incarnations)
            for index in range(1, replicas):
                self._add_backup(group, f"{node.name}b{index}", node.log)
            self.groups[node.name] = group
        cluster.bus.epoch_stamp = self._stamp

    def _stamp(self, dst: str) -> int | None:
        group = self.groups.get(dst)
        return None if group is None else group.epoch

    def _add_backup(
        self, group: ReplicaGroup, name: str, log: DecisionLog
    ) -> BackupReplica:
        backup = BackupReplica(
            name,
            group.shard,
            group,
            log.fork(),
            self.cluster.policy,
            tracer=self.tracer,
            stats=self.stats,
        )
        backup.bus = self.cluster.bus
        self.cluster.bus.register_endpoint(name, backup.handle)
        group.backups.append(backup)
        group.backups.sort(key=lambda b: b.name)
        group.shipped[name] = backup.applied
        group.acked[name] = backup.applied
        return backup

    # ------------------------------------------------------------------
    # The boundary protocol
    # ------------------------------------------------------------------

    def boundary(self, mark_aborted) -> None:
        """One control-plane round, run at every cluster turn boundary.

        In order: drain deliverable replication traffic (acks lag one
        pump), revive crashed backups by state transfer, track
        heartbeats and hold crashed primaries that have a live backup,
        promote where the miss threshold is reached, consult the
        ``replica_crash`` fault point, then retransmit unacked tails and
        observe replication lag.
        """
        cluster = self.cluster
        bus = cluster.bus
        bus._pump("~repl-drain", "", bus.now)
        for name in sorted(self.groups):
            group = self.groups[name]
            down = bus.down()
            for backup in group.backups:
                if backup.name in down:
                    bus.revive(backup.name)
                    backup.reseed(group.primary.log.fork())
                    group.shipped[backup.name] = backup.applied
                    group.acked[backup.name] = backup.applied
                    self.stats.node_recoveries += 1
                    if self.tracer:
                        self.tracer.emit(
                            NodeRecovered(
                                time=bus.now,
                                node=backup.name,
                                replayed=backup.applied,
                            )
                        )
        for name in sorted(self.groups):
            group = self.groups[name]
            live = [
                b for b in group.backups if b.name not in bus.down()
            ]
            if name in bus.down():
                if not live:
                    # Nothing to fail over to: release the hold and let
                    # the ordinary revive-from-own-log path take it.
                    cluster._held.discard(name)
                    group.missed = 0
                    continue
                # Held down: the failure detector counts a direct miss
                # (no ping can reach a dead process), and the ordinary
                # revive path keeps its hands off while a failover is
                # brewing.
                cluster._held.add(name)
                group.missed += 1
                self.stats.heartbeats_missed += 1
            else:
                self.stats.heartbeats_sent += 1
                reply = bus.rpc(
                    cluster.coordinator.name, name, "ping",
                    timeout=1.0, retries=0,
                )
                if reply is None:
                    group.missed += 1
                    self.stats.heartbeats_missed += 1
                else:
                    group.missed = 0
            if group.missed >= self.HEARTBEAT_THRESHOLD and live:
                self.promote(group, mark_aborted)
        plan = cluster.plan
        if plan:
            candidates = sorted(
                backup.name
                for group in self.groups.values()
                for backup in group.backups
                if backup.name not in bus.down()
            )
            pick = plan.replica_crash(len(candidates))
            if pick is not None:
                victim = candidates[pick]
                self.stats.replica_crashes += 1
                self.stats.node_crashes += 1
                if self.tracer:
                    self.tracer.emit(
                        NodeCrashed(time=bus.now, node=victim)
                    )
                bus.crash(victim)
        for name in sorted(self.groups):
            group = self.groups[name]
            if name in bus.down():
                continue
            for backup in group.backups:
                if backup.name in bus.down():
                    continue
                acked = group.acked[backup.name]
                if acked < group.shipped[backup.name]:
                    self.stats.repl_retransmits += (
                        group.shipped[backup.name] - acked
                    )
                    group.shipped[backup.name] = acked
            group.ship()
            total = len(group.primary.log.records)
            for backup in group.backups:
                cluster.latency.observe(
                    "repl_lag",
                    group.shard,
                    float(total - group.acked[backup.name]),
                )

    # ------------------------------------------------------------------
    # View change
    # ------------------------------------------------------------------

    def promote(self, group: ReplicaGroup, mark_aborted) -> None:
        """Promote the most-caught-up live backup into the primary role.

        The new epoch fences the deposed view; the promoted node takes
        over the primary's bus name (role address), rebuilds its 2PC
        protocol state from the replicated log, resolves its in-doubt
        transactions with the termination protocol, and the group is
        brought back to full strength by seeding a fresh backup (under
        the promoted replica's retired name) from the new primary's log.
        """
        cluster = self.cluster
        bus = cluster.bus
        group.epoch += 1
        group.missed = 0
        self.stats.view_changes += 1
        live = [b for b in group.backups if b.name not in bus.down()]
        best = sorted(live, key=lambda b: (-b.applied, b.name))[0]
        deposed = group.primary
        name = deposed.name
        node = ParticipantNode(
            name, policy=cluster.policy, tracer=cluster.tracer,
            stats=cluster.stats,
        )
        node.bus = bus
        node.crash_hook = cluster._crash_point
        # Adopt the promoted replica's applied scheduler and log whole —
        # no replay needed, the backup *is* the recovered state.
        best.sched.tracer = cluster.tracer
        best.sched.now = bus.now
        node.log = best.log
        node.sched = LoggingScheduler(best.sched, log=best.log)
        node.rebuild_protocol_state()
        node.group = group
        node.incarnation = next(self._incarnations)
        group.primary = node
        group.backups.remove(best)
        group.shipped.pop(best.name, None)
        group.acked.pop(best.name, None)
        # Remaining backups hold prefixes of the promoted log; restart
        # shipping from their acked watermark (re-applied records dedupe
        # on the backup by index).
        for backup in group.backups:
            group.shipped[backup.name] = group.acked[backup.name]
        index = cluster.nodes.index(deposed)
        cluster.nodes[index] = node
        cluster._node_by_name[name] = node
        bus.register_endpoint(name, node.handle)
        bus.revive(name)
        cluster._held.discard(name)
        in_doubt = node.in_doubt()
        if self.tracer:
            self.tracer.emit(
                ViewChanged(
                    time=bus.now,
                    shard=group.shard,
                    primary=name,
                    promoted=best.name,
                    epoch=group.epoch,
                    log_records=len(node.log.records),
                    in_doubt=len(in_doubt),
                )
            )
        cluster._terminate(node, in_doubt, mark_aborted)
        # Refill the group under the retired name: the promoted engine
        # moved into the primary, so the old endpoint must be replaced
        # (not left aliasing the primary's live scheduler).
        self._add_backup(group, best.name, node.log)

    # ------------------------------------------------------------------
    # Reads and certificates
    # ------------------------------------------------------------------

    def observer_read(self, shard: str, invocation):
        """A snapshot read served by a backup at its watermark, or ``None``.

        Returns the previewed value, or ``None`` when no live backup can
        serve (the caller falls back to the primary's preview).
        """
        cluster = self.cluster
        group = self.groups[cluster.owner[shard]]
        live = [
            b for b in group.backups if b.name not in cluster.bus.down()
        ]
        if not live:
            return None
        reply = cluster.bus.rpc(
            "driver", live[0].name, "replica-read", -1,
            {"object_name": shard, "invocation": invocation},
        )
        if reply is None:
            return None
        return reply.payload["returned"]

    def fencing_violations(self) -> list[str]:
        """Single-primary-per-epoch certificate: violations, or empty.

        Every non-fenced served message recorded ``(epoch, incarnation)``
        on its group; two incarnations serving the same epoch would mean
        a request observed two primaries in one view.
        """
        violations = []
        for name in sorted(self.groups):
            group = self.groups[name]
            per_epoch: dict[int, set[int]] = {}
            for epoch, incarnation in group.servings:
                per_epoch.setdefault(epoch, set()).add(incarnation)
            for epoch in sorted(per_epoch):
                incarnations = per_epoch[epoch]
                if len(incarnations) > 1:
                    violations.append(
                        f"{name}: epoch {epoch} served by incarnations "
                        f"{sorted(incarnations)}"
                    )
        return violations

    def lag_report(self) -> dict:
        """Per-shard replication state (report/dashboard fodder)."""
        out = {}
        for name in sorted(self.groups):
            group = self.groups[name]
            total = len(group.primary.log.records)
            out[group.shard] = {
                "primary": name,
                "epoch": group.epoch,
                "log_records": total,
                "backups": {
                    backup.name: {
                        "applied": backup.applied,
                        "acked": group.acked[backup.name],
                        "lag": total - group.acked[backup.name],
                    }
                    for backup in group.backups
                },
            }
        return out

"""Global serializability audit of a distributed run.

Each node's scheduler checks its own shard; nobody on the cluster ever
sees the *global* history.  This module stitches it back together and
re-checks it with the existing single-node machinery, unchanged:

* :func:`stitch_edges` unions the per-node dependency graphs, mapped
  from local txn ids to gtxns, keeping the strongest label when two
  nodes recorded the same pair (AD beats CD, the
  :meth:`~repro.core.dependency.Dependency.stronger` rule).
* :class:`StitchedRun` adapts the cluster to the scheduler surface
  :func:`repro.cc.serializability.find_serialization` consumes —
  ``transaction(i)`` over driver-side global transactions (operation
  records carry global execution stamps, commit stamps follow the
  coordinator's decision order), ``object(name)`` proxied to the owning
  node's live shard object — so the *serial replay over actual final
  shard states* is the same code path experiment X5 trusts.
* :func:`audit_global` bundles the verdicts: no transaction left in
  doubt, a serialization witness exists, and the cross-node AD/CD
  contract held end-to-end (no committed transaction has an aborted AD
  predecessor; every committed dependency pair committed in dependency
  order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.serializability import find_serialization
from repro.cc.transaction import Transaction, TransactionStatus

__all__ = ["GlobalAudit", "StitchedRun", "audit_global", "stitch_edges"]


def stitch_edges(cluster) -> dict:
    """The union of all nodes' dependency edges, in gtxn space.

    Edges touching a local transaction that never attached to a global
    one (crash orphans) are dropped; a pair recorded on several nodes
    keeps its strongest label.
    """
    stitched: dict[tuple[int, int], object] = {}
    for node in cluster.nodes:
        mapping = node.gtxn_of
        for (later, earlier), dependency in (
            node.sched.dependency_graph().edges().items()
        ):
            if later not in mapping or earlier not in mapping:
                continue
            pair = (mapping[later], mapping[earlier])
            seen = stitched.get(pair)
            if seen is None or dependency > seen:
                stitched[pair] = dependency
    return stitched


class _EdgeView:
    """The minimal ``dependency_graph()`` surface: just ``edges()``."""

    def __init__(self, edges: dict) -> None:
        self._edges = edges

    def edges(self) -> dict:
        return dict(self._edges)


class StitchedRun:
    """A cluster viewed through the single-scheduler audit surface."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self._edges = stitch_edges(cluster)
        self._txns: dict[int, Transaction] = {}
        for gtxn in range(cluster.admitted):
            status = cluster.gstatus.get(gtxn, "ABORTED")
            self._txns[gtxn] = Transaction(
                txn_id=gtxn,
                status=TransactionStatus[status],
                records=list(cluster.grecords.get(gtxn, ())),
                commit_sequence=cluster.gstamps.get(gtxn),
            )

    def transaction(self, gtxn: int) -> Transaction:
        return self._txns[gtxn]  # KeyError past the end, by design

    def object(self, name: str):
        return self.cluster._shard_object(name)

    def dependency_graph(self) -> _EdgeView:
        return _EdgeView(self._edges)


@dataclass(frozen=True)
class GlobalAudit:
    """The verdict of one global audit."""

    serializable: bool
    ad_cd_ok: bool
    #: Gtxns some participant still holds prepared-but-undecided.
    in_doubt: tuple = ()
    #: Human-readable contract violations (empty when ``passed``).
    violations: tuple = ()
    witness: tuple = field(default=(), compare=False)

    @property
    def passed(self) -> bool:
        return self.serializable and self.ad_cd_ok and not self.in_doubt


def audit_global(cluster, brute_force_limit: int = 6) -> GlobalAudit:
    """Stitch ``cluster``'s finished run and re-check it end to end."""
    violations: list[str] = []

    in_doubt: list[int] = []
    for node in cluster.nodes:
        for gtxn in node.in_doubt():
            in_doubt.append(gtxn)
            violations.append(
                f"gtxn {gtxn} still in doubt on {node.name} after recovery"
            )

    stitched = StitchedRun(cluster)
    witness = find_serialization(stitched, brute_force_limit)
    if witness is None:
        violations.append("no serial order explains the committed history")

    ad_cd_ok = True
    committed = {
        gtxn
        for gtxn in range(cluster.admitted)
        if cluster.gstatus.get(gtxn) == "COMMITTED"
    }
    for (later, earlier), dependency in stitched._edges.items():
        if later not in committed:
            continue
        if earlier not in committed:
            # A CD predecessor may resolve either way; only an *abort*
            # dependency on an aborted predecessor must cascade.
            if dependency.name == "AD":
                ad_cd_ok = False
                violations.append(
                    f"committed gtxn {later} carries an AD dependency on "
                    f"aborted gtxn {earlier} (missed cascade)"
                )
            continue
        later_stamp = cluster.gstamps.get(later)
        earlier_stamp = cluster.gstamps.get(earlier)
        if (
            later_stamp is not None
            and earlier_stamp is not None
            and later_stamp < earlier_stamp
        ):
            ad_cd_ok = False
            violations.append(
                f"gtxn {later} committed before its {dependency.name} "
                f"predecessor {earlier} (stamps {later_stamp} < "
                f"{earlier_stamp})"
            )

    return GlobalAudit(
        serializable=witness is not None,
        ad_cd_ok=ad_cd_ok,
        in_doubt=tuple(sorted(set(in_doubt))),
        violations=tuple(violations),
        witness=tuple(witness or ()),
    )

"""Distributed chaos campaigns: message storms over a sharded matrix.

The distributed analogue of :func:`repro.robust.chaos.run_chaos`: the
matrix is **ADT × shard count × fault mix × seed**, and each cell runs
one full cluster under a seeded :class:`~repro.robust.faults.FaultPlan`
whose message-level fault points batter the bus (drops, duplicates,
reorders, delays, partitions — plus node crashes in the ``dist`` mix),
then audits the stitched global history with
:func:`repro.dist.audit.audit_global`.

Everything is seeded and clock-free, so the report is **byte-stable**:
the same matrix and mixes produce the identical JSON byte-for-byte
(asserted by the CI ``dist-chaos-smoke`` job, which runs the campaign
twice and compares).  Each cell embeds a SHA-256 digest of the full
transcript repr, so even sub-field drift between two runs is loud.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.cc.workload import WorkloadConfig, generate
from repro.robust.faults import FaultPlan, FaultSpec, RobustStats

from repro.dist.audit import audit_global
from repro.dist.cluster import Cluster, ClusterFrontend, shard_workload
from repro.dist.crash import dist_crash_sweep

__all__ = [
    "DEFAULT_MIXES",
    "run_dist_chaos",
    "run_replication_chaos",
]


def DEFAULT_MIXES() -> dict[str, FaultSpec | None]:
    """The standard fault mixes: fault-free, message-only, and full.

    A factory (not a constant) so every campaign gets fresh spec
    instances; ``None`` means no fault plan at all — the control column
    that must match an empty-plan run bit-for-bit.
    """
    return {
        "baseline": None,
        "messages": FaultSpec.message_storm(),
        "dist": FaultSpec.dist_storm(),
    }


def _digest(transcript) -> str:
    return hashlib.sha256(repr(transcript).encode("utf-8")).hexdigest()


def _spec_dict(spec: FaultSpec | None) -> dict | None:
    return None if spec is None else dataclasses.asdict(spec)


def run_dist_chaos(
    adts: dict[str, tuple],
    shard_counts: tuple[int, ...] = (1, 2),
    seeds: tuple[int, ...] = (1991,),
    mixes: dict[str, FaultSpec | None] | None = None,
    policy: str = "optimistic",
    transactions: int = 6,
    operations: int = 3,
    crash_sweep_enabled: bool = False,
) -> dict:
    """Run the distributed chaos matrix; returns the JSON-ready report.

    ``adts`` maps ADT name to ``(adt, table)``.  The report's
    ``"passed"`` field is the CI gate: every cell's stitched history
    serializable, AD/CD contract intact, and nothing left in doubt.
    ``crash_sweep_enabled`` additionally runs the exhaustive
    :func:`~repro.dist.crash.dist_crash_sweep` per (ADT, shard count)
    and folds its verdict in.
    """
    mixes = DEFAULT_MIXES() if mixes is None else mixes
    cells = []
    sweeps = []
    passed = True
    for adt_name in sorted(adts):
        adt, table = adts[adt_name]
        for shards in shard_counts:
            if crash_sweep_enabled:
                sweep = dist_crash_sweep(
                    adt,
                    table,
                    generate(
                        adt,
                        "obj",
                        WorkloadConfig(
                            transactions=transactions,
                            operations_per_transaction=operations,
                            seed=seeds[0],
                        ),
                    ),
                    shards=shards,
                    policy=policy,
                    seed=seeds[0],
                )
                passed = passed and sweep.passed
                sweeps.append(
                    {
                        "adt": adt_name,
                        "shards": shards,
                        "points_reached": sweep.points_reached,
                        "passed": sweep.passed,
                        "failures": [
                            {
                                "index": f.index,
                                "actor": f.actor,
                                "label": f.label,
                                "violations": list(f.audit.violations),
                            }
                            for f in sweep.failures()
                        ],
                    }
                )
            for mix_name in sorted(mixes):
                spec = mixes[mix_name]
                for seed in seeds:
                    workload = generate(
                        adt,
                        "obj",
                        WorkloadConfig(
                            transactions=transactions,
                            operations_per_transaction=operations,
                            seed=seed,
                        ),
                    )
                    robust_stats = RobustStats()
                    plan = (
                        None
                        if spec is None
                        else FaultPlan(seed, spec, stats=robust_stats)
                    )
                    cluster = Cluster(
                        adt, table, shards=shards, policy=policy,
                        fault_plan=plan,
                    )
                    transcript = cluster.run(workload, seed=seed)
                    audit = audit_global(cluster)
                    passed = passed and audit.passed
                    cells.append(
                        {
                            "adt": adt_name,
                            "shards": shards,
                            "mix": mix_name,
                            "seed": seed,
                            "digest": _digest(transcript),
                            "committed": [
                                gtxn
                                for gtxn, status in transcript.statuses
                                if status == "COMMITTED"
                            ],
                            "final_states": [
                                list(pair) for pair in transcript.final_states
                            ],
                            "audit": {
                                "passed": audit.passed,
                                "serializable": audit.serializable,
                                "ad_cd_ok": audit.ad_cd_ok,
                                "in_doubt": list(audit.in_doubt),
                                "violations": list(audit.violations),
                            },
                            "faults": None if plan is None else plan.report(),
                            "dist": dict(transcript.dist_stats),
                        }
                    )
    report = {
        "matrix": {
            "adts": sorted(adts),
            "shard_counts": list(shard_counts),
            "mixes": {
                name: _spec_dict(mixes[name]) for name in sorted(mixes)
            },
            "seeds": list(seeds),
            "policy": policy,
            "transactions": transactions,
            "operations": operations,
        },
        "cells": cells,
        "passed": passed,
    }
    if crash_sweep_enabled:
        report["crash_sweeps"] = sweeps
    return report


class _KillPrimariesOnce:
    """A crash schedule that kills each listed primary exactly once.

    Fires at the first 2PC-adjacent protocol point (an operation apply,
    a PREPARE log, or a decision apply) each primary reaches, so every
    shard loses its primary mid-protocol — the worst moment — exactly
    once per campaign run.  Deterministic: the fire set depends only on
    the run's own protocol point order.
    """

    POINT_KINDS = ("op", "prepare", "decide")

    def __init__(self, names) -> None:
        self.remaining = set(names)
        self.fired: list[tuple[str, str]] = []

    def fire(self, actor: str, label: str) -> bool:
        if (
            actor in self.remaining
            and label.split(":")[0] in self.POINT_KINDS
        ):
            self.remaining.discard(actor)
            self.fired.append((actor, label))
            return True
        return False


def _drive_frontend(
    cluster: Cluster,
    workload,
    seed: int,
    partition: tuple[int, str, float] | None = None,
    max_attempts: int = 64,
) -> None:
    """Serve ``workload`` txn-by-txn through a :class:`ClusterFrontend`.

    The open-loop driver the partition scenario needs: unlike
    :meth:`Cluster.run` it exposes a mid-run hook — ``partition=(txn
    index, node name, duration)`` opens a coordinator↔node partition
    just before that transaction begins, which the heartbeat detector
    sees as a dead primary (false suspicion) and fails over while the
    old primary is still alive.  Outcomes settle through the frontend's
    at-least-once retry machinery; ``finalize()`` drains the tail.
    """
    frontend = ClusterFrontend(cluster, allow_faults=True)
    assignments = shard_workload(workload, cluster.shard_names, seed)
    for index, program in enumerate(workload.programs):
        if partition is not None and index == partition[0]:
            link = frozenset((cluster.coordinator.name, partition[1]))
            cluster.bus._partitions[link] = cluster.bus.now + partition[2]
            cluster.stats.partitions_opened += 1
        gtxn = frontend.begin()
        for step_index, step in enumerate(program.steps):
            shard = assignments[index][step_index]
            for _ in range(max_attempts):
                decision = frontend.request(gtxn, shard, step.invocation)
                if decision.executed or decision.aborted:
                    break
                frontend.tick_boundary()
            if frontend.status(gtxn) != "ACTIVE" or decision.aborted:
                break
        if frontend.status(gtxn) != "ACTIVE":
            continue
        if program.voluntary_abort:
            frontend.abort(gtxn, "voluntary")
            continue
        for _ in range(max_attempts):
            commit = frontend.try_commit(gtxn)
            if commit.committed or commit.must_abort:
                break
            frontend.tick_boundary()
        else:
            frontend.abort(gtxn, "livelock-guard")
    frontend.finalize()


def _replication_cell_report(cluster: Cluster, gates: dict) -> dict:
    """Common per-scenario evidence: audit, loss, fencing, stats."""
    audit = audit_global(cluster)
    committed = sorted(
        gtxn
        for gtxn, status in cluster.gstatus.items()
        if status == "COMMITTED"
    )
    # Zero committed-transaction loss: every decision the coordinator
    # durably logged as commit must have survived as COMMITTED.
    lost = sorted(
        gtxn
        for gtxn in cluster.coordinator.committed
        if cluster.gstatus.get(gtxn) != "COMMITTED"
    )
    fencing = (
        cluster.replication.fencing_violations()
        if cluster.replication is not None
        else []
    )
    gates = dict(gates)
    gates["audit"] = audit.passed
    gates["no_committed_loss"] = not lost
    gates["single_primary_per_epoch"] = not fencing
    stats = cluster.stats
    return {
        "gates": gates,
        "passed": all(gates.values()),
        "committed": committed,
        "lost_commits": lost,
        "fencing_violations": fencing,
        "audit_violations": list(audit.violations),
        "view_changes": stats.view_changes,
        "fenced_messages": stats.fenced_messages,
        "replication": (
            cluster.replication.lag_report()
            if cluster.replication is not None
            else {}
        ),
    }


def run_replication_chaos(
    adts: dict[str, tuple],
    shard_counts: tuple[int, ...] = (2,),
    seeds: tuple[int, ...] = (1991,),
    policy: str = "blocking",
    transactions: int = 10,
    operations: int = 3,
    replicas: int = 2,
    goodput_floor: float = 0.5,
    storm_intensity: float = 0.05,
) -> dict:
    """The replicated-failover chaos campaign; returns a JSON-ready report.

    Five scenarios per (ADT, shard count, seed) over ``replicas``-wide
    replica groups, each gated:

    ``nominal``
        Fault-free replicated run: the goodput reference; must audit
        clean, be transcript-identical across two runs (byte stability),
        and finish with every backup's watermark at the primary's log.
    ``primary_kill``
        Every primary killed exactly once mid-protocol
        (:class:`_KillPrimariesOnce`).  Gates: a view change per shard,
        committed work at least ``goodput_floor`` of nominal, zero
        committed-transaction loss, clean audit, and the
        single-primary-per-epoch fencing certificate.
    ``partition_heal``
        A long coordinator↔primary partition opened mid-serve: the
        heartbeat detector falsely suspects the (alive) primary and
        fails over; the partition then heals and serving converges.
    ``duel_fence``
        After the partition failover, a message stamped with the deposed
        epoch is injected and pumped: it must be *fenced* (rejected),
        not applied, and settled statuses must be unaffected.
    ``replica_storm``
        :meth:`~repro.robust.faults.FaultSpec.replication_storm` —
        message faults, primary crashes *and* backup crashes — twice,
        with byte-identical reports and a clean audit both times.

    Every scenario's stitched history must pass
    :func:`~repro.dist.audit.audit_global`; the report's ``"passed"``
    is the CI gate.
    """
    from repro.robust.faults import FaultPlan, FaultSpec

    cells = []
    passed = True
    for adt_name in sorted(adts):
        adt, table = adts[adt_name]
        for shards in shard_counts:
            for seed in seeds:
                workload = generate(
                    adt,
                    "obj",
                    WorkloadConfig(
                        transactions=transactions,
                        operations_per_transaction=operations,
                        seed=seed,
                    ),
                )

                def replicated(crash_schedule=None, plan=None) -> Cluster:
                    return Cluster(
                        adt, table, shards=shards, policy=policy,
                        fault_plan=plan, crash_schedule=crash_schedule,
                        replicas=replicas,
                    )

                scenarios = {}

                # -- nominal: the goodput reference --------------------
                nominal_cluster = replicated()
                nominal = nominal_cluster.run(workload, seed=seed)
                rerun = replicated().run(workload, seed=seed)
                nominal_committed = sum(
                    1 for _, status in nominal.statuses
                    if status == "COMMITTED"
                )
                caught_up = all(
                    backup["lag"] == 0
                    for shard in
                    nominal_cluster.replication.lag_report().values()
                    for backup in shard["backups"].values()
                )
                scenarios["nominal"] = _replication_cell_report(
                    nominal_cluster,
                    {
                        "deterministic": nominal == rerun,
                        "backups_caught_up": caught_up,
                    },
                )
                scenarios["nominal"]["digest"] = _digest(nominal)

                # -- primary_kill: every primary dies mid-protocol -----
                schedule = _KillPrimariesOnce(
                    node.name for node in nominal_cluster.nodes
                )
                kill_cluster = replicated(crash_schedule=schedule)
                kill = kill_cluster.run(workload, seed=seed)
                kill_committed = sum(
                    1 for _, status in kill.statuses
                    if status == "COMMITTED"
                )
                floor = int(goodput_floor * nominal_committed)
                scenarios["primary_kill"] = _replication_cell_report(
                    kill_cluster,
                    {
                        "all_primaries_killed": not schedule.remaining,
                        "failover_per_shard":
                            kill_cluster.stats.view_changes >= shards,
                        "goodput":
                            kill_committed >= floor,
                    },
                )
                scenarios["primary_kill"]["killed"] = [
                    list(pair) for pair in schedule.fired
                ]
                scenarios["primary_kill"]["committed_vs_nominal"] = [
                    kill_committed, nominal_committed,
                ]

                # -- partition_heal: false suspicion, then healing -----
                part_cluster = replicated()
                _drive_frontend(
                    part_cluster, workload, seed,
                    partition=(
                        transactions // 2,
                        part_cluster.nodes[0].name,
                        200.0,
                    ),
                )
                scenarios["partition_heal"] = _replication_cell_report(
                    part_cluster,
                    {
                        "failed_over":
                            part_cluster.stats.view_changes >= 1,
                        "all_settled": all(
                            status in ("COMMITTED", "ABORTED")
                            for status in part_cluster.gstatus.values()
                        ),
                    },
                )

                # -- duel_fence: the deposed view's message bounces ----
                bus = part_cluster.bus
                before = dict(part_cluster.gstatus)
                fenced_before = part_cluster.stats.fenced_messages
                stamp, bus.epoch_stamp = bus.epoch_stamp, None
                try:
                    bus.send(
                        part_cluster.coordinator.name,
                        part_cluster.nodes[0].name,
                        "decide",
                        payload={"decision": "abort", "_epoch": 0},
                    )
                    bus._pump("~duel", "", bus.now)
                finally:
                    bus.epoch_stamp = stamp
                scenarios["duel_fence"] = _replication_cell_report(
                    part_cluster,
                    {
                        "stale_message_fenced":
                            part_cluster.stats.fenced_messages
                            > fenced_before,
                        "statuses_unaffected":
                            dict(part_cluster.gstatus) == before,
                    },
                )

                # -- replica_storm: full fault mix, twice, byte-stable -
                spec = FaultSpec.replication_storm(storm_intensity)
                storm_digests = []
                storm_reports = []
                for _ in range(2):
                    storm_cluster = replicated(
                        plan=FaultPlan(seed, spec)
                    )
                    storm = storm_cluster.run(workload, seed=seed)
                    storm_digests.append(_digest(storm))
                    storm_reports.append(
                        _replication_cell_report(storm_cluster, {})
                    )
                storm_report = storm_reports[0]
                storm_report["gates"]["deterministic"] = (
                    storm_digests[0] == storm_digests[1]
                    and storm_reports[0] == storm_reports[1]
                )
                storm_report["passed"] = all(
                    storm_report["gates"].values()
                )
                storm_report["digest"] = storm_digests[0]
                scenarios["replica_storm"] = storm_report

                cell_passed = all(
                    s["passed"] for s in scenarios.values()
                )
                passed = passed and cell_passed
                cells.append(
                    {
                        "adt": adt_name,
                        "shards": shards,
                        "seed": seed,
                        "scenarios": scenarios,
                        "passed": cell_passed,
                    }
                )
    return {
        "matrix": {
            "adts": sorted(adts),
            "shard_counts": list(shard_counts),
            "seeds": list(seeds),
            "policy": policy,
            "transactions": transactions,
            "operations": operations,
            "replicas": replicas,
            "goodput_floor": goodput_floor,
            "storm_intensity": storm_intensity,
        },
        "cells": cells,
        "passed": passed,
    }

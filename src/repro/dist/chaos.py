"""Distributed chaos campaigns: message storms over a sharded matrix.

The distributed analogue of :func:`repro.robust.chaos.run_chaos`: the
matrix is **ADT × shard count × fault mix × seed**, and each cell runs
one full cluster under a seeded :class:`~repro.robust.faults.FaultPlan`
whose message-level fault points batter the bus (drops, duplicates,
reorders, delays, partitions — plus node crashes in the ``dist`` mix),
then audits the stitched global history with
:func:`repro.dist.audit.audit_global`.

Everything is seeded and clock-free, so the report is **byte-stable**:
the same matrix and mixes produce the identical JSON byte-for-byte
(asserted by the CI ``dist-chaos-smoke`` job, which runs the campaign
twice and compares).  Each cell embeds a SHA-256 digest of the full
transcript repr, so even sub-field drift between two runs is loud.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.cc.workload import WorkloadConfig, generate
from repro.robust.faults import FaultPlan, FaultSpec, RobustStats

from repro.dist.audit import audit_global
from repro.dist.cluster import Cluster
from repro.dist.crash import dist_crash_sweep

__all__ = ["DEFAULT_MIXES", "run_dist_chaos"]


def DEFAULT_MIXES() -> dict[str, FaultSpec | None]:
    """The standard fault mixes: fault-free, message-only, and full.

    A factory (not a constant) so every campaign gets fresh spec
    instances; ``None`` means no fault plan at all — the control column
    that must match an empty-plan run bit-for-bit.
    """
    return {
        "baseline": None,
        "messages": FaultSpec.message_storm(),
        "dist": FaultSpec.dist_storm(),
    }


def _digest(transcript) -> str:
    return hashlib.sha256(repr(transcript).encode("utf-8")).hexdigest()


def _spec_dict(spec: FaultSpec | None) -> dict | None:
    return None if spec is None else dataclasses.asdict(spec)


def run_dist_chaos(
    adts: dict[str, tuple],
    shard_counts: tuple[int, ...] = (1, 2),
    seeds: tuple[int, ...] = (1991,),
    mixes: dict[str, FaultSpec | None] | None = None,
    policy: str = "optimistic",
    transactions: int = 6,
    operations: int = 3,
    crash_sweep_enabled: bool = False,
) -> dict:
    """Run the distributed chaos matrix; returns the JSON-ready report.

    ``adts`` maps ADT name to ``(adt, table)``.  The report's
    ``"passed"`` field is the CI gate: every cell's stitched history
    serializable, AD/CD contract intact, and nothing left in doubt.
    ``crash_sweep_enabled`` additionally runs the exhaustive
    :func:`~repro.dist.crash.dist_crash_sweep` per (ADT, shard count)
    and folds its verdict in.
    """
    mixes = DEFAULT_MIXES() if mixes is None else mixes
    cells = []
    sweeps = []
    passed = True
    for adt_name in sorted(adts):
        adt, table = adts[adt_name]
        for shards in shard_counts:
            if crash_sweep_enabled:
                sweep = dist_crash_sweep(
                    adt,
                    table,
                    generate(
                        adt,
                        "obj",
                        WorkloadConfig(
                            transactions=transactions,
                            operations_per_transaction=operations,
                            seed=seeds[0],
                        ),
                    ),
                    shards=shards,
                    policy=policy,
                    seed=seeds[0],
                )
                passed = passed and sweep.passed
                sweeps.append(
                    {
                        "adt": adt_name,
                        "shards": shards,
                        "points_reached": sweep.points_reached,
                        "passed": sweep.passed,
                        "failures": [
                            {
                                "index": f.index,
                                "actor": f.actor,
                                "label": f.label,
                                "violations": list(f.audit.violations),
                            }
                            for f in sweep.failures()
                        ],
                    }
                )
            for mix_name in sorted(mixes):
                spec = mixes[mix_name]
                for seed in seeds:
                    workload = generate(
                        adt,
                        "obj",
                        WorkloadConfig(
                            transactions=transactions,
                            operations_per_transaction=operations,
                            seed=seed,
                        ),
                    )
                    robust_stats = RobustStats()
                    plan = (
                        None
                        if spec is None
                        else FaultPlan(seed, spec, stats=robust_stats)
                    )
                    cluster = Cluster(
                        adt, table, shards=shards, policy=policy,
                        fault_plan=plan,
                    )
                    transcript = cluster.run(workload, seed=seed)
                    audit = audit_global(cluster)
                    passed = passed and audit.passed
                    cells.append(
                        {
                            "adt": adt_name,
                            "shards": shards,
                            "mix": mix_name,
                            "seed": seed,
                            "digest": _digest(transcript),
                            "committed": [
                                gtxn
                                for gtxn, status in transcript.statuses
                                if status == "COMMITTED"
                            ],
                            "final_states": [
                                list(pair) for pair in transcript.final_states
                            ],
                            "audit": {
                                "passed": audit.passed,
                                "serializable": audit.serializable,
                                "ad_cd_ok": audit.ad_cd_ok,
                                "in_doubt": list(audit.in_doubt),
                                "violations": list(audit.violations),
                            },
                            "faults": None if plan is None else plan.report(),
                            "dist": dict(transcript.dist_stats),
                        }
                    )
    report = {
        "matrix": {
            "adts": sorted(adts),
            "shard_counts": list(shard_counts),
            "mixes": {
                name: _spec_dict(mixes[name]) for name in sorted(mixes)
            },
            "seeds": list(seeds),
            "policy": policy,
            "transactions": transactions,
            "operations": operations,
        },
        "cells": cells,
        "passed": passed,
    }
    if crash_sweep_enabled:
        report["crash_sweeps"] = sweeps
    return report

"""A participant node: one scheduler per shard behind idempotent handlers.

Each node owns a :class:`~repro.cc.scheduler.TableDrivenScheduler`
wrapped in a :class:`~repro.robust.decision_log.LoggingScheduler`, so
every scheduler decision is write-ahead logged; the node additionally
appends ``2pc-`` *protocol records* to the same
:class:`~repro.robust.decision_log.DecisionLog`:

``2pc-attach``
    The gtxn ↔ local-txn mapping, written right after the local
    ``begin`` a global transaction's first operation triggered.
``2pc-prepared``
    A yes vote: the transaction is prepared, with the AD/CD predecessor
    gtxn sets that were shipped in the vote (the dependency
    piggybacking).  Logged *before* the vote is sent — a prepared
    participant that crashes is in doubt until the termination protocol
    asks the coordinator.
``2pc-decided``
    The received (or queried) global decision, closing the in-doubt
    window.

Scheduler replay skips protocol records (see
:func:`~repro.robust.decision_log.replay_into`); :meth:`ParticipantNode.recover`
replays the scheduler, then re-reads the protocol records to rebuild the
mapping and the in-doubt set.

Idempotency: operation requests carry a per-node ``op_seq`` and are
deduplicated against the recovered transaction's executed-record count,
so a retried (or duplicated, or replayed-after-crash) request never
double-applies; PREPARE re-votes from the prepared cache; COMMIT/ABORT
on an already-resolved transaction acks without touching the scheduler.
"""

from __future__ import annotations

import json

from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.transaction import TransactionStatus
from repro.errors import SchedulerError
from repro.obs.events import PrimaryFenced, TwoPCVoted
from repro.obs.spans import _NO_CONTEXT, SpanEmitter
from repro.obs.tracers import NULL_TRACER
from repro.robust.decision_log import Decision, DecisionLog, LoggingScheduler

from repro.dist.stats import DistStats

__all__ = ["ParticipantNode"]


class ParticipantNode:
    """One simulated node: a logged scheduler plus the 2PC participant."""

    def __init__(
        self,
        name: str,
        policy: str = "optimistic",
        tracer=NULL_TRACER,
        stats: DistStats | None = None,
    ) -> None:
        self.name = name
        self.tracer = tracer
        self.stats = stats if stats is not None else DistStats()
        self.log = DecisionLog()
        self.sched = LoggingScheduler(
            TableDrivenScheduler(policy=policy, tracer=tracer), log=self.log
        )
        self.bus = None  # wired by the cluster
        #: ``cluster.crash_point`` hook; ``None`` disables crash points.
        self.crash_hook = None
        self._spans = SpanEmitter(name, tracer, clock=self._now)
        self.ltxn_of: dict[int, int] = {}
        self.gtxn_of: dict[int, int] = {}
        #: gtxn -> {"ad": [...], "cd": [...], "decided": ""|"commit"|"abort"}
        self.prepared: dict[int, dict] = {}
        #: The node's :class:`~repro.dist.replication.ReplicaGroup` when
        #: the cluster runs with ``replicas > 1``; ``None`` otherwise.
        self.group = None
        #: Distinguishes successive holders of the same bus name across
        #: view changes (the single-primary-per-epoch certificate).
        self.incarnation = 0

    def _now(self) -> float:
        return self.bus.now if self.bus is not None else 0.0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def register_object(self, name, adt, table, initial_state=None):
        return self.sched.register_object(name, adt, table, initial_state)

    def _crash_point(self, label: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(self.name, label)

    def _map(self, gtxn: int, create: bool = False) -> int | None:
        ltxn = self.ltxn_of.get(gtxn)
        if ltxn is not None or not create:
            return ltxn
        ltxn = self.sched.begin()
        self.ltxn_of[gtxn] = ltxn
        self.gtxn_of[ltxn] = gtxn
        self._crash_point("attach:pre-log")
        self.log.append(
            Decision(
                kind="2pc-attach", txn=ltxn, extra=json.dumps({"gtxn": gtxn})
            )
        )
        self._crash_point("attach:post-log")
        return ltxn

    def _gmap(self, ltxns) -> tuple[int, ...]:
        """Local txn ids -> sorted gtxn ids (unmapped ids are dropped)."""
        return tuple(
            sorted(
                self.gtxn_of[ltxn] for ltxn in ltxns if ltxn in self.gtxn_of
            )
        )

    def _others_aborted(self, before: set[int], skip: int) -> tuple[int, ...]:
        """Gtxns whose local txn died during the handling of one message."""
        after = self.sched.active_transactions()
        return self._gmap(t for t in before - after if t != skip)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def handle(self, message) -> None:
        """Dispatch one bus message and send the reply."""
        # Scheduler events carry the node's logical clock; slave it to the
        # bus sim-clock so one run's trace is monotone per node.  The
        # scheduler never branches on `now` (it only stamps events), so
        # this cannot perturb decisions.
        self.sched.now = self.bus.now
        if message.kind == "ping":
            self.bus.send(
                self.name, message.src, "ping-reply", message.gtxn,
                {"pong": True}, request_id=message.request_id,
            )
            return
        if message.kind == "replicate-ack":
            # Watermark advance from a backup; fire-and-forget.
            if self.group is not None:
                self.group.note_ack(
                    message.payload["backup"], message.payload["acked"]
                )
            return
        if self.group is not None and self._fence(message):
            return
        handlers = {
            "op": self._handle_op,
            "commit-one": self._handle_commit_one,
            "prepare": self._handle_prepare,
            "decide": self._handle_decide,
            "abort": self._handle_abort,
        }
        handler = handlers.get(message.kind)
        if handler is None:
            raise SchedulerError(
                f"node {self.name}: unknown message kind {message.kind!r}"
            )
        reply = handler(message)
        if self.group is not None:
            # Ship before reply: the replicate messages take lower bus
            # sequence numbers than the reply, so every backup applies
            # this handler's log records before the outcome is
            # externalized — a promoted backup can never miss a record
            # whose effect the coordinator already observed.
            self.group.ship()
        self.bus.send(
            self.name,
            message.src,
            f"{message.kind}-reply",
            message.gtxn,
            reply,
            request_id=message.request_id,
        )

    def _fence(self, message) -> bool:
        """Reject a message stamped by a deposed view.  True if fenced."""
        epoch = message.payload.get("_epoch") if message.payload else None
        if epoch is None or epoch >= self.group.epoch:
            self.group.note_serve(self.incarnation)
            return False
        self.stats.fenced_messages += 1
        if self.tracer:
            self.tracer.emit(
                PrimaryFenced(
                    time=self.bus.now,
                    node=self.name,
                    src=message.src,
                    kind=message.kind,
                    gtxn=message.gtxn,
                    message_epoch=epoch,
                    current_epoch=self.group.epoch,
                )
            )
        key = "vote" if message.kind == "prepare" else "outcome"
        self.bus.send(
            self.name,
            message.src,
            f"{message.kind}-reply",
            message.gtxn,
            {key: "fenced", "others_aborted": ()},
            request_id=message.request_id,
        )
        return True

    def _handle_op(self, message) -> dict:
        gtxn = message.gtxn
        ltxn = self._map(gtxn, create=True)
        txn = self.sched.transaction(ltxn)
        if txn.status is not TransactionStatus.ACTIVE:
            return {
                "outcome": "aborted" if txn.is_aborted else "unexpected",
                "others_aborted": (),
            }
        op_seq = message.payload["op_seq"]
        if op_seq < len(txn.records):
            # Duplicate of an already-executed operation (retry after a
            # lost reply or a crash past the log append): answer from the
            # durable record instead of re-executing.
            record = txn.records[op_seq]
            return {
                "outcome": "executed",
                "returned": record.returned,
                "blocked_on": (),
                "dependencies": (),
                "others_aborted": (),
                "duplicate": True,
            }
        before = self.sched.active_transactions()
        # Span only on this fresh path — the dedupe path above answers
        # from the durable record, so duplicated messages never produce
        # extra scheduler spans.
        span = self._spans.child(
            message.span, "sched.op", gtxn,
            detail=message.payload["object_name"],
        )
        outcome = "crashed"
        try:
            self._crash_point("op:pre-apply")
            decision = self.sched.request(
                ltxn, message.payload["object_name"],
                message.payload["invocation"],
            )
            self._crash_point("op:post-apply")
            if decision.executed:
                outcome = "executed"
            elif decision.aborted:
                outcome = "aborted"
            else:
                outcome = "blocked"
        finally:
            span.finish(outcome)
        return {
            "outcome": outcome,
            "returned": decision.returned,
            "blocked_on": self._gmap(decision.blocked_on),
            "dependencies": tuple(
                (self.gtxn_of[ltxn_dep], dep)
                for ltxn_dep, dep in decision.dependencies
                if ltxn_dep in self.gtxn_of
            ),
            "others_aborted": self._others_aborted(before, ltxn),
        }

    def _handle_commit_one(self, message) -> dict:
        """The one-phase optimization: sole participant, direct commit."""
        ltxn = self._map(message.gtxn, create=True)
        txn = self.sched.transaction(ltxn)
        if txn.is_committed:
            return {"outcome": "committed", "others_aborted": ()}
        if txn.is_aborted:
            return {"outcome": "must-abort", "others_aborted": ()}
        before = self.sched.active_transactions()
        span = self._spans.child(message.span, "sched.commit", message.gtxn)
        outcome = "crashed"
        try:
            self._crash_point("commit:pre-apply")
            decision = self.sched.try_commit(ltxn)
            self._crash_point("commit:post-apply")
            if decision.committed:
                outcome = "committed"
            elif decision.must_abort:
                outcome = "must-abort"
            else:
                outcome = "waiting"
        finally:
            span.finish(outcome)
        return {
            "outcome": outcome,
            "waiting_on": self._gmap(decision.waiting_on),
            "others_aborted": self._others_aborted(before, ltxn),
        }

    def _handle_prepare(self, message) -> dict:
        gtxn = message.gtxn
        ltxn = self._map(gtxn, create=True)
        entry = self.prepared.get(gtxn)
        if entry is not None:
            # Idempotent re-vote from the durable prepared cache (no
            # span: duplicated PREPAREs do no fresh work).
            return self._vote(
                gtxn, "yes", ad=tuple(entry["ad"]), cd=tuple(entry["cd"])
            )
        span = self._spans.child(message.span, "sched.prepare", gtxn)
        reply = None
        try:
            reply = self._prepare_fresh(gtxn, ltxn)
            return reply
        finally:
            span.finish(reply["vote"] if reply is not None else "crashed")

    def _prepare_fresh(self, gtxn: int, ltxn: int) -> dict:
        txn = self.sched.transaction(ltxn)
        if txn.is_aborted:
            return self._vote(gtxn, "no")
        if txn.is_committed:
            return self._vote(gtxn, "yes")
        ad, cd = self.sched.dependency_sets(ltxn)
        unresolved = [
            t for t in ad | cd if self.sched.transaction(t).is_active
        ]
        if unresolved:
            # The piggybacking rule: no yes vote while a transaction this
            # one is commit-dependent on is still unresolved locally.
            return self._vote(
                gtxn, "wait", waiting_on=self._gmap(unresolved)
            )
        if any(self.sched.transaction(t).is_aborted for t in ad):
            # An abort-dependency predecessor aborted: this transaction
            # must abort (the cascade rule), so vote no after aborting.
            before = self.sched.active_transactions()
            self.sched.abort(ltxn, reason="ad-pred-aborted")
            return self._vote(
                gtxn, "no", others=self._others_aborted(before, ltxn)
            )
        ad_g = [int(g) for g in self._gmap(ad)]
        cd_g = [int(g) for g in self._gmap(cd)]
        self._crash_point("prepare:pre-log")
        self.log.append(
            Decision(
                kind="2pc-prepared",
                txn=ltxn,
                extra=json.dumps({"gtxn": gtxn, "ad": ad_g, "cd": cd_g}),
            )
        )
        self.prepared[gtxn] = {"ad": ad_g, "cd": cd_g, "decided": ""}
        self._crash_point("prepare:post-log")
        return self._vote(gtxn, "yes", ad=tuple(ad_g), cd=tuple(cd_g))

    def _vote(
        self,
        gtxn: int,
        vote: str,
        ad: tuple = (),
        cd: tuple = (),
        waiting_on: tuple = (),
        others: tuple = (),
    ) -> dict:
        if vote == "yes":
            self.stats.votes_yes += 1
        elif vote == "wait":
            self.stats.votes_wait += 1
        else:
            self.stats.votes_no += 1
        if self.tracer:
            self.tracer.emit(
                TwoPCVoted(
                    time=self.bus.now if self.bus else 0.0,
                    node=self.name, gtxn=gtxn, vote=vote, ad=ad, cd=cd,
                )
            )
        return {
            "vote": vote,
            "ad": ad,
            "cd": cd,
            "waiting_on": waiting_on,
            "others_aborted": others,
        }

    def _handle_decide(self, message) -> dict:
        return self.apply_decision(
            message.gtxn, message.payload["decision"], span=message.span
        )

    def apply_decision(
        self, gtxn: int, decision: str, span: tuple = _NO_CONTEXT
    ) -> dict:
        """Apply a global decision (from a DECIDE or a termination query)."""
        if self.bus is not None:
            self.sched.now = self.bus.now
        ltxn = self._map(gtxn)
        others: tuple[int, ...] = ()
        if ltxn is not None:
            txn = self.sched.transaction(ltxn)
            if txn.is_active:
                before = self.sched.active_transactions()
                # Fresh application only; an already-decided (duplicated
                # DECIDE) transaction acks above without a span.
                apply_span = self._spans.child(
                    span, "sched.decide", gtxn, detail=decision
                )
                status = "crashed"
                try:
                    self._crash_point("decide:pre-apply")
                    if decision == "commit":
                        outcome = self.sched.try_commit(ltxn)
                        if not outcome.committed:
                            raise SchedulerError(
                                f"node {self.name}: global commit of gtxn "
                                f"{gtxn} could not commit locally "
                                f"(txn {ltxn})"
                            )
                    else:
                        self.sched.abort(ltxn, reason="2pc-abort")
                    self._crash_point("decide:post-apply")
                    status = decision
                finally:
                    apply_span.finish(status)
                others = self._others_aborted(before, ltxn)
        entry = self.prepared.get(gtxn)
        if entry is not None and not entry["decided"]:
            entry["decided"] = decision
            self._crash_point("decided:pre-log")
            self.log.append(
                Decision(
                    kind="2pc-decided",
                    txn=ltxn if ltxn is not None else -1,
                    extra=json.dumps({"gtxn": gtxn, "decision": decision}),
                )
            )
            self._crash_point("decided:post-log")
        return {"outcome": "ack", "others_aborted": others}

    def _handle_abort(self, message) -> dict:
        """A coordinator-relayed abort (voluntary or fault-injected)."""
        ltxn = self._map(message.gtxn, create=True)
        txn = self.sched.transaction(ltxn)
        if not txn.is_active:
            return {"outcome": "aborted", "others_aborted": ()}
        before = self.sched.active_transactions()
        span = self._spans.child(message.span, "sched.abort", message.gtxn)
        status = "crashed"
        try:
            self._crash_point("abort:pre-apply")
            self.sched.abort(
                ltxn, reason=message.payload.get("reason", "requested")
            )
            self._crash_point("abort:post-apply")
            status = "aborted"
        finally:
            span.finish(status)
        return {
            "outcome": "aborted",
            "others_aborted": self._others_aborted(before, ltxn),
        }

    # ------------------------------------------------------------------
    # Introspection / recovery
    # ------------------------------------------------------------------

    def in_doubt(self) -> list[int]:
        """Gtxns prepared here whose global decision is still unknown."""
        pending = []
        for gtxn in sorted(self.prepared):
            entry = self.prepared[gtxn]
            if entry["decided"]:
                continue
            ltxn = self.ltxn_of.get(gtxn)
            if ltxn is not None and self.sched.transaction(ltxn).is_active:
                pending.append(gtxn)
        return pending

    def unresolved(self) -> list[int]:
        """Gtxns whose local transaction is still active (any phase)."""
        return sorted(
            self.gtxn_of[ltxn]
            for ltxn in self.sched.active_transactions()
            if ltxn in self.gtxn_of
        )

    def recover(self) -> int:
        """Rebuild the node from its durable log after a crash.

        The scheduler is reincarnated by verified replay (protocol
        records are skipped), then the protocol records are re-read to
        rebuild the gtxn mapping and the prepared/in-doubt state.  Local
        transactions whose ``begin`` was logged but whose ``2pc-attach``
        was lost to the crash are orphans: no retry can ever reach them
        (the retried first operation begins a fresh local transaction),
        so they are aborted here.  Returns the number of replayed
        records.
        """
        replayed = len(self.log.records)
        self.sched = self.sched.reincarnate()
        if self.bus is not None:
            self.sched.now = self.bus.now
        self.rebuild_protocol_state()
        return replayed

    def rebuild_protocol_state(self) -> None:
        """Re-read the protocol records against the current scheduler.

        Shared by crash recovery and backup promotion: the scheduler
        already holds the replayed (or replicated) state; this pass
        rebuilds the gtxn mapping and the prepared/in-doubt cache from
        the ``2pc-`` records and aborts orphaned local transactions.
        """
        self.ltxn_of = {}
        self.gtxn_of = {}
        self.prepared = {}
        for record in self.log.records:
            if not record.kind.startswith("2pc-"):
                continue
            data = json.loads(record.extra) if record.extra else {}
            gtxn = data.get("gtxn", -1)
            if record.kind == "2pc-attach":
                self.ltxn_of[gtxn] = record.txn
                self.gtxn_of[record.txn] = gtxn
            elif record.kind == "2pc-prepared":
                self.prepared[gtxn] = {
                    "ad": list(data.get("ad", [])),
                    "cd": list(data.get("cd", [])),
                    "decided": "",
                }
            elif record.kind == "2pc-decided":
                entry = self.prepared.get(gtxn)
                if entry is None:
                    entry = {"ad": [], "cd": [], "decided": ""}
                    self.prepared[gtxn] = entry
                entry["decided"] = data.get("decision", "")
        for ltxn in sorted(self.sched.active_transactions()):
            if ltxn not in self.gtxn_of:
                self.sched.abort(ltxn, reason="orphaned-by-crash")
                self.stats.orphans_aborted += 1

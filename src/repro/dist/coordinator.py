"""Presumed-abort two-phase commit with dependency piggybacking.

The coordinator drives the commit of every global transaction:

* **One participant** → the one-phase optimization: a direct
  ``commit-one`` RPC whose outcome maps one-to-one onto the scheduler's
  own commit decision.  This is what keeps a one-shard cluster
  transcript-identical to the bare harness.
* **Several participants** → PREPARE each (in sorted node order).  A
  participant votes ``yes`` only once every transaction its local leg is
  commit-dependent on has resolved, shipping the AD/CD predecessor gtxn
  sets in the vote (the paper's Section 2.1 dependencies, carried across
  nodes); ``wait`` defers the whole attempt to the next turn (the
  distributed analogue of the scheduler's commit-wait); ``no`` or an RPC
  timeout aborts.  All yes → the decision is **durably logged before any
  COMMIT is sent** (``2pc-commit`` in the coordinator's
  :class:`~repro.robust.decision_log.DecisionLog`); presumed abort means
  abort decisions are never logged — a recovering coordinator answers
  in-doubt queries with abort for any transaction missing from its log.

Cross-node commit-wait cycles (gtxn A waits on B at one node while B
waits on A at another — invisible to either local scheduler) are broken
by the coordinator's global wait graph: ``note_waiting`` records each
wait outcome, :meth:`Coordinator.find_deadlock_victim` finds a cycle and
nominates the youngest member, matching the local schedulers' victim
rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.events import TwoPCDecided
from repro.obs.spans import _NO_CONTEXT, SpanEmitter
from repro.obs.tracers import NULL_TRACER
from repro.robust.decision_log import Decision, DecisionLog

from repro.dist.stats import DistStats

__all__ = ["CommitOutcome", "Coordinator", "OpOutcome"]


@dataclass(frozen=True)
class OpOutcome:
    """Outcome of one forwarded operation request."""

    status: str  #: ``executed`` / ``blocked`` / ``aborted`` / ``unreachable``
    returned: object = None
    blocked_on: tuple = ()
    dependencies: tuple = ()
    others_aborted: tuple = ()


@dataclass(frozen=True)
class CommitOutcome:
    """Outcome of one commit attempt for a global transaction."""

    status: str  #: ``committed``/``waiting``/``aborted``/``unreachable``
    waiting_on: tuple = ()
    others_aborted: tuple = ()
    one_phase: bool = False
    #: Participants whose COMMIT notification is still undelivered.
    unacked: tuple = ()


@dataclass
class _Volatile:
    """Coordinator state lost in a crash and rebuilt from the log."""

    waits: dict = field(default_factory=dict)
    #: gtxn -> (decision, set of unnotified participants)
    unacked: dict = field(default_factory=dict)


class Coordinator:
    """The presumed-abort 2PC coordinator (and termination-query server)."""

    def __init__(
        self,
        name: str = "coord",
        tracer=NULL_TRACER,
        stats: DistStats | None = None,
    ) -> None:
        self.name = name
        self.tracer = tracer
        self.stats = stats if stats is not None else DistStats()
        self.log = DecisionLog()
        self.log.policy = "2pc"
        self.bus = None  # wired by the cluster
        self.crash_hook = None
        self._spans = SpanEmitter(name, tracer, clock=self._now)
        self.committed: set[int] = set()
        self.volatile = _Volatile()

    def _now(self) -> float:
        return self.bus.now if self.bus is not None else 0.0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _crash_point(self, label: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(self.name, label)

    def handle(self, message) -> None:
        """The termination-protocol server: answer in-doubt queries.

        Presumed abort in one line: a decision the log does not carry is
        an abort.
        """
        if message.kind != "query":
            return
        self.stats.indoubt_queries += 1
        decision = "commit" if message.gtxn in self.committed else "abort"
        self.bus.send(
            self.name,
            message.src,
            "query-reply",
            message.gtxn,
            {"decision": decision},
            request_id=message.request_id,
        )

    def recover(self) -> None:
        """Rebuild after a crash: volatile state dies, the log survives."""
        self.volatile = _Volatile()
        self.committed = {
            json.loads(record.extra)["gtxn"]
            for record in self.log.records
            if record.kind == "2pc-commit"
        }

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def do_operation(
        self,
        gtxn: int,
        node: str,
        payload: dict,
        span: tuple = _NO_CONTEXT,
        deadline: float | None = None,
    ) -> OpOutcome:
        """Forward one operation to its shard's owner node."""
        op_span = self._spans.child(span, "op", gtxn, detail=node)
        reply = self.bus.rpc(
            self.name, node, "op", gtxn, payload, span=op_span.context,
            deadline=deadline,
        )
        if reply is None:
            op_span.finish("unreachable")
            return OpOutcome(status="unreachable")
        data = reply.payload
        if data["outcome"] in ("unexpected", "fenced"):
            # ``fenced``: a stale-epoch delivery rejected by the shard's
            # current primary — retry next turn with a fresh stamp.
            op_span.finish("unreachable")
            return OpOutcome(status="unreachable")
        op_span.finish(data["outcome"])
        return OpOutcome(
            status=data["outcome"],
            returned=data.get("returned"),
            blocked_on=tuple(data.get("blocked_on", ())),
            dependencies=tuple(data.get("dependencies", ())),
            others_aborted=tuple(data.get("others_aborted", ())),
        )

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------

    def do_commit(
        self,
        gtxn: int,
        participants: list[str],
        span: tuple = _NO_CONTEXT,
        deadline: float | None = None,
    ) -> CommitOutcome:
        """One commit attempt; ``waiting``/``unreachable`` retry next turn."""
        commit_span = self._spans.child(span, "commit", gtxn)
        status = "crashed"
        try:
            outcome = self._commit_attempt(
                gtxn, participants, commit_span.context, deadline=deadline
            )
            status = outcome.status
            return outcome
        finally:
            # Crash points below raise SimCrash through here; the span
            # still closes, so crashed attempts never orphan children.
            commit_span.finish(status)

    def _commit_attempt(
        self,
        gtxn: int,
        participants: list[str],
        ctx: tuple,
        deadline: float | None = None,
    ) -> CommitOutcome:
        participants = sorted(participants)
        if gtxn in self.committed:
            # A crash-recovered (or partially notified) logged decision:
            # skip straight to notification, idempotently.
            return self._notify_commit(
                gtxn, participants, one_phase=False, ctx=ctx,
                deadline=deadline,
            )
        if len(participants) == 1:
            return self._one_phase(gtxn, participants[0], ctx, deadline)
        waiting: set[int] = set()
        voted_no = False
        unreachable = False
        others: set[int] = set()
        for node in participants:
            self.stats.prepares_sent += 1
            prepare_span = self._spans.child(ctx, "prepare", gtxn, detail=node)
            vote = "crashed"
            try:
                self._crash_point("prepare:pre-send")
                reply = self.bus.rpc(
                    self.name, node, "prepare", gtxn, {},
                    span=prepare_span.context, deadline=deadline,
                )
                self._crash_point("prepare:post-send")
                vote = reply.payload["vote"] if reply is not None else "timeout"
            finally:
                prepare_span.finish(vote)
            if reply is None:
                unreachable = True
                break
            if vote == "fenced":
                # The participant's view changed under this attempt;
                # treat like an unreachable node, not a no vote — the
                # retry re-stamps with the current epoch.
                unreachable = True
                break
            if vote == "yes":
                continue
            if vote == "wait":
                waiting.update(reply.payload.get("waiting_on", ()))
            else:
                voted_no = True
                others.update(reply.payload.get("others_aborted", ()))
            break
        if not (waiting or voted_no or unreachable):
            # Unanimous yes: log the commit durably *before* any COMMIT
            # message exists anywhere (the presumed-abort write rule).
            self._crash_point("decision:pre-log")
            self.log.append(
                Decision(
                    kind="2pc-commit",
                    txn=gtxn,
                    extra=json.dumps(
                        {"gtxn": gtxn, "participants": participants}
                    ),
                )
            )
            self.committed.add(gtxn)
            self._crash_point("decision:post-log")
            self.stats.decisions_commit += 1
            if self.tracer:
                self.tracer.emit(
                    TwoPCDecided(
                        time=self.bus.now, gtxn=gtxn, decision="commit",
                        participants=tuple(participants),
                    )
                )
            return self._notify_commit(
                gtxn, participants, one_phase=False, ctx=ctx,
                deadline=deadline,
            )
        if waiting and not (voted_no or unreachable):
            return CommitOutcome(status="waiting", waiting_on=tuple(sorted(waiting)))
        # A no vote or an unreachable participant: presumed abort — no
        # durable record, notify whoever is reachable, queries resolve
        # the rest.
        self.stats.decisions_abort += 1
        if self.tracer:
            self.tracer.emit(
                TwoPCDecided(
                    time=self.bus.now, gtxn=gtxn, decision="abort",
                    participants=tuple(participants),
                )
            )
        notified_others = self._notify_abort(gtxn, participants, ctx=ctx)
        return CommitOutcome(
            status="aborted",
            others_aborted=tuple(sorted(others | set(notified_others))),
        )

    def _one_phase(
        self,
        gtxn: int,
        node: str,
        ctx: tuple = _NO_CONTEXT,
        deadline: float | None = None,
    ) -> CommitOutcome:
        span = self._spans.child(ctx, "commit-one", gtxn, detail=node)
        reply = self.bus.rpc(
            self.name, node, "commit-one", gtxn, {}, span=span.context,
            deadline=deadline,
        )
        span.finish(
            reply.payload["outcome"] if reply is not None else "timeout"
        )
        if reply is None:
            return CommitOutcome(status="unreachable")
        data = reply.payload
        outcome = data["outcome"]
        if outcome == "fenced":
            return CommitOutcome(status="unreachable")
        if outcome == "committed":
            self.stats.one_phase_commits += 1
            if self.tracer:
                self.tracer.emit(
                    TwoPCDecided(
                        time=self.bus.now, gtxn=gtxn, decision="commit",
                        participants=(node,), one_phase=True,
                    )
                )
            return CommitOutcome(
                status="committed",
                others_aborted=tuple(data.get("others_aborted", ())),
                one_phase=True,
            )
        if outcome == "waiting":
            return CommitOutcome(
                status="waiting",
                waiting_on=tuple(data.get("waiting_on", ())),
                one_phase=True,
            )
        return CommitOutcome(
            status="aborted",
            others_aborted=tuple(data.get("others_aborted", ())),
            one_phase=True,
        )

    def _notify_commit(
        self,
        gtxn: int,
        participants: list[str],
        one_phase: bool,
        ctx: tuple = _NO_CONTEXT,
        deadline: float | None = None,
    ) -> CommitOutcome:
        # The decision is durably logged before we get here, so losing a
        # notification to the deadline is safe: the participant stays
        # prepared and ``flush_unacked`` (deadline-free) re-delivers at
        # the next turn boundary.
        others: set[int] = set()
        pending = set(self.volatile.unacked.get(gtxn, ("", set()))[1])
        targets = sorted(pending) if pending else participants
        unacked: set[str] = set()
        for node in targets:
            decide_span = self._spans.child(ctx, "decide", gtxn, detail=node)
            status = "crashed"
            try:
                self._crash_point("decide:pre-send")
                reply = self.bus.rpc(
                    self.name, node, "decide", gtxn, {"decision": "commit"},
                    span=decide_span.context, deadline=deadline,
                )
                self._crash_point("decide:post-send")
                status = "ack" if reply is not None else "timeout"
            finally:
                decide_span.finish(status)
            if reply is None or reply.payload.get("outcome") == "fenced":
                unacked.add(node)
            else:
                others.update(reply.payload.get("others_aborted", ()))
        if unacked:
            self.volatile.unacked[gtxn] = ("commit", unacked)
        else:
            self.volatile.unacked.pop(gtxn, None)
        return CommitOutcome(
            status="committed",
            others_aborted=tuple(sorted(others)),
            one_phase=one_phase,
            unacked=tuple(sorted(unacked)),
        )

    def _notify_abort(
        self, gtxn: int, participants: list[str], ctx: tuple = _NO_CONTEXT
    ) -> tuple:
        others: set[int] = set()
        unacked: set[str] = set()
        for node in sorted(participants):
            decide_span = self._spans.child(ctx, "decide", gtxn, detail=node)
            reply = self.bus.rpc(
                self.name, node, "decide", gtxn, {"decision": "abort"},
                span=decide_span.context,
            )
            decide_span.finish("ack" if reply is not None else "timeout")
            if reply is None or reply.payload.get("outcome") == "fenced":
                unacked.add(node)
            else:
                others.update(reply.payload.get("others_aborted", ()))
        if unacked:
            self.volatile.unacked[gtxn] = ("abort", unacked)
        return tuple(sorted(others))

    def do_abort(
        self,
        gtxn: int,
        participants: list[str],
        reason: str = "requested",
        span: tuple = _NO_CONTEXT,
    ) -> tuple | None:
        """Abort ``gtxn`` on every participant; ``None`` = retry needed."""
        abort_span = self._spans.child(span, "abort", gtxn, detail=reason)
        others: set[int] = set()
        complete = True
        for node in sorted(participants):
            reply = self.bus.rpc(
                self.name, node, "abort", gtxn, {"reason": reason},
                span=abort_span.context,
            )
            if reply is None or reply.payload.get("outcome") == "fenced":
                complete = False
            else:
                others.update(reply.payload.get("others_aborted", ()))
        abort_span.finish("ok" if complete else "partial")
        if not complete:
            return None
        return tuple(sorted(others))

    def flush_unacked(self) -> None:
        """Re-deliver decisions whose notification was lost (turn boundary)."""
        for gtxn in sorted(self.volatile.unacked):
            decision, nodes = self.volatile.unacked[gtxn]
            remaining: set[str] = set()
            for node in sorted(nodes):
                reply = self.bus.rpc(
                    self.name, node, "decide", gtxn, {"decision": decision}
                )
                if reply is None or reply.payload.get("outcome") == "fenced":
                    remaining.add(node)
            if remaining:
                self.volatile.unacked[gtxn] = (decision, remaining)
            else:
                del self.volatile.unacked[gtxn]

    # ------------------------------------------------------------------
    # Global wait graph
    # ------------------------------------------------------------------

    def note_waiting(self, gtxn: int, waiting_on) -> None:
        self.volatile.waits[gtxn] = set(waiting_on)

    def clear_waiting(self, gtxn: int) -> None:
        self.volatile.waits.pop(gtxn, None)

    def find_deadlock_victim(self) -> int | None:
        """Youngest member of a wait cycle, or ``None``.

        Only currently-waiting transactions can be cycle members (a wait
        on a transaction that is making progress is not a deadlock), so
        the search runs over the wait map alone — iteratively, matching
        the schedulers' O(1)-stack discipline.
        """
        waits = self.volatile.waits
        color: dict[int, int] = {}
        for root in sorted(waits):
            if color.get(root):
                continue
            stack: list[tuple[int, list]] = [
                (root, sorted(w for w in waits[root] if w in waits))
            ]
            color[root] = 1
            path = [root]
            while stack:
                txn, successors = stack[-1]
                if successors:
                    nxt = successors.pop(0)
                    if color.get(nxt) == 1:
                        cycle = path[path.index(nxt):]
                        return max(cycle)
                    if not color.get(nxt):
                        color[nxt] = 1
                        path.append(nxt)
                        stack.append(
                            (nxt, sorted(w for w in waits[nxt] if w in waits))
                        )
                else:
                    color[txn] = 2
                    path.pop()
                    stack.pop()
        return None

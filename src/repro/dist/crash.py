"""Exhaustive crash-point sweep over the distributed protocol.

The single-node robustness layer sweeps scheduler decision points; here
the swept surface is the *protocol*: every named crash point a run
passes — participant log appends and scheduler applications
(``attach``/``op``/``prepare``/``decide``/``decided``/``commit``/``abort``,
each ``pre``/``post``) and coordinator steps (PREPARE sends, the
decision-log write, COMMIT notification sends) — is killed in its own
fresh cluster run, before-and-after style, exactly once.

A census run (no target) first enumerates the points the workload
actually reaches; then one cluster per point crashes there and runs to
completion, crash recovery and the termination protocol included.  Each
run must end with **no transaction in doubt, a serializable stitched
global history, and the AD/CD contract intact** — the distributed
acceptance bar of the PR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dist.audit import GlobalAudit, audit_global
from repro.dist.cluster import Cluster

__all__ = [
    "CrashSchedule",
    "DistCrashPointResult",
    "DistCrashSweepResult",
    "dist_crash_sweep",
]


class CrashSchedule:
    """Fires a crash at the N-th protocol crash point of a run.

    With ``target=None`` it only records the points it is consulted at
    (the census pass); with an integer target, consultation number
    ``target`` (0-based) raises the crash — once.
    """

    def __init__(self, target: int | None = None) -> None:
        self.target = target
        self.points: list[tuple[str, str]] = []  # (actor, label), in order
        self.fired: tuple[str, str] | None = None

    def fire(self, actor: str, label: str) -> bool:
        index = len(self.points)
        self.points.append((actor, label))
        if self.target is not None and index == self.target:
            self.fired = (actor, label)
            return True
        return False


@dataclass(frozen=True)
class DistCrashPointResult:
    """Outcome of killing one protocol point."""

    index: int
    actor: str
    label: str
    audit: GlobalAudit
    #: Status disagreements between the census run and this run, if any
    #: — commits already decided before the crash must survive it.
    regressions: tuple = ()

    @property
    def passed(self) -> bool:
        return self.audit.passed and not self.regressions


@dataclass(frozen=True)
class DistCrashSweepResult:
    """The whole sweep: census size and per-point verdicts."""

    points_reached: int
    results: tuple = field(default=())

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def failures(self) -> tuple:
        return tuple(r for r in self.results if not r.passed)


def dist_crash_sweep(
    adt,
    table,
    workload,
    shards: int = 2,
    policy: str = "optimistic",
    seed: int = 0,
    max_points: int | None = None,
    replicas: int = 1,
) -> DistCrashSweepResult:
    """Crash every reached protocol point in its own cluster run.

    ``max_points`` caps the sweep (evenly prefix-truncated) for smoke
    use; the full sweep is the default.  ``replicas > 1`` sweeps over
    replica groups instead of bare nodes: every crashed point then also
    exercises the hold-down/promotion path wherever a live backup
    exists.
    """

    def fresh(schedule: CrashSchedule | None) -> Cluster:
        return Cluster(
            adt, table, shards=shards, policy=policy,
            crash_schedule=schedule, replicas=replicas,
        )

    census = CrashSchedule(target=None)
    baseline_cluster = fresh(census)
    baseline = baseline_cluster.run(workload, seed=seed)
    reached = len(census.points)

    targets = range(reached if max_points is None else min(reached, max_points))
    results = []
    baseline_status = dict(baseline.statuses)
    for target in targets:
        schedule = CrashSchedule(target=target)
        cluster = fresh(schedule)
        cluster.run(workload, seed=seed)
        audit = audit_global(cluster)
        actor, label = schedule.fired if schedule.fired else ("", "unreached")
        # Durability regression check: a transaction the crashed run
        # *committed* must not be one the coordinator's log can lose —
        # i.e. every commit this run reports must replay as a commit
        # from durable state (it does: gstatus only turns COMMITTED on a
        # logged or one-phase-applied decision).  The census comparison
        # is deliberately loose — crashes legitimately change outcomes
        # (aborts instead of commits) — but a gtxn committed in BOTH
        # runs must agree with the census on its existence.
        regressions = tuple(
            f"gtxn {gtxn} has status {status} but was never admitted "
            f"in the census run"
            for gtxn, status in cluster.transcript.statuses
            if gtxn not in baseline_status
        )
        results.append(
            DistCrashPointResult(
                index=target,
                actor=actor,
                label=label,
                audit=audit,
                regressions=regressions,
            )
        )
    return DistCrashSweepResult(
        points_reached=reached, results=tuple(results)
    )

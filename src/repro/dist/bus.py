"""A deterministic simulated message bus with injectable message faults.

The bus is the only channel between the coordinator and the participant
nodes.  It is seeded and clock-free in the same sense as the rest of the
stack: sim-time only advances when a message carries latency (a fault)
or an RPC waits out a timeout, so a fault-free one-shard run makes the
exact same scheduler calls in the exact same order as the bare harness.

Per sent message the bus consults the :class:`~repro.robust.faults.FaultPlan`
message-level fault points, in a fixed order:

1. ``partition`` — may open a bidirectional partition on a seeded-chosen
   link for ``partition_duration`` sim-time; messages crossing an open
   partition (either direction) are dropped until it heals.
2. ``msg_drop`` — the message is silently lost.
3. ``msg_delay`` — bounded seeded extra latency.
4. ``msg_reorder`` — small seeded jitter that pushes the message past
   later sends (the queue is ordered by ``(deliver_at, seq)``).
5. ``msg_duplicate`` — the message is enqueued twice.

An empty message-fault plan draws nothing from any stream, so the bus is
bit-identical to a fault-free bus (the PR 4 contract extended to
messages).

RPC discipline: :meth:`SimBus.rpc` sends a request carrying a unique
``request_id``, then *pumps* delivery — handlers run synchronously, in
delivery order — until the matching reply arrives or the attempt's
deadline passes; timeouts retry with capped exponential backoff, reusing
the same ``request_id`` so receivers can deduplicate.  A handler that
raises :class:`SimCrash` kills its endpoint: the endpoint is marked
down, its queued inbound messages are lost, and the in-flight RPC times
out — the cluster revives the endpoint from its durable log at the next
turn boundary.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.obs.events import MessageDropped, MessageSent, PartitionOpened
from repro.obs.spans import _NO_CONTEXT, SpanEmitter
from repro.obs.tracers import NULL_TRACER

from repro.dist.stats import DistStats

__all__ = ["Message", "SimBus", "SimCrash"]


class SimCrash(Exception):
    """A simulated process crash of one endpoint (node or coordinator)."""

    def __init__(self, actor: str) -> None:
        super().__init__(f"simulated crash of {actor}")
        self.actor = actor


@dataclass
class Message:
    """One bus message; ``payload`` carries in-memory protocol values."""

    src: str
    dst: str
    kind: str
    gtxn: int = -1
    request_id: str = ""
    payload: dict = field(default_factory=dict)
    deliver_at: float = 0.0
    seq: int = 0
    #: Causal-tracing context ``(trace_id, span_id)`` of the sender's
    #: span; observability only — protocol logic never reads it.
    span: tuple = _NO_CONTEXT
    #: Absolute sim-time deadline of the serving request this message
    #: works for; ``0.0`` = none.  A deadline-carrying message that
    #: would deliver past its deadline is dropped (``expired``) — the
    #: receiver's work could no longer help the request anyway.
    deadline: float = 0.0


class SimBus:
    """Deterministic message bus: seeded faults, pumped synchronous RPC."""

    def __init__(
        self,
        plan=None,
        stats: DistStats | None = None,
        tracer=NULL_TRACER,
        base_latency: float = 0.0,
        timeout: float = 4.0,
        retries: int = 3,
        backoff_cap: float = 32.0,
    ) -> None:
        self.plan = plan
        self.stats = stats if stats is not None else DistStats()
        self.tracer = tracer
        self.base_latency = base_latency
        self.timeout = timeout
        self.retries = retries
        self.backoff_cap = backoff_cap
        self.now: float = 0.0
        #: Optional always-on RPC round-trip hook: ``latency(kind, dt)``.
        self.latency = None
        #: Optional epoch-stamping hook installed by the replication
        #: manager: ``epoch_stamp(dst) -> int | None``.  A non-``None``
        #: result is stamped into the payload as ``"_epoch"`` so group
        #: members can fence messages sent under a deposed view.
        #: Re-evaluated per send, so each RPC retry carries the epoch
        #: current at that attempt.
        self.epoch_stamp = None
        self._spans = SpanEmitter("bus", tracer, clock=lambda: self.now)
        self._queue: list[tuple[float, int, Message]] = []
        self._handlers: dict[str, object] = {}
        self._down: set[str] = set()
        self._partitions: dict[frozenset, float] = {}
        self.partition_links: list[frozenset] = []
        self._seq = itertools.count()
        self._requests = itertools.count()
        self._pumping = False

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def register_endpoint(self, name: str, handler) -> None:
        """Attach ``handler(message)`` as the endpoint ``name``."""
        self._handlers[name] = handler

    def down(self) -> set[str]:
        """Endpoints currently crashed (awaiting revival)."""
        return set(self._down)

    def crash(self, actor: str) -> None:
        """Kill ``actor``: mark it down and lose its queued inbound mail."""
        self._down.add(actor)
        self._queue = [
            entry for entry in self._queue if entry[2].dst != actor
        ]
        heapq.heapify(self._queue)

    def revive(self, actor: str) -> None:
        self._down.discard(actor)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        kind: str,
        gtxn: int = -1,
        payload: dict | None = None,
        request_id: str = "",
        span: tuple = _NO_CONTEXT,
        deadline: float = 0.0,
        reliable: bool = False,
    ) -> None:
        """Enqueue one message, consulting the message fault points.

        ``reliable=True`` skips the whole fault consult (drops, delays,
        duplicates *and* partitions): replication traffic — log
        shipping, acks, state transfer — models a disk-backed channel
        inside the replica group, and exempting it keeps the
        message-fault streams byte-identical to unreplicated runs.
        """
        detail = f"{src}->{dst}:{kind}"
        plan = None if reliable else self.plan
        extra_latency = 0.0
        duplicate = False
        if self.epoch_stamp is not None:
            epoch = self.epoch_stamp(dst)
            if epoch is not None:
                payload = dict(payload) if payload else {}
                payload["_epoch"] = epoch
        if plan:
            opened = plan.partition(len(self.partition_links))
            if opened is not None:
                pick, duration = opened
                link = self.partition_links[pick]
                self._partitions[link] = self.now + duration
                self.stats.partitions_opened += 1
                if self.tracer:
                    a, b = sorted(link)
                    self.tracer.emit(
                        PartitionOpened(
                            time=self.now, a=a, b=b, heals_at=self.now + duration
                        )
                    )
        if not reliable:
            link = frozenset((src, dst))
            heals_at = self._partitions.get(link)
            if heals_at is not None:
                if self.now < heals_at:
                    self.stats.partition_drops += 1
                    self._drop(src, dst, kind, gtxn, "partition")
                    return
                del self._partitions[link]
        if plan:
            if plan.msg_drop(detail):
                self.stats.messages_dropped += 1
                self._drop(src, dst, kind, gtxn, "fault")
                return
            delay = plan.msg_delay(detail)
            if delay is not None:
                self.stats.messages_delayed += 1
                extra_latency += delay
            jitter = plan.msg_reorder(detail)
            if jitter is not None:
                self.stats.messages_reordered += 1
                extra_latency += jitter
            duplicate = plan.msg_duplicate(detail)
        deliver_at = self.now + self.base_latency + extra_latency
        message = Message(
            src=src,
            dst=dst,
            kind=kind,
            gtxn=gtxn,
            request_id=request_id,
            payload=payload if payload is not None else {},
            deliver_at=deliver_at,
            seq=next(self._seq),
            span=span,
            deadline=deadline,
        )
        heapq.heappush(self._queue, (message.deliver_at, message.seq, message))
        self.stats.messages_sent += 1
        if self.tracer:
            self.tracer.emit(
                MessageSent(
                    time=self.now, src=src, dst=dst, kind=kind, gtxn=gtxn,
                    deliver_at=deliver_at,
                )
            )
        if duplicate:
            self.stats.messages_duplicated += 1
            twin = Message(
                src=src,
                dst=dst,
                kind=kind,
                gtxn=gtxn,
                request_id=request_id,
                payload=message.payload,
                deliver_at=deliver_at,
                seq=next(self._seq),
                span=span,
                deadline=deadline,
            )
            heapq.heappush(self._queue, (twin.deliver_at, twin.seq, twin))

    def _drop(
        self, src: str, dst: str, kind: str, gtxn: int, reason: str
    ) -> None:
        if self.tracer:
            self.tracer.emit(
                MessageDropped(
                    time=self.now, src=src, dst=dst, kind=kind, gtxn=gtxn,
                    reason=reason,
                )
            )

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------

    def rpc(
        self,
        caller: str,
        dst: str,
        kind: str,
        gtxn: int = -1,
        payload: dict | None = None,
        timeout: float | None = None,
        retries: int | None = None,
        span: tuple = _NO_CONTEXT,
        deadline: float | None = None,
    ) -> Message | None:
        """Synchronous request/reply with timeout and capped backoff.

        Every attempt reuses the same ``request_id`` (receivers dedupe on
        it); the per-attempt deadline grows exponentially up to
        ``backoff_cap``.  Returns the reply message, or ``None`` after
        the final attempt timed out.  ``span`` (a causal-tracing context)
        rides in every attempt's envelope; retried attempts additionally
        record an ``rpc-retry`` child span.

        ``deadline`` (absolute sim-time) bounds the whole exchange: no
        attempt starts at or past it, every attempt's wait is clipped to
        it, and it rides in the envelope so stale work is dropped at
        delivery.  An exchange abandoned that way counts ``rpc_expired``
        rather than ``rpc_timeouts``.
        """
        timeout = self.timeout if timeout is None else timeout
        retries = self.retries if retries is None else retries
        request_id = f"{caller}#{next(self._requests)}"
        started = self.now
        expired = False
        for attempt in range(retries + 1):
            if deadline is not None and self.now >= deadline:
                expired = True
                break
            retry_span = None
            if attempt:
                self.stats.rpc_retries += 1
                retry_span = self._spans.child(
                    span, "rpc-retry", gtxn, detail=f"{dst}:{kind}"
                )
            self.send(
                caller, dst, kind, gtxn, payload,
                request_id=request_id, span=span,
                deadline=deadline if deadline is not None else 0.0,
            )
            wait = min(timeout * (2 ** attempt), self.backoff_cap)
            if deadline is not None:
                wait = min(wait, max(deadline - self.now, 0.0))
            reply = self._pump(caller, request_id, self.now + wait)
            if retry_span is not None:
                retry_span.finish("ok" if reply is not None else "timeout")
            if reply is not None:
                if self.latency is not None:
                    self.latency(kind, self.now - started)
                return reply
        if expired:
            self.stats.rpc_expired += 1
        else:
            self.stats.rpc_timeouts += 1
        if self.latency is not None:
            self.latency(f"{kind}-timeout", self.now - started)
        return None

    def _pump(
        self, caller: str, request_id: str, deadline: float
    ) -> Message | None:
        """Deliver due messages in order until the awaited reply or timeout."""
        if self._pumping:
            raise RuntimeError("SimBus.rpc is not reentrant")
        self._pumping = True
        try:
            while self._queue and self._queue[0][0] <= deadline:
                deliver_at, _seq, message = heapq.heappop(self._queue)
                self.now = max(self.now, deliver_at)
                if message.deadline and self.now > message.deadline:
                    self.stats.messages_expired += 1
                    self._drop(
                        message.src, message.dst, message.kind, message.gtxn,
                        "expired",
                    )
                    continue
                if message.dst in self._down:
                    self.stats.messages_dropped += 1
                    self._drop(
                        message.src, message.dst, message.kind, message.gtxn,
                        "endpoint-down",
                    )
                    continue
                if message.dst == caller:
                    if message.request_id == request_id:
                        self.stats.messages_delivered += 1
                        return message
                    # A reply to an earlier (retried or abandoned) request.
                    self.stats.stale_replies += 1
                    continue
                handler = self._handlers.get(message.dst)
                if handler is None:
                    self.stats.messages_dropped += 1
                    self._drop(
                        message.src, message.dst, message.kind, message.gtxn,
                        "no-endpoint",
                    )
                    continue
                self.stats.messages_delivered += 1
                try:
                    handler(message)
                except SimCrash as crash:
                    self.stats.node_crashes += 1
                    self.crash(crash.actor)
            self.now = max(self.now, deadline)
            return None
        finally:
            self._pumping = False

"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "UnknownVertexError",
    "DuplicateVertexError",
    "UnknownReferenceError",
    "InvalidEdgeError",
    "SpecError",
    "UnknownOperationError",
    "StateSpaceError",
    "MethodologyError",
    "InconsistentEntryError",
    "TemplateError",
    "TransactionError",
    "TransactionStateError",
    "DependencyCycleError",
    "SchedulerError",
    "WorkloadError",
    "RecoveryError",
    "InvariantViolationError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class of every exception raised by the library."""


# ---------------------------------------------------------------------------
# Object graph errors (repro.graph)
# ---------------------------------------------------------------------------

class GraphError(ReproError):
    """Base class for errors raised while building or mutating object graphs."""


class UnknownVertexError(GraphError):
    """A vertex id was used that is not present in the graph."""

    def __init__(self, vid: int) -> None:
        super().__init__(f"vertex {vid!r} is not part of this object graph")
        self.vid = vid


class DuplicateVertexError(GraphError):
    """A vertex id was inserted twice into the same graph."""

    def __init__(self, vid: int) -> None:
        super().__init__(f"vertex {vid!r} already exists in this object graph")
        self.vid = vid


class UnknownReferenceError(GraphError):
    """A named reference was dereferenced but never declared."""

    def __init__(self, name: str) -> None:
        super().__init__(f"reference {name!r} is not declared on this object")
        self.name = name


class InvalidEdgeError(GraphError):
    """An ordering edge violates the single-level restriction of Def. 8."""


# ---------------------------------------------------------------------------
# Abstract specification errors (repro.spec)
# ---------------------------------------------------------------------------

class SpecError(ReproError):
    """Base class for errors in abstract data type specifications."""


class UnknownOperationError(SpecError):
    """An operation name was looked up that the ADT does not define."""

    def __init__(self, adt: str, operation: str) -> None:
        super().__init__(f"ADT {adt!r} does not define operation {operation!r}")
        self.adt = adt
        self.operation = operation


class StateSpaceError(SpecError):
    """The bounded state enumeration was configured inconsistently."""


# ---------------------------------------------------------------------------
# Methodology errors (repro.core)
# ---------------------------------------------------------------------------

class MethodologyError(ReproError):
    """Base class for errors raised by the table-derivation pipeline."""


class InconsistentEntryError(MethodologyError):
    """A set of (dependency, condition) pairs violates mutual consistency.

    The paper (Section 4.4) requires that if two pairs involve the same type
    of localities and the first condition exploits more semantics than the
    second, the first dependency must be weaker than the second.
    """


class TemplateError(MethodologyError):
    """A template table was consulted with classes it does not cover."""


# ---------------------------------------------------------------------------
# Concurrency control errors (repro.cc)
# ---------------------------------------------------------------------------

class TransactionError(ReproError):
    """Base class for transaction-management errors."""


class TransactionStateError(TransactionError):
    """An operation was attempted in an illegal transaction state."""


class DependencyCycleError(TransactionError):
    """A cycle was found in the inter-transaction dependency graph."""


class SchedulerError(TransactionError):
    """The scheduler was driven outside its protocol."""


class WorkloadError(ReproError):
    """A workload specification is invalid."""


# ---------------------------------------------------------------------------
# Robustness errors (repro.robust)
# ---------------------------------------------------------------------------

class RecoveryError(TransactionError):
    """Decision-log replay diverged from the recorded outcomes.

    Raised when crash recovery replays the log into a fresh scheduler and
    a replayed decision disagrees with the one originally recorded — the
    log is corrupt, truncated mid-record, or the scheduler is no longer
    deterministic.
    """


class InvariantViolationError(TransactionError):
    """A monitored invariant kept failing after every degradation rung.

    The monitor only raises once the ladder is exhausted: fast paths were
    rebuilt and execution fell back to the bit-parity reference scheduler,
    and the invariant still does not hold.
    """


# ---------------------------------------------------------------------------
# Experiment errors (repro.experiments)
# ---------------------------------------------------------------------------

class ExperimentError(ReproError):
    """An experiment could not be executed or validated."""

"""repro — a reproduction of *Extracting Concurrency from Objects: A
Methodology* (Chrysanthis, Raghuram, Ramamritham; SIGMOD 1991).

The library derives semantics-based compatibility tables for abstract
data types from executable specifications, following the paper's
five-stage methodology, and puts them to work in a table-driven
transaction scheduler.  Top-level convenience re-exports cover the most
common entry points; the subpackages are:

* :mod:`repro.graph` — the object-graph model (Section 4.1),
* :mod:`repro.spec` — executable abstract specifications (Section 2),
* :mod:`repro.core` — classification, localities, templates and the
  five-stage pipeline (Sections 4-5),
* :mod:`repro.semantics` — commutativity, serial dependency,
  recoverability (Section 3),
* :mod:`repro.adts` — QStack and friends,
* :mod:`repro.cc` — transactions, scheduler, simulator,
* :mod:`repro.experiments` — reproduction of every table and figure.

Quickstart::

    from repro import QStackSpec, derive

    result = derive(QStackSpec(operations=["Push", "Pop", "Deq", "Top", "Size"]))
    print(result.final_table.render_ascii())
"""

from repro.adts import (
    AccountSpec,
    DirectorySpec,
    FifoQueueSpec,
    QStackSpec,
    SetSpec,
    StackSpec,
    make_adt,
)
from repro.core import (
    CompatibilityTable,
    Dependency,
    DerivationResult,
    Entry,
    MethodologyOptions,
    OpClass,
    OperationProfile,
    characterize_all,
    classify_operation,
    derive,
)
from repro.errors import ReproError
from repro.spec import ADTSpec, EnumerationBounds, Invocation, OperationSpec, ReturnValue

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ADTSpec",
    "OperationSpec",
    "Invocation",
    "ReturnValue",
    "EnumerationBounds",
    "QStackSpec",
    "StackSpec",
    "FifoQueueSpec",
    "SetSpec",
    "AccountSpec",
    "DirectorySpec",
    "make_adt",
    "Dependency",
    "OpClass",
    "Entry",
    "CompatibilityTable",
    "OperationProfile",
    "MethodologyOptions",
    "DerivationResult",
    "derive",
    "characterize_all",
    "classify_operation",
]

"""The shared evidence base of one derivation.

Malta & Martinez-style precomputation: instead of re-deciding every
pairwise question by fresh enumeration, build the full
``|states| x |invocations|`` execution matrix **once** and answer every
downstream judgement — classification, outcome cells, commutativity,
recoverability, replay legality — against it.  The matrix doubles as a
successor index (the state-transition relation), and histories replay by
dictionary lookup through a memo.

An :class:`EvidenceBase` is built once per
:func:`~repro.core.methodology.derive` run (and by the parallel workers,
once per process); executions it performs go through the installed
:class:`~repro.perf.cache.ExecutionCache` when one is active, so the
matrix itself is shared with any other consumer in the same process.

The matrix build is **vectorized** by default (``compiled=True``): per
invocation, the whole states column is produced by batched calls to the
``exec``-generated :class:`~repro.perf.codegen.CompiledADT` executor
over a preallocated result array —
:meth:`~repro.perf.cache.ExecutionCache.get_or_execute_batch` when a
cache is installed (two lock acquisitions per column instead of two per
cell), a straight list fill otherwise.  ``compiled=False`` keeps the
original per-pair :func:`~repro.spec.adt.execute_invocation` loop as the
reference; both are bit-identical by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from repro.graph.instrument import EdgeAttribution
from repro.spec.adt import (
    ADTSpec,
    AbstractState,
    EnumerationBounds,
    Execution,
    active_execution_cache,
    execute_invocation,
)
from repro.spec.operation import Invocation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.classification import OpClass
    from repro.core.profile import OperationProfile
    from repro.semantics.history import HistoryEvent

__all__ = ["EvidenceBase"]


class EvidenceBase:
    """Precomputed execution matrix + successor index + replay memo.

    Drop-in provider for everything the five-stage pipeline (and the
    Section-3 table builders) previously recomputed per cell:

    * ``by_operation`` — operation -> invocation -> executions over every
      enumerated state (the Stage-4 evidence shape);
    * :meth:`execute` — the memoized ``(state, invocation)`` execution,
      covering off-matrix states (post-states outside the enumerated
      fragment) as well;
    * :meth:`successor` — the state-transition relation;
    * :meth:`replay` — memoized history replay (legality + final state);
    * :meth:`commute_in_state` — the direct commutativity check with the
      shared first-leg execution reused across every partner.
    """

    def __init__(
        self,
        adt: ADTSpec,
        operations: Sequence[str] | None = None,
        bounds: EnumerationBounds | None = None,
        attribution: EdgeAttribution = EdgeAttribution.BOTH,
        compiled: bool = True,
    ) -> None:
        self.adt = adt
        self.bounds = bounds or adt.default_bounds
        self.attribution = attribution
        self.operations = (
            list(operations) if operations is not None else adt.operation_names()
        )
        self._states: list[AbstractState] = adt.state_list(self.bounds)
        #: operation -> invocation -> executions over every state
        self.by_operation: dict[str, dict[Invocation, list[Execution]]] = {}
        #: the full state x invocation matrix (grows lazily past the
        #: enumerated fragment through :meth:`execute`)
        self._matrix: dict[tuple[AbstractState, Invocation], Execution] = {}
        self._replay_memo: dict[tuple, AbstractState | None] = {}
        compiled_adt = None
        cache = None
        if compiled:
            from repro.perf.codegen import compile_adt

            compiled_adt = compile_adt(adt)
            cache = active_execution_cache()
        states = self._states
        for name in self.operations:
            per_invocation: dict[Invocation, list[Execution]] = {}
            for invocation in adt.invocations_of(name, self.bounds):
                if compiled_adt is not None:
                    executor = compiled_adt.executor(name, attribution)
                    if cache is not None:
                        executions = cache.get_or_execute_batch(
                            adt,
                            invocation,
                            attribution,
                            states,
                            lambda state, _run=executor, _inv=invocation: _run(
                                state, _inv
                            ),
                        )
                    else:
                        executions = [
                            executor(state, invocation) for state in states
                        ]
                else:
                    executions = [
                        execute_invocation(adt, state, invocation, attribution)
                        for state in states
                    ]
                for state, execution in zip(states, executions):
                    self._matrix[(state, invocation)] = execution
                per_invocation[invocation] = executions
            self.by_operation[name] = per_invocation

    # ------------------------------------------------------------------
    # The execution matrix
    # ------------------------------------------------------------------

    def execute(self, state: AbstractState, invocation: Invocation) -> Execution:
        """The (memoized) execution of ``invocation`` in ``state``."""
        key = (state, invocation)
        execution = self._matrix.get(key)
        if execution is None:
            execution = execute_invocation(
                self.adt, state, invocation, self.attribution
            )
            self._matrix[key] = execution
        return execution

    def successor(
        self, state: AbstractState, invocation: Invocation
    ) -> AbstractState:
        """The state-transition relation ``state --invocation--> state'``."""
        return self.execute(state, invocation).post_state

    def states(self) -> list[AbstractState]:
        """The enumerated states (a list; safe to iterate repeatedly)."""
        return self._states

    def matrix_size(self) -> int:
        """Entries currently held (enumerated fragment + lazy growth)."""
        return len(self._matrix)

    def invocation_pairs(
        self, executing: str, invoked: str
    ) -> Iterator[tuple[Invocation, Invocation]]:
        for first in self.by_operation[executing]:
            for second in self.by_operation[invoked]:
                yield first, second

    # ------------------------------------------------------------------
    # Histories
    # ------------------------------------------------------------------

    def replay(
        self, history: Sequence["HistoryEvent"], start: AbstractState
    ) -> AbstractState | None:
        """Memoized history replay (same contract as
        :func:`repro.semantics.history.replay`): the final state when every
        recorded return value matches, else ``None``."""
        events = tuple(history)
        key = (events, start)
        try:
            return self._replay_memo[key]
        except KeyError:
            pass
        state: AbstractState | None = start
        for index, event in enumerate(events):
            # Memoize every legal prefix too: replays in this library
            # overwhelmingly share prefixes (h1, h1.o2, h1.o2.h2 ...).
            execution = self.execute(state, event.invocation)
            if execution.returned != event.returned:
                state = None
                break
            state = execution.post_state
            self._replay_memo[(events[: index + 1], start)] = state
        self._replay_memo[key] = state
        return state

    def event_alphabet(self) -> set["HistoryEvent"]:
        """Every event the covered operations exhibit over the matrix."""
        from repro.semantics.history import HistoryEvent

        return {
            HistoryEvent(execution.invocation, execution.returned)
            for per_invocation in self.by_operation.values()
            for executions in per_invocation.values()
            for execution in executions
        }

    # ------------------------------------------------------------------
    # Pairwise judgements
    # ------------------------------------------------------------------

    def commute_in_state(
        self,
        state: AbstractState,
        first: Invocation,
        second: Invocation,
    ) -> bool:
        """Direct commutativity of a pair started in ``state``.

        Identical in outcome to
        :func:`repro.semantics.commutativity.commute_in_state`, but the
        four executions are matrix lookups — in particular the shared
        first legs are computed once across every partner invocation.
        """
        x_then_y_first = self.execute(state, first)
        x_then_y_second = self.execute(x_then_y_first.post_state, second)
        y_then_x_second = self.execute(state, second)
        y_then_x_first = self.execute(y_then_x_second.post_state, first)
        return (
            x_then_y_second.post_state == y_then_x_first.post_state
            and x_then_y_first.returned == y_then_x_first.returned
            and x_then_y_second.returned == y_then_x_second.returned
        )

    # ------------------------------------------------------------------
    # Stage-4 evidence queries (the former private pipeline helper)
    # ------------------------------------------------------------------

    def labels(self, operation: str) -> set[str]:
        """Outcome labels the operation ever exhibits."""
        from repro.core.classification import outcome_label

        return {
            outcome_label(execution)
            for executions in self.by_operation[operation].values()
            for execution in executions
        }

    def class_given_label(self, operation: str, label: str) -> "OpClass | None":
        """Strongest outcome-restricted class over the operation's invocations."""
        from repro.core.classification import classify_with_outcome

        classes = []
        for executions in self.by_operation[operation].values():
            restricted = classify_with_outcome(executions, label)
            if restricted is not None:
                classes.append(restricted)
        return max(classes) if classes else None

    def full_class(
        self, operation: str, profiles: Mapping[str, "OperationProfile"]
    ) -> "OpClass":
        return profiles[operation].op_class

    def serial_label_pairs(
        self, executing: str, invoked: str
    ) -> set[tuple[str, str]]:
        """Outcome-label pairs observable when ``invoked`` directly follows
        ``executing`` (the ``"serial"`` feasibility mode)."""
        from repro.core.classification import outcome_label

        pairs = set()
        for first_execs in self.by_operation[executing].values():
            for first_execution in first_execs:
                for second_inv in self.by_operation[invoked]:
                    second_execution = self.execute(
                        first_execution.post_state, second_inv
                    )
                    pairs.add(
                        (
                            outcome_label(first_execution),
                            outcome_label(second_execution),
                        )
                    )
        return pairs

"""Execution memoization — the shared foundation of :mod:`repro.perf`.

Every semantic judgement in the library (Stage-2 classification, the
Section-3 commutativity/recoverability tables, Stage-4/5 condition
validation, the simulator's shadow executions) bottoms out in
:func:`~repro.spec.adt.execute_invocation`, and the operation specs are
deterministic: the same ``(adt, state, invocation, attribution)`` always
yields the same :class:`~repro.spec.adt.Execution`.  The
:class:`ExecutionCache` exploits exactly that — a bounded LRU memo that
:func:`~repro.spec.adt.execute_invocation` consults when the cache is
*installed* (see :func:`~repro.spec.adt.install_execution_cache`), so
every call site in the library shares one evidence pool without being
rewritten.

The cached :class:`~repro.spec.adt.Execution` records are treated as
immutable by every consumer (their locality traces are only ever read or
merged into fresh traces), so sharing one record across call sites is
safe.

Hit/miss/eviction counters are exported through the existing
:class:`repro.obs.registry.MetricsRegistry` via :meth:`ExecutionCache.publish`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.spec.adt import (
    Execution,
    active_execution_cache,
    execute_uncached,
    install_execution_cache,
)

__all__ = [
    "DEFAULT_CACHE_MAXSIZE",
    "CacheStats",
    "ExecutionCache",
    "ensure_execution_cache",
    "execution_cache",
]

#: Default entry bound.  An entry is one ``Execution`` (a few hundred
#: bytes); the default comfortably holds the full evidence base of every
#: built-in ADT at default bounds while still bounding pathological use.
DEFAULT_CACHE_MAXSIZE = 1 << 18


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup, ``0.0`` before the first lookup."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class ExecutionCache:
    """Bounded LRU memo of :func:`~repro.spec.adt.execute_invocation`.

    Keys are ``(adt, state, invocation, attribution)`` where the ADT spec
    participates by *identity* (``ADTSpec`` instances hash by object
    identity): two instances of the same class are never conflated, so a
    parameterised spec (e.g. a QStack restricted to a subset of its
    operations) can never poison another instance's entries.

    Thread-safe: lookups and insertions run under a lock, so a cache
    installed process-wide behaves under the threaded examples exactly as
    it does single-threaded.

    ``executor`` replaces the miss handler: the compiled scheduler passes
    :func:`~repro.perf.codegen.compiled_execute` so misses run the
    ``exec``-generated per-ADT executors instead of the generic
    :func:`~repro.spec.adt.execute_uncached` path.  Both are
    bit-identical by construction, so swapping the handler never changes
    a cached value — only what a miss costs.
    """

    def __init__(
        self, maxsize: int = DEFAULT_CACHE_MAXSIZE, executor=None
    ) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be at least 1")
        self.maxsize = maxsize
        #: ``(adt, state, invocation, attribution) -> Execution`` run on
        #: a miss (default: the uncached reference path).
        self._executor = executor if executor is not None else execute_uncached
        self._entries: OrderedDict[tuple, Execution] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        #: Snapshot of the counters at the last :meth:`publish`, so
        #: repeated publishes into one registry increment by the delta.
        self._published = CacheStats()

    # ------------------------------------------------------------------
    # Core
    # ------------------------------------------------------------------

    def get_or_execute(self, adt, state, invocation, attribution) -> Execution:
        """The memoized execution of one invocation in one state."""
        key = (adt, state, invocation, attribution)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return cached
            self._misses += 1
        execution = self._executor(adt, state, invocation, attribution)
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = execution
        return execution

    def get_or_execute_batch(
        self, adt, invocation, attribution, states, compute
    ) -> list[Execution]:
        """Batched :meth:`get_or_execute` of one invocation over many states.

        The vectorized :class:`~repro.perf.evidence.EvidenceBase` build
        path: hits are collected under a single lock acquisition (instead
        of one per state), misses are computed outside the lock by
        ``compute(state)`` — typically a compiled per-operation executor
        — and inserted under a second single acquisition.  Counters and
        eviction behave exactly as per-state lookups would; the returned
        list is positionally aligned with ``states`` and canonical (cached
        records win over freshly computed ones).
        """
        results: list[Execution | None] = [None] * len(states)
        missing: list[int] = []
        entries = self._entries
        with self._lock:
            for position, state in enumerate(states):
                key = (adt, state, invocation, attribution)
                cached = entries.get(key)
                if cached is not None:
                    self._hits += 1
                    entries.move_to_end(key)
                    results[position] = cached
                else:
                    self._misses += 1
                    missing.append(position)
        for position in missing:
            results[position] = compute(states[position])
        if missing:
            with self._lock:
                for position in missing:
                    key = (adt, states[position], invocation, attribution)
                    if key not in entries and len(entries) >= self.maxsize:
                        entries.popitem(last=False)
                        self._evictions += 1
                    entries[key] = results[position]
        return results

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Chaos hooks (repro.robust fault injection)
    # ------------------------------------------------------------------

    def chaos_evict(self, count: int = 1) -> int:
        """Forcibly evict up to ``count`` LRU entries; returns how many.

        Fault-injection hook: models cache pressure/loss without touching
        the LRU bound.  Evictions are counted in the ordinary eviction
        counter so the metrics export reflects them.
        """
        evicted = 0
        with self._lock:
            while self._entries and evicted < count:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        return evicted

    def chaos_corrupt(self) -> bool:
        """Corrupt one cached entry in place; returns whether one was.

        Fault-injection hook: the most recently used entry whose
        execution actually changed state gets its ``post_state`` rolled
        back to its ``pre_state`` — a silent wrong answer that stays
        internally plausible, which is exactly what the invariant
        monitor's shadow-freshness check must catch.
        """
        from dataclasses import replace

        with self._lock:
            for key in reversed(self._entries):
                execution = self._entries[key]
                if execution.post_state != execution.pre_state:
                    self._entries[key] = replace(
                        execution, post_state=execution.pre_state
                    )
                    return True
        return False

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
            )

    def publish(self, registry, labels: dict[str, str] | None = None) -> CacheStats:
        """Export the counters through a :class:`~repro.obs.registry.MetricsRegistry`.

        Counters (``execution_cache_hits`` / ``_misses`` / ``_evictions``)
        are incremented by the delta since the previous publish into any
        registry, so periodic publishing composes with Prometheus-style
        scraping; the ``execution_cache_size`` gauge is set absolutely.
        Returns the snapshot that was published.
        """
        snapshot = self.stats()
        registry.counter(
            "execution_cache_hits",
            help="Memoized execute_invocation lookups served from cache.",
            labels=labels,
        ).inc(snapshot.hits - self._published.hits)
        registry.counter(
            "execution_cache_misses",
            help="Memoized execute_invocation lookups that executed.",
            labels=labels,
        ).inc(snapshot.misses - self._published.misses)
        registry.counter(
            "execution_cache_evictions",
            help="Cache entries evicted by the LRU bound.",
            labels=labels,
        ).inc(snapshot.evictions - self._published.evictions)
        registry.gauge(
            "execution_cache_size",
            help="Entries currently held by the execution cache.",
            labels=labels,
        ).set(snapshot.size)
        self._published = snapshot
        return snapshot


@contextmanager
def execution_cache(
    maxsize: int = DEFAULT_CACHE_MAXSIZE,
) -> Iterator[ExecutionCache]:
    """Install a fresh cache for the dynamic extent of the ``with`` block.

    The previously installed cache (if any) is restored on exit, so the
    context nests — an inner derivation gets its own cache without
    disturbing an outer one.
    """
    cache = ExecutionCache(maxsize=maxsize)
    previous = install_execution_cache(cache)
    try:
        yield cache
    finally:
        install_execution_cache(previous)


@contextmanager
def ensure_execution_cache(
    maxsize: int = DEFAULT_CACHE_MAXSIZE,
) -> Iterator[ExecutionCache]:
    """Reuse the installed cache, or install a temporary one.

    The idiom for library entry points (the semantic table builders, the
    serial-dependency search): inside a derivation they join its cache and
    contribute to its hit rate; standalone they still get memoization for
    their own internal redundancy, torn down on exit.
    """
    existing = active_execution_cache()
    if existing is not None:
        yield existing
        return
    with execution_cache(maxsize=maxsize) as cache:
        yield cache

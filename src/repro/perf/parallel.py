"""Process-level fan-out over independent operation pairs.

The ``O(|ops|^2)`` cells of a compatibility (or commutativity /
recoverability) table are mutually independent — each is a pure function
of the ADT spec and the bounds — which makes them the natural unit of
parallelism.  This module wraps :mod:`multiprocessing` behind two small
helpers with a strictly sequential fallback (``jobs <= 1`` never touches
a process pool), so parallel and sequential runs produce bit-identical
results and the library keeps working where ``fork``/``spawn`` are
unavailable or pointless.

Workers hold per-process state (an installed execution cache plus an
:class:`~repro.perf.evidence.EvidenceBase`) set up by the pool
initializer; under the ``fork`` start method the parent's already-built
state is inherited for free, under ``spawn`` each worker rebuilds it
from the pickled initializer arguments.
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

__all__ = ["resolve_jobs", "worker_pool"]


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` style request to a concrete worker count.

    ``None`` and ``0`` mean "auto": one worker per available CPU.
    Negative values are rejected; everything else passes through.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = auto), got {jobs}")
    return jobs


def _pool_context() -> multiprocessing.context.BaseContext:
    """``fork`` when available (cheap, inherits built state), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@contextmanager
def worker_pool(
    jobs: int,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[object] = (),
) -> Iterator[Callable]:
    """A pool of ``jobs`` workers, yielded as an order-preserving ``map``.

    The yielded callable has the contract of :func:`map` (results in task
    order, so table assembly and note collection are deterministic).
    Callers gate on ``jobs > 1`` themselves; asking for a one-worker pool
    is almost certainly a bug, so it is rejected loudly.
    """
    if jobs <= 1:
        raise ValueError("worker_pool requires jobs > 1; run sequentially instead")
    context = _pool_context()
    pool = context.Pool(
        processes=jobs, initializer=initializer, initargs=tuple(initargs)
    )
    try:
        yield pool.map
    finally:
        pool.close()
        pool.join()

"""Incremental shadow states for the runtime scheduler.

The scheduler's certification step asks, on every operation request and
for every other active transaction ``T``: *what would this invocation
return had ``T`` never run?*  The seed answered by replaying the whole
operation log minus ``T``'s entries from the recovery baseline — an
O(log-length) execution chain per (request, active transaction) pair, so
per-request cost grew as O(active × log) and collapsed quadratically as
histories accumulated committed entries.

The :class:`ShadowStateIndex` maintains that answer incrementally: per
shared object it tracks, per active transaction, the "log without that
transaction" replay state.  Each granted operation advances every
maintained state by exactly one (memoized) execution — O(active) per
request — and a shadow query is then a single execution against the
maintained state.

Invalidation is by **epoch**: aborts rewrite the log wholesale
(:meth:`repro.cc.objects.SharedObject.remove_transactions` erases the
aborted transactions' entries and replays the survivors), so any abort
bumps the object's epoch, which discards every maintained state in O(1);
each is rebuilt by one full replay on its next query.  Aborts are rare
relative to requests, so the amortized O(active) regime resumes
immediately after.

State transitions go through the scheduler's
:class:`~repro.perf.cache.ExecutionCache` (under ``BOTH`` edge
attribution, the same key the derivation evidence uses), so repeated
(state, invocation) steps are memoized and the ``execution_cache_*``
metrics reflect runtime traffic too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.instrument import EdgeAttribution
from repro.spec.adt import AbstractState, execute_invocation
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ReturnValue

__all__ = ["ShadowStateIndex", "ShadowStats"]


@dataclass
class ShadowStats:
    """Standalone counter sink (the scheduler passes its own stats)."""

    #: Shadow queries answered from an incrementally maintained state
    #: (each one stands in for a full log replay the seed performed).
    shadow_replays_avoided: int = 0
    #: Shadow states (re)built by a full log replay — first query for a
    #: transaction, or the first query after an epoch invalidation.
    shadow_full_replays: int = 0


@dataclass
class _ObjectIndex:
    """Per-object maintained states, all belonging to one epoch."""

    epoch: int = 0
    #: txn -> replay state of the log *without* that transaction.
    excluding: dict[int, AbstractState] = field(default_factory=dict)


class ShadowStateIndex:
    """Per-object, per-active-transaction "log minus txn" replay states.

    The index is driven by its owning scheduler:

    * :meth:`note_execute` after every granted operation — advances every
      maintained state by one execution;
    * :meth:`invalidate` after every abort rollback (and any other
      wholesale log rewrite) — bumps epochs so maintained states are
      rebuilt lazily;
    * :meth:`forget` when a transaction resolves — drops its entry (its
      shadow state can never be queried again).

    Queries (:meth:`shadow_state`, :meth:`shadow_return`) take the shared
    object so that a lazily created or invalidated entry can be rebuilt
    from the authoritative log.  The ``skip`` parameter mirrors the
    scheduler's convention of certifying an operation *after* appending
    it to the log but *before* telling the index about it: a maintained
    state never includes un-noted entries, and a rebuild must skip the
    entry under certification explicitly.

    ``stats`` is any object with ``shadow_replays_avoided`` /
    ``shadow_full_replays`` integer attributes — the scheduler passes its
    ``SchedulerStats`` so the counters flow into the metrics registry
    export unchanged.
    """

    def __init__(self, cache=None, stats=None) -> None:
        #: Optional :class:`~repro.perf.cache.ExecutionCache` consulted
        #: for every state transition.
        self.cache = cache
        self.stats = stats if stats is not None else ShadowStats()
        self._objects: dict[str, _ObjectIndex] = {}

    # ------------------------------------------------------------------
    # Maintenance (driven by the scheduler)
    # ------------------------------------------------------------------

    def register(self, name: str) -> None:
        """Start tracking a shared object."""
        self._objects[name] = _ObjectIndex()

    def note_execute(self, name: str, shared, applied) -> None:
        """Advance every maintained state past one granted operation.

        ``applied`` is the :class:`~repro.cc.objects.AppliedOperation`
        just appended to ``shared``'s log.  The executor's own shadow
        state excludes it by definition and is left untouched.
        """
        index = self._objects[name]
        invocation = applied.invocation
        for txn, state in index.excluding.items():
            if txn != applied.txn:
                index.excluding[txn] = self._execute(
                    shared, state, invocation
                ).post_state

    def invalidate(self, name: str | None = None) -> None:
        """Discard maintained states (one object, or all of them).

        Called after any abort rollback: the shared object replayed its
        log without the aborted transactions, so every maintained state
        is suspect.  The epoch bump makes the discard O(1); states are
        rebuilt by full replay on their next query.
        """
        targets = (
            self._objects.values()
            if name is None
            else (self._objects[name],)
        )
        for index in targets:
            index.epoch += 1
            index.excluding.clear()

    def forget(self, name: str, txn: int) -> None:
        """Drop a resolved transaction's maintained state."""
        index = self._objects.get(name)
        if index is not None:
            index.excluding.pop(txn, None)

    def epoch(self, name: str) -> int:
        """The object's current invalidation epoch (for tests/debugging)."""
        return self._objects[name].epoch

    def maintained(self, name: str) -> dict[int, AbstractState]:
        """A snapshot of the maintained states: ``{txn: shadow state}``.

        Audit surface for the invariant monitor's shadow-freshness check:
        every maintained state must equal a fresh "log minus txn" replay.
        The copy is shallow (states are immutable), so auditors cannot
        perturb the index.
        """
        return dict(self._objects[name].excluding)

    # ------------------------------------------------------------------
    # Queries (the scheduler's certification hot path)
    # ------------------------------------------------------------------

    def shadow_state(
        self, name: str, shared, exclude_txn: int, skip=None
    ) -> AbstractState:
        """The replay state of ``shared``'s log without ``exclude_txn``.

        ``skip`` names one log entry to ignore during a rebuild — the
        scheduler certifies an operation *after* executing it, so the
        entry under certification is already logged but must not be part
        of any shadow state yet.
        """
        index = self._objects[name]
        state = index.excluding.get(exclude_txn)
        if state is not None:
            self.stats.shadow_replays_avoided += 1
            return state
        state = self._replay_without(shared, exclude_txn, skip)
        index.excluding[exclude_txn] = state
        self.stats.shadow_full_replays += 1
        return state

    def shadow_return(
        self,
        name: str,
        shared,
        invocation: Invocation,
        exclude_txn: int,
        skip=None,
    ) -> ReturnValue:
        """What ``invocation`` would return had ``exclude_txn`` never run."""
        state = self.shadow_state(name, shared, exclude_txn, skip)
        return self._execute(shared, state, invocation).returned

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _execute(self, shared, state: AbstractState, invocation: Invocation):
        if self.cache is not None:
            return self.cache.get_or_execute(
                shared.adt, state, invocation, EdgeAttribution.BOTH
            )
        return execute_invocation(shared.adt, state, invocation)

    def _replay_without(self, shared, exclude_txn: int, skip) -> AbstractState:
        state = shared.initial_state
        for entry in shared.log():
            if entry is skip or entry.txn == exclude_txn:
                continue
            state = self._execute(shared, state, entry.invocation).post_state
        return state

"""Incremental shadow states for the runtime scheduler.

The scheduler's certification step asks, on every operation request and
for every other active transaction ``T``: *what would this invocation
return had ``T`` never run?*  The seed answered by replaying the whole
operation log minus ``T``'s entries from the recovery baseline — an
O(log-length) execution chain per (request, active transaction) pair, so
per-request cost grew as O(active × log) and collapsed quadratically as
histories accumulated committed entries.

The :class:`ShadowStateIndex` maintains that answer incrementally: per
shared object it tracks, per active transaction, the "log without that
transaction" replay state.  Each granted operation advances every
maintained state by exactly one (memoized) execution — O(active) per
request — and a shadow query is then a single execution against the
maintained state.

Invalidation is by **epoch**: aborts rewrite the log wholesale
(:meth:`repro.cc.objects.SharedObject.remove_transactions` erases the
aborted transactions' entries and replays the survivors), so any abort
bumps the object's epoch, which discards every maintained state in O(1);
each is rebuilt by one full replay on its next query.  Aborts are rare
relative to requests, so the amortized O(active) regime resumes
immediately after.

State transitions go through the scheduler's
:class:`~repro.perf.cache.ExecutionCache` (under ``BOTH`` edge
attribution, the same key the derivation evidence uses), so repeated
(state, invocation) steps are memoized and the ``execution_cache_*``
metrics reflect runtime traffic too.

With ``compiled=True`` (the compiled scheduler's setting) the index
additionally keeps a per-object **transition memo** in front of the
cache: ``invocation -> state -> Execution`` plain dicts, filled from the
cache on first use.  Executions are deterministic, so the memo is a pure
function and never needs epoch invalidation; what it saves is the
per-step lock acquisition and the repeated hashing of the same
:class:`~repro.spec.operation.Invocation` (one hash per
:meth:`note_execute` batch instead of one per maintained state).  Memo
hits are counted in ``compiled_memo_hits``; misses still flow through
the cache, so the ``execution_cache_*`` metrics stay live.  The
quarantine rung (``rebuild_fast_paths``) replaces the whole index, memo
included, exactly as it discards the cache.  Fault campaigns that poison
the cache also drop the memo (:meth:`ShadowStateIndex.chaos_drop_memo`),
so the injected corruption stays reachable under compiled dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.instrument import EdgeAttribution
from repro.spec.adt import AbstractState, execute_invocation
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ReturnValue

__all__ = ["ShadowStateIndex", "ShadowStats"]


@dataclass
class ShadowStats:
    """Standalone counter sink (the scheduler passes its own stats)."""

    #: Shadow queries answered from an incrementally maintained state
    #: (each one stands in for a full log replay the seed performed).
    shadow_replays_avoided: int = 0
    #: Shadow states (re)built by a full log replay — first query for a
    #: transaction, or the first query after an epoch invalidation.
    shadow_full_replays: int = 0
    #: State transitions served by the compiled front memo, skipping the
    #: execution cache's lock and key hashing (``compiled=True`` only).
    compiled_memo_hits: int = 0


@dataclass
class _ObjectIndex:
    """Per-object maintained states, all belonging to one epoch."""

    epoch: int = 0
    #: txn -> replay state of the log *without* that transaction.
    excluding: dict[int, AbstractState] = field(default_factory=dict)


class ShadowStateIndex:
    """Per-object, per-active-transaction "log minus txn" replay states.

    The index is driven by its owning scheduler:

    * :meth:`note_execute` after every granted operation — advances every
      maintained state by one execution;
    * :meth:`invalidate` after every abort rollback (and any other
      wholesale log rewrite) — bumps epochs so maintained states are
      rebuilt lazily;
    * :meth:`forget` when a transaction resolves — drops its entry (its
      shadow state can never be queried again).

    Queries (:meth:`shadow_state`, :meth:`shadow_return`) take the shared
    object so that a lazily created or invalidated entry can be rebuilt
    from the authoritative log.  The ``skip`` parameter mirrors the
    scheduler's convention of certifying an operation *after* appending
    it to the log but *before* telling the index about it: a maintained
    state never includes un-noted entries, and a rebuild must skip the
    entry under certification explicitly.

    ``stats`` is any object with ``shadow_replays_avoided`` /
    ``shadow_full_replays`` integer attributes — the scheduler passes its
    ``SchedulerStats`` so the counters flow into the metrics registry
    export unchanged.
    """

    def __init__(self, cache=None, stats=None, compiled: bool = False) -> None:
        #: Optional :class:`~repro.perf.cache.ExecutionCache` consulted
        #: for every state transition.
        self.cache = cache
        self.stats = stats if stats is not None else ShadowStats()
        #: Keep a per-object transition memo in front of the cache (the
        #: compiled scheduler's setting; see the module docstring).
        self.compiled = compiled
        self._objects: dict[str, _ObjectIndex] = {}
        #: object name -> invocation -> state -> Execution (compiled only).
        self._memo: dict[str, dict[Invocation, dict[AbstractState, object]]] = {}

    # ------------------------------------------------------------------
    # Maintenance (driven by the scheduler)
    # ------------------------------------------------------------------

    def register(self, name: str) -> None:
        """Start tracking a shared object."""
        self._objects[name] = _ObjectIndex()
        self._memo[name] = {}

    def note_execute(self, name: str, shared, applied) -> None:
        """Advance every maintained state past one granted operation.

        ``applied`` is the :class:`~repro.cc.objects.AppliedOperation`
        just appended to ``shared``'s log.  The executor's own shadow
        state excludes it by definition and is left untouched.
        """
        index = self._objects[name]
        invocation = applied.invocation
        excluding = index.excluding
        if self.compiled:
            # One invocation hash for the whole batch; per-state steps
            # are plain dict probes on the transition memo.
            memo = self._memo[name]
            per_invocation = memo.get(invocation)
            if per_invocation is None:
                per_invocation = memo[invocation] = {}
            stats = self.stats
            skip_txn = applied.txn
            for txn, state in excluding.items():
                if txn == skip_txn:
                    continue
                execution = per_invocation.get(state)
                if execution is None:
                    execution = self._execute(shared, state, invocation)
                    per_invocation[state] = execution
                else:
                    stats.compiled_memo_hits += 1
                excluding[txn] = execution.post_state
            return
        for txn, state in excluding.items():
            if txn != applied.txn:
                excluding[txn] = self._execute(
                    shared, state, invocation
                ).post_state

    def invalidate(self, name: str | None = None) -> None:
        """Discard maintained states (one object, or all of them).

        Called after any abort rollback: the shared object replayed its
        log without the aborted transactions, so every maintained state
        is suspect.  The epoch bump makes the discard O(1); states are
        rebuilt by full replay on their next query.
        """
        targets = (
            self._objects.values()
            if name is None
            else (self._objects[name],)
        )
        for index in targets:
            index.epoch += 1
            index.excluding.clear()

    def forget(self, name: str, txn: int) -> None:
        """Drop a resolved transaction's maintained state."""
        index = self._objects.get(name)
        if index is not None:
            index.excluding.pop(txn, None)

    def chaos_drop_memo(self) -> None:
        """Fault-injection hook: discard the compiled transition memo.

        Cache-poison faults model corruption of the memoized execution
        records; the transition memo holds the same class of record in
        front of the cache and would otherwise shield a poisoned entry
        from every future read.  Dropping it forces subsequent
        transitions back through the (possibly poisoned) cache, so the
        fault surface the robustness ladder defends is identical in both
        dispatch modes.  No-op when the memo is empty (``compiled=False``).
        """
        for per_object in self._memo.values():
            per_object.clear()

    def epoch(self, name: str) -> int:
        """The object's current invalidation epoch (for tests/debugging)."""
        return self._objects[name].epoch

    def maintained(self, name: str) -> dict[int, AbstractState]:
        """A snapshot of the maintained states: ``{txn: shadow state}``.

        Audit surface for the invariant monitor's shadow-freshness check:
        every maintained state must equal a fresh "log minus txn" replay.
        The copy is shallow (states are immutable), so auditors cannot
        perturb the index.
        """
        return dict(self._objects[name].excluding)

    # ------------------------------------------------------------------
    # Queries (the scheduler's certification hot path)
    # ------------------------------------------------------------------

    def shadow_state(
        self, name: str, shared, exclude_txn: int, skip=None
    ) -> AbstractState:
        """The replay state of ``shared``'s log without ``exclude_txn``.

        ``skip`` names one log entry to ignore during a rebuild — the
        scheduler certifies an operation *after* executing it, so the
        entry under certification is already logged but must not be part
        of any shadow state yet.
        """
        index = self._objects[name]
        state = index.excluding.get(exclude_txn)
        if state is not None:
            self.stats.shadow_replays_avoided += 1
            return state
        state = self._replay_without(shared, exclude_txn, skip)
        index.excluding[exclude_txn] = state
        self.stats.shadow_full_replays += 1
        return state

    def shadow_return(
        self,
        name: str,
        shared,
        invocation: Invocation,
        exclude_txn: int,
        skip=None,
    ) -> ReturnValue:
        """What ``invocation`` would return had ``exclude_txn`` never run."""
        state = self.shadow_state(name, shared, exclude_txn, skip)
        if self.compiled:
            return self._memo_execute(name, shared, state, invocation).returned
        return self._execute(shared, state, invocation).returned

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _execute(self, shared, state: AbstractState, invocation: Invocation):
        if self.cache is not None:
            return self.cache.get_or_execute(
                shared.adt, state, invocation, EdgeAttribution.BOTH
            )
        return execute_invocation(shared.adt, state, invocation)

    def _memo_execute(
        self, name: str, shared, state: AbstractState, invocation: Invocation
    ):
        """The transition-memo front of :meth:`_execute` (compiled only)."""
        memo = self._memo[name]
        per_invocation = memo.get(invocation)
        if per_invocation is None:
            per_invocation = memo[invocation] = {}
        execution = per_invocation.get(state)
        if execution is None:
            execution = self._execute(shared, state, invocation)
            per_invocation[state] = execution
        else:
            self.stats.compiled_memo_hits += 1
        return execution

    def _replay_without(self, shared, exclude_txn: int, skip) -> AbstractState:
        state = shared.initial_state
        for entry in shared.log():
            if entry is skip or entry.txn == exclude_txn:
                continue
            state = self._execute(shared, state, entry.invocation).post_state
        return state

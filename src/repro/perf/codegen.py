"""Registration-time compilation of the scheduler hot path.

The paper's premise is that the expensive semantic analysis happens
**once, offline**, producing tables the runtime consults cheaply.  This
module pushes the remaining per-request interpretation costs to
registration time, in two compiled artefacts:

* :class:`ConflictMatrix` — the derived
  :class:`~repro.core.table.CompatibilityTable` compiled into flat
  integer arrays over **dense operation ids**: a row-major ``bytes``
  code matrix (unconditional-ND / unconditional non-ND / conditional),
  per-row unconditional-ND bitmasks (the
  :class:`~repro.perf.flat_table.FlatTable` bitset folded into the same
  id space), and a flat tuple of the live
  :class:`~repro.core.entry.Entry` objects.  Admit/conflict decisions
  become index computations with zero string hashing; a whole peer
  transaction can be settled against one invocation by a single bitmask
  test (``mask & ~nd_row == 0``).
* :class:`CompiledADT` — per-ADT specialized executor closures,
  ``exec``'d from generated source, one function per (operation,
  attribution): graph build, argument unpacking (arity-specialized) and
  the state transition are inlined with every global prebound as a
  default argument, replacing the generic
  :func:`~repro.spec.adt.execute_uncached` dispatch chain.

Both id spaces are **local to their compiled artefact** — a
``ConflictMatrix`` numbers the operations of *its* table and a
``CompiledADT`` those of *its* spec — so two ADTs sharing operation
names can never collide (covered by ``tests/perf/test_codegen.py``).

Compiled executors are bit-identical to :func:`execute_uncached` by
construction (same statements, prebound names); the transcript-parity
property suites (``tests/property/test_compiled_parity.py`` plus the
PR 3 reference suite) enforce it end to end.  The pure-Python paths
remain the reference implementation, selected with
``TableDrivenScheduler(compiled=False)`` / ``repro simulate
--no-compiled``.  See ``docs/PERFORMANCE.md`` ("Compiled dispatch").
"""

from __future__ import annotations

import inspect
import threading
import weakref
from array import array

from repro.core.dependency import Dependency
from repro.core.entry import Entry
from repro.core.table import CompatibilityTable
from repro.graph.instrument import EdgeAttribution, InstrumentedGraph
from repro.spec.adt import ADTSpec, Execution

__all__ = [
    "ConflictMatrix",
    "CompiledADT",
    "compile_adt",
    "compiled_execute",
]


class ConflictMatrix:
    """A compatibility table compiled to integer arrays over dense op ids.

    ``codes[invoked_id * size + executing_id]`` classifies the cell:

    * :data:`ND` (0) — unconditional entry whose weakest dependency is
      ND: full-state-space forward commutativity, the fast-path cell;
    * :data:`NON_ND` (1) — unconditional entry with a CD/AD dependency;
    * :data:`CONDITIONAL` (2) — the entry carries runtime conditions.

    ``nd_rows[invoked_id]`` is the bitmask of executing ids whose cell
    is :data:`ND`, so :meth:`all_nd` settles an entire peer transaction
    (its operations OR-ed into one mask) in a single integer test.
    ``entries`` holds the live :class:`~repro.core.entry.Entry` objects
    flat at the same indices, for the slow path.

    Read-only and derived purely from the source table;
    :meth:`compile` is the only constructor.
    """

    #: Cell codes (the ``bytes`` matrix values).
    ND = 0
    NON_ND = 1
    CONDITIONAL = 2

    __slots__ = ("operations", "op_id", "size", "codes", "nd_rows", "entries")

    def __init__(
        self,
        operations: tuple[str, ...],
        codes: bytes,
        nd_rows: tuple[int, ...],
        entries: tuple[Entry, ...],
    ) -> None:
        self.operations = operations
        self.op_id = {op: i for i, op in enumerate(operations)}
        self.size = len(operations)
        self.codes = codes
        self.nd_rows = nd_rows
        self.entries = entries

    @classmethod
    def compile(cls, table: CompatibilityTable) -> "ConflictMatrix":
        """Flatten ``table``; requires a complete table (every cell set)."""
        operations = tuple(table.operations)
        size = len(operations)
        codes = array("B", bytes(size * size))
        nd_rows = [0] * size
        entries: list[Entry] = []
        for row, invoked in enumerate(operations):
            for column, executing in enumerate(operations):
                entry = table.entry(invoked, executing)
                entries.append(entry)
                if entry.is_conditional:
                    codes[row * size + column] = cls.CONDITIONAL
                elif entry.weakest() is Dependency.ND:
                    nd_rows[row] |= 1 << column
                else:
                    codes[row * size + column] = cls.NON_ND
        return cls(operations, bytes(codes), tuple(nd_rows), tuple(entries))

    def all_nd(self, invoked_id: int, executing_mask: int) -> bool:
        """Whether every executing op in ``executing_mask`` is an ND cell."""
        return not (executing_mask & ~self.nd_rows[invoked_id])

    def code(self, invoked_id: int, executing_id: int) -> int:
        """The cell code (:data:`ND` / :data:`NON_ND` / :data:`CONDITIONAL`)."""
        return self.codes[invoked_id * self.size + executing_id]

    def entry_at(self, invoked_id: int, executing_id: int) -> Entry:
        """The live entry at integer coordinates (the slow-path lookup)."""
        return self.entries[invoked_id * self.size + executing_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConflictMatrix ops={list(self.operations)}>"


#: Source template of one generated executor.  Every free name is
#: prebound as a keyword default, so the compiled body performs only
#: local loads — no globals, no attribute chains, no generic dispatch.
#: ``$UNPACK`` / ``$ARGS`` are replaced with arity-specialized argument
#: handling (``a0, a1 = invocation.args`` + ``view, a0, a1``) or the
#: star-call fallback when the operation takes variadic arguments.
_EXECUTOR_TEMPLATE = """\
def __executor(
    state,
    invocation,
    _build_graph=_build_graph,
    _frozenset=frozenset,
    _InstrumentedGraph=_InstrumentedGraph,
    _attribution=_attribution,
    _op_execute=_op_execute,
    _abstract_state=_abstract_state,
    _Execution=_Execution,
):
    graph = _build_graph(state)
    pre_simple = _frozenset(graph.simple_vertices())
    view = _InstrumentedGraph(graph, attribution=_attribution)
    $UNPACK
    returned = _op_execute($ARGS)
    return _Execution(
        pre_state=state,
        invocation=invocation,
        post_state=_abstract_state(graph),
        returned=returned,
        trace=view.trace,
        pre_simple_vertices=pre_simple,
    )
"""


def _fixed_arity(op_execute) -> int | None:
    """The operation's argument count after ``view``, or ``None`` if variadic."""
    try:
        parameters = list(inspect.signature(op_execute).parameters.values())
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return None
    for parameter in parameters:
        if parameter.kind not in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            return None
    # The first parameter is the instrumented view (``self`` is already
    # bound); the rest are the invocation arguments.
    return max(len(parameters) - 1, 0)


def _generate_executor(adt: ADTSpec, operation: str, attribution):
    """``exec`` one specialized ``(state, invocation) -> Execution`` closure."""
    op_execute = adt.operation(operation).execute
    arity = _fixed_arity(op_execute)
    if arity is None:
        unpack = "pass"
        args = "view, *invocation.args"
    elif arity == 0:
        unpack = "pass"
        args = "view"
    else:
        names = [f"_a{i}" for i in range(arity)]
        unpack = ", ".join(names) + ("," if arity == 1 else "") + " = invocation.args"
        args = "view, " + ", ".join(names)
    source = _EXECUTOR_TEMPLATE.replace("$UNPACK", unpack).replace("$ARGS", args)
    namespace = {
        "_build_graph": adt.build_graph,
        "_InstrumentedGraph": InstrumentedGraph,
        "_attribution": attribution,
        "_op_execute": op_execute,
        "_abstract_state": adt.abstract_state,
        "_Execution": Execution,
    }
    exec(  # noqa: S102 - the source is generated here, from our template
        compile(source, f"<codegen {adt.name}.{operation}>", "exec"), namespace
    )
    return namespace["__executor"]


class CompiledADT:
    """Per-ADT compiled dispatch: dense op ids + generated executors.

    Built once per spec instance by :func:`compile_adt`; executors are
    generated lazily per (operation, attribution) and memoized, so the
    one-time ``exec`` cost is paid at first use, never per request.
    """

    __slots__ = ("adt", "operations", "op_id", "_executors", "_lock")

    def __init__(self, adt: ADTSpec) -> None:
        self.adt = adt
        self.operations = tuple(adt.operation_names())
        self.op_id = {op: i for i, op in enumerate(self.operations)}
        self._executors: dict[tuple[str, object], object] = {}
        self._lock = threading.Lock()

    def executor(self, operation: str, attribution=EdgeAttribution.BOTH):
        """The compiled ``(state, invocation) -> Execution`` for one operation."""
        key = (operation, attribution)
        executor = self._executors.get(key)
        if executor is None:
            with self._lock:
                executor = self._executors.get(key)
                if executor is None:
                    executor = _generate_executor(
                        self.adt, operation, attribution
                    )
                    self._executors[key] = executor
        return executor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledADT {self.adt.name} ops={list(self.operations)}>"


#: Process-wide memo of compiled ADTs, keyed by spec *identity* (same
#: rationale as the execution cache: two instances of one spec class are
#: never conflated).  Weak keys, so a compiled ADT never outlives its
#: spec.
_COMPILED: "weakref.WeakKeyDictionary[ADTSpec, CompiledADT]" = (
    weakref.WeakKeyDictionary()
)
_COMPILED_LOCK = threading.Lock()


def compile_adt(adt: ADTSpec) -> CompiledADT:
    """The (memoized) compiled form of one ADT spec instance."""
    compiled = _COMPILED.get(adt)
    if compiled is None:
        with _COMPILED_LOCK:
            compiled = _COMPILED.get(adt)
            if compiled is None:
                compiled = CompiledADT(adt)
                _COMPILED[adt] = compiled
    return compiled


def compiled_execute(adt, state, invocation, attribution) -> Execution:
    """Drop-in for :func:`~repro.spec.adt.execute_uncached` via codegen.

    The :class:`~repro.perf.cache.ExecutionCache` miss handler the
    compiled scheduler installs: resolves the memoized
    :class:`CompiledADT` and runs the specialized executor.  Results are
    bit-identical to the uncached reference path by construction.
    """
    return compile_adt(adt).executor(invocation.operation, attribution)(
        state, invocation
    )

"""repro.perf — shared evidence base, execution memoization, parallel fan-out.

Three layers, each usable on its own:

* :mod:`repro.perf.cache` — a bounded LRU :class:`ExecutionCache` that
  :func:`~repro.spec.adt.execute_invocation` consults when installed, so
  every semantic judgement in the library shares one execution pool;
  counters export through the :mod:`repro.obs` metrics registry.
* :mod:`repro.perf.evidence` — the :class:`EvidenceBase` built once per
  derivation: the full state x invocation execution matrix, the successor
  index, memoized replay, and the Stage-4 evidence queries.
* :mod:`repro.perf.parallel` — ``multiprocessing`` fan-out over the
  independent O(n^2) operation pairs of the table builders, with a
  sequential fallback (``jobs <= 1``) that is bit-identical.
* :mod:`repro.perf.shadow` — the :class:`ShadowStateIndex` backing the
  runtime scheduler's certification hot path: per-object, per-active-
  transaction "log without that transaction" replay states, advanced
  incrementally per grant and epoch-invalidated on abort rollback.
* :mod:`repro.perf.flat_table` — :class:`FlatTable`, a compatibility
  table precompiled at object-registration time into a dict-indexed
  lookup with an unconditional-ND bitset fast path.
* :mod:`repro.perf.codegen` — registration-time compilation of the
  scheduler hot path: :class:`ConflictMatrix` (the table as flat integer
  arrays over dense operation ids) and :class:`CompiledADT`
  (``exec``-generated per-operation executor closures), with
  :func:`compiled_execute` as the execution cache's compiled miss
  handler.  The pure-Python paths above remain the reference
  (``compiled=False``).

See ``docs/PERFORMANCE.md`` for the architecture and the knobs.
"""

from repro.perf.cache import (
    DEFAULT_CACHE_MAXSIZE,
    CacheStats,
    ExecutionCache,
    ensure_execution_cache,
    execution_cache,
)
from repro.perf.codegen import (
    CompiledADT,
    ConflictMatrix,
    compile_adt,
    compiled_execute,
)
from repro.perf.evidence import EvidenceBase
from repro.perf.flat_table import FlatTable
from repro.perf.parallel import resolve_jobs, worker_pool
from repro.perf.shadow import ShadowStateIndex, ShadowStats

__all__ = [
    "DEFAULT_CACHE_MAXSIZE",
    "CacheStats",
    "CompiledADT",
    "ConflictMatrix",
    "ExecutionCache",
    "EvidenceBase",
    "FlatTable",
    "ShadowStateIndex",
    "ShadowStats",
    "compile_adt",
    "compiled_execute",
    "ensure_execution_cache",
    "execution_cache",
    "resolve_jobs",
    "worker_pool",
]

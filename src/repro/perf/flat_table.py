"""Flattened compatibility tables for the scheduler hot path.

:class:`~repro.core.table.CompatibilityTable` is the right structure for
derivation and rendering — validated access, per-cell entries, metrics —
but its :meth:`~repro.core.table.CompatibilityTable.entry` revalidates
both operation names with list scans on every lookup, and the scheduler
performs one lookup per (logged operation, request) pair.

:class:`FlatTable` precompiles a finished table once, at object
registration time, into

* a plain ``(invoked, executing) -> Entry`` dict (one hash hit per
  lookup, no validation — the compile step already proved completeness),
  and
* an **unconditional-ND bitset**: per invoked operation, an integer whose
  bit ``i`` is set when the cell against executing operation ``i`` is an
  unconditional entry whose weakest dependency is ND.  Those cells are
  full-state-space forward commutativity — the scheduler skips condition
  contexts, locality escalation and evidence bookkeeping for them, so the
  common no-conflict case costs two dict hits and a bit test.

The compiled form is read-only and derived purely from the source table;
:meth:`FlatTable.compile` is the only constructor.
"""

from __future__ import annotations

from repro.core.dependency import Dependency
from repro.core.entry import Entry
from repro.core.table import CompatibilityTable

__all__ = ["FlatTable"]


class FlatTable:
    """A read-only, dict-indexed compilation of one compatibility table."""

    __slots__ = ("operations", "_op_index", "_entries", "_nd_bits")

    def __init__(
        self,
        operations: tuple[str, ...],
        entries: dict[tuple[str, str], Entry],
        nd_bits: dict[str, int],
    ) -> None:
        self.operations = operations
        self._op_index = {op: i for i, op in enumerate(operations)}
        self._entries = entries
        self._nd_bits = nd_bits

    @classmethod
    def compile(cls, table: CompatibilityTable) -> "FlatTable":
        """Flatten ``table``; requires a complete table (every cell set)."""
        operations = tuple(table.operations)
        entries: dict[tuple[str, str], Entry] = {}
        nd_bits: dict[str, int] = {}
        for invoked in operations:
            row_bits = 0
            for column, executing in enumerate(operations):
                entry = table.entry(invoked, executing)
                entries[(invoked, executing)] = entry
                if (
                    not entry.is_conditional
                    and entry.weakest() is Dependency.ND
                ):
                    row_bits |= 1 << column
            nd_bits[invoked] = row_bits
        return cls(operations, entries, nd_bits)

    def entry(self, invoked: str, executing: str) -> Entry:
        """The entry for ``invoked`` following ``executing`` (one dict hit)."""
        return self._entries[(invoked, executing)]

    def is_unconditional_nd(self, invoked: str, executing: str) -> bool:
        """Whether the cell is an unconditional-ND (fast-path) cell."""
        return bool(self._nd_bits[invoked] >> self._op_index[executing] & 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlatTable ops={list(self.operations)}>"

"""Per-object circuit breakers: a deterministic closed/open/half-open machine.

The breaker protects a hot object from an abort storm the way the
adaptive controller protects it from a bad policy — but faster and
blunter: instead of re-tuning the discipline it stops admitting
requests to the object at all, for a bounded cooldown, then probes.

State machine (all transitions deterministic in sim-time and in the
windowed outcome sequence — no clocks, no randomness):

* **closed** — outcomes (success / failure) of finished requests whose
  primary object this is land in a rolling window of the last
  ``window`` outcomes.  Once at least ``min_requests`` outcomes are in
  the window and the failure count reaches ``failure_threshold``, the
  breaker **trips**: state moves to open and the window clears.
* **open** — every request touching the object is shed (``breaker``
  reason) until ``cooldown`` sim-time has passed since the trip.
* **half-open** — after the cooldown, up to ``probe_quota`` probe
  requests are admitted.  Any probe failure re-opens the breaker (a
  fresh cooldown); ``probe_quota`` probe successes close it.

Failures are *scheduler* aborts (certification, cascade, deadlock
victim) — the conflict/abort signal the PR 6 telemetry windows measure.
Voluntary aborts and deadline sheds are not breaker failures.

The :class:`BreakerBoard` owns one breaker per object (created lazily)
and records every transition; the serving loop drains those records
into :class:`~repro.obs.events.BreakerStateChanged` trace events and the
``ServeResult.breaker_transitions`` tuple.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import SchedulerError

__all__ = ["BreakerConfig", "BreakerTransition", "CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds of one breaker (shared by every object on a board)."""

    #: Rolling outcome window length.
    window: int = 16
    #: Windowed failures that trip a closed breaker.
    failure_threshold: int = 5
    #: Minimum windowed outcomes before the breaker may trip.
    min_requests: int = 8
    #: Sim-time an open breaker sheds before probing.
    cooldown: float = 8.0
    #: Probes admitted half-open; that many successes close the breaker.
    probe_quota: int = 2

    def __post_init__(self) -> None:
        if self.window < 1 or self.failure_threshold < 1:
            raise SchedulerError("breaker window/threshold must be >= 1")
        if self.failure_threshold > self.window:
            raise SchedulerError("failure_threshold cannot exceed window")
        if self.cooldown <= 0 or self.probe_quota < 1:
            raise SchedulerError("cooldown must be > 0 and probe_quota >= 1")


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state change of one object's breaker."""

    time: float
    object_name: str
    old: str
    new: str
    #: Windowed failure fraction at the transition (0.0 when the move
    #: was cooldown-driven rather than outcome-driven).
    failure_rate: float


class CircuitBreaker:
    """One object's breaker; driven by the board, never consulted raw."""

    __slots__ = ("config", "state", "window", "opened_at", "probes_issued",
                 "probe_successes")

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self.state = CLOSED
        self.window: deque[bool] = deque(maxlen=config.window)
        self.opened_at = 0.0
        self.probes_issued = 0
        self.probe_successes = 0

    def failure_rate(self) -> float:
        if not self.window:
            return 0.0
        return sum(1 for ok in self.window if not ok) / len(self.window)

    def _to(self, state: str, now: float) -> None:
        self.state = state
        if state == OPEN:
            self.opened_at = now
            self.window.clear()
        if state == HALF_OPEN:
            self.probes_issued = 0
            self.probe_successes = 0


class BreakerBoard:
    """Per-object breakers plus the transition log the loop drains."""

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._breakers: dict[str, CircuitBreaker] = {}
        self.transitions: list[BreakerTransition] = []
        self._fresh: list[BreakerTransition] = []

    def breaker(self, name: str) -> CircuitBreaker:
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = self._breakers[name] = CircuitBreaker(self.config)
        return breaker

    def _move(self, name: str, breaker: CircuitBreaker, state: str,
              now: float, rate: float) -> None:
        transition = BreakerTransition(
            time=now, object_name=name, old=breaker.state, new=state,
            failure_rate=rate,
        )
        breaker._to(state, now)
        self.transitions.append(transition)
        self._fresh.append(transition)

    def drain_transitions(self) -> list[BreakerTransition]:
        """Transitions recorded since the last drain (for event emission)."""
        fresh, self._fresh = self._fresh, []
        return fresh

    # -- the two consult points the loop drives ------------------------

    def allow(self, object_names, now: float) -> bool:
        """May a request touching ``object_names`` be admitted now?

        Open breakers past their cooldown move to half-open first (a
        time-driven transition that happens whether or not this request
        is then admitted).  The request is shed if *any* touched object
        refuses; probe slots are only consumed when every object admits.
        """
        probing: list[CircuitBreaker] = []
        for name in object_names:
            breaker = self._breakers.get(name)
            if breaker is None:
                continue
            if breaker.state == OPEN:
                if now < breaker.opened_at + self.config.cooldown:
                    return False
                self._move(name, breaker, HALF_OPEN, now, 0.0)
            if breaker.state == HALF_OPEN:
                if breaker.probes_issued >= self.config.probe_quota:
                    return False
                probing.append(breaker)
        for breaker in probing:
            breaker.probes_issued += 1
        return True

    def on_outcome(self, name: str, success: bool, now: float) -> None:
        """Record one finished request's outcome against its object."""
        breaker = self._breakers.get(name)
        if breaker is None:
            if success:
                return  # never create a breaker for a healthy object
            breaker = self.breaker(name)
        if breaker.state == OPEN:
            return  # a straggler from before the trip; ignore
        if breaker.state == HALF_OPEN:
            if not success:
                self._move(name, breaker, OPEN, now, 1.0)
            else:
                breaker.probe_successes += 1
                if breaker.probe_successes >= self.config.probe_quota:
                    self._move(name, breaker, CLOSED, now, 0.0)
            return
        breaker.window.append(success)
        failures = sum(1 for ok in breaker.window if not ok)
        if (
            len(breaker.window) >= self.config.min_requests
            and failures >= self.config.failure_threshold
        ):
            self._move(name, breaker, OPEN, now, breaker.failure_rate())

    def states(self) -> dict[str, str]:
        """Current state per tracked object (sorted, for reports)."""
        return {
            name: self._breakers[name].state
            for name in sorted(self._breakers)
        }

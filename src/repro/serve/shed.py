"""Admission control: the bounded arrival queue and the degradation ladder.

PR 4's :class:`~repro.robust.monitor.MonitoredScheduler` degrades a
*scheduler* in rungs (quarantine → rebuild → bit-parity reference);
this module carries the same philosophy up to the *serving* layer, where
the threat is offered load exceeding capacity rather than corrupted
state.  The ladder's rungs, driven by the due-but-unadmitted backlog:

::

    level 0  FULL           everything admitted (the queue bound still
                            applies: backlog beyond ``queue_limit``
                            drops oldest-first)
    level 1  SHED_EXPIRED   requests that cannot finish before their
                            deadline are shed at admission instead of
                            admitted to die in flight
    level 2  FORCE_QUEUED   hot objects (windowed abort rate at or above
                            ``hot_abort_rate``) are forced onto the
                            ``queued`` discipline through the loop's
                            safe-boundary switch machinery — no churn,
                            no optimism, no retry storms while shedding
    level 3  REJECT         new arrivals are rejected at admission
                            (shed ``overload``) until the backlog drains

Escalation is immediate (the target level is a pure function of the
backlog); de-escalation steps down one rung per tick and only after the
backlog has fallen ``hysteresis × queue_limit`` below the rung's engage
threshold, so the ladder cannot flap.  Every move is recorded (and
emitted as a :class:`~repro.obs.events.DegradationStep` trace event by
the loop); everything is deterministic in the backlog sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError

__all__ = ["ShedConfig", "LadderStep", "DegradationLadder", "LEVEL_NAMES"]

#: Human names of the ladder levels, index == level.
LEVEL_NAMES = ("full", "shed_expired", "force_queued", "reject")


@dataclass(frozen=True)
class ShedConfig:
    """Thresholds of the bounded queue and the degradation ladder."""

    #: Bound of the due-but-unadmitted queue; beyond it the *oldest*
    #: due request is dropped first (it has waited longest and is the
    #: least likely to meet any deadline).
    queue_limit: int = 64
    #: Backlog fraction of ``queue_limit`` that engages level 1.
    shed_level: float = 0.5
    #: Backlog fraction of ``queue_limit`` that engages level 2.
    force_queued_level: float = 0.75
    #: De-escalation margin as a fraction of ``queue_limit``.
    hysteresis: float = 0.25
    #: Windowed abort rate at which level 2 forces ``queued`` on an object.
    hot_abort_rate: float = 0.25

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise SchedulerError("queue_limit must be at least 1")
        if not 0.0 < self.shed_level <= self.force_queued_level <= 1.0:
            raise SchedulerError(
                "need 0 < shed_level <= force_queued_level <= 1"
            )
        if self.hysteresis < 0:
            raise SchedulerError("hysteresis must be non-negative")

    def engage_threshold(self, level: int) -> float:
        """Backlog at which ``level`` engages."""
        if level == 1:
            return self.shed_level * self.queue_limit
        if level == 2:
            return self.force_queued_level * self.queue_limit
        return float(self.queue_limit)


@dataclass(frozen=True)
class LadderStep:
    """One recorded ladder move."""

    time: float
    previous: int
    level: int
    backlog: int
    reason: str  #: ``backlog`` (escalation) or ``drained`` (de-escalation)


class DegradationLadder:
    """The serving-level degradation state machine."""

    def __init__(self, config: ShedConfig) -> None:
        self.config = config
        self.level = 0
        self.steps: list[LadderStep] = []
        self._fresh: list[LadderStep] = []

    def _target(self, backlog: int) -> int:
        config = self.config
        if backlog > config.queue_limit:
            return 3
        if backlog >= config.engage_threshold(2):
            return 2
        if backlog >= config.engage_threshold(1):
            return 1
        return 0

    def update(self, backlog: int, now: float) -> int:
        """Advance the ladder for this tick's backlog; returns the level."""
        target = self._target(backlog)
        if target > self.level:
            self._step(target, backlog, now, "backlog")
        elif target < self.level:
            margin = self.config.hysteresis * self.config.queue_limit
            floor = self.config.engage_threshold(self.level) - margin
            if backlog <= floor:
                # One rung per tick: recovery is gradual by design.
                self._step(self.level - 1, backlog, now, "drained")
        return self.level

    def _step(self, level: int, backlog: int, now: float, reason: str) -> None:
        step = LadderStep(
            time=now, previous=self.level, level=level,
            backlog=backlog, reason=reason,
        )
        self.level = level
        self.steps.append(step)
        self._fresh.append(step)

    def drain_steps(self) -> list[LadderStep]:
        """Steps recorded since the last drain (for event emission)."""
        fresh, self._fresh = self._fresh, []
        return fresh

"""The batched, event-driven serving engine.

Two retry disciplines share one engine:

* ``retry="ready"`` (the default, the performance path): an event-driven
  loop that multiplexes up to ``max_inflight`` transactions, dispatching
  **one action per runnable transaction per tick** — so admitted
  concurrency is actually exercised — and parking blocked or
  commit-waiting transactions until a **ready callback** (the
  scheduler's resolution listener) wakes them.  No busy-retry: a blocked
  operation is re-issued exactly once, after every transaction it waited
  on has resolved.
* ``retry="poll"`` (the compatibility path): a call-for-call replica of
  :func:`repro.cc.harness.drive` — snapshot round-robin, blocked
  operations re-request every turn, admission in program order — so the
  serving loop over one object produces a bit-identical
  :class:`~repro.cc.harness.Transcript`, which the parity suite asserts.

Either way the loop runs on its own deterministic sim clock (``tick``
units per round), records per-request latency phases (end-to-end,
queue-wait, service, commit-wait) into a PR 6
:class:`~repro.obs.latency.LatencyRecorder`, and emits
:class:`~repro.obs.events.RequestArrived` /
:class:`~repro.obs.events.RequestAdmitted` trace events the dashboard's
serving section consumes.

Adaptive switching: an attached
:class:`~repro.serve.adaptive.AdaptiveController` proposes per-object
policy changes; the loop *parks* not-yet-admitted requests touching a
proposed object (in-flight holders run to completion), applies the
switch at the first safe epoch boundary — no active transaction on the
object — and then releases the parked requests under the new policy.
Throughput is reported in **sim-time** (committed operations per tick
unit): deterministic, machine-independent, and exactly what batching
improves — one tick serves up to ``max_inflight`` operations instead of
one.

Overload and fault hardening (all opt-in, ready mode only):

* ``deadline`` (:class:`~repro.serve.deadline.DeadlinePolicy`) gives
  every request an absolute sim-time budget, enforced at admission, on
  every in-flight transaction once per tick, on every retry, and —
  propagated through the backend into the bus envelopes and 2PC legs —
  at every message delivery.  Expiry is its own terminal outcome
  (``deadline_exceeded``), shed and never silently retried.
* ``breakers`` (:class:`~repro.serve.breaker.BreakerBoard`) sheds
  requests touching an object whose windowed abort rate tripped its
  circuit breaker, with a deterministic open → half-open → closed probe
  cycle.
* ``shedding`` (:class:`~repro.serve.shed.ShedConfig`) bounds the
  arrival queue (oldest-first drop) and runs the serving degradation
  ladder: full → shed over-deadline work → force ``queued`` on hot
  objects → reject at admission.
* ``fault_plan`` injects scheduler-level faults (spurious aborts,
  transient op failures, commit delays) into the serving path; cluster
  backends additionally serve over message faults and crash/recovery
  via :meth:`~repro.dist.cluster.ClusterFrontend.tick_boundary`, which
  the loop drives once per tick.

Every admitted request reaches exactly one terminal outcome —
``committed``, ``aborted``, ``shed``, ``deadline_exceeded`` or
``retries_exhausted`` — recorded in ``ServeResult.outcomes``.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.cc.harness import Transcript
from repro.errors import SchedulerError
from repro.obs.events import (
    BreakerStateChanged,
    DeadlineExceeded,
    DegradationStep,
    FaultInjected,
    PolicySwitched,
    RequestAdmitted,
    RequestArrived,
    RequestShed,
)
from repro.obs.latency import LatencyRecorder
from repro.serve.adaptive import PolicySwitch
from repro.serve.breaker import BreakerBoard, BreakerConfig
from repro.serve.deadline import DeadlinePolicy, RetryPolicy
from repro.serve.shed import DegradationLadder, ShedConfig
from repro.serve.workload import Request, ServeWorkload

__all__ = ["ServeResult", "ServingLoop", "serve"]


@dataclass(frozen=True)
class ServeResult:
    """The observable outcome of one serving run."""

    requests: int
    committed: int
    aborted: int
    #: Operations executed by transactions that went on to commit (the
    #: goodput numerator; an aborted request's work is lost).
    goodput_ops: int
    #: Operation requests issued, including blocked retries.
    ops_issued: int
    #: Sim-time of the last completion (the throughput denominator).
    sim_duration: float
    wall_seconds: float
    ticks: int
    #: Safety-net wakeups of every waiter after a zero-progress tick
    #: (0 in a correct run: cycles resolve inside the scheduler).
    forced_wakes: int
    #: Re-admissions of scheduler-aborted requests (``retry_aborts``).
    retries: int
    policy_switches: tuple[PolicySwitch, ...]
    latency: LatencyRecorder
    #: Requests shed at admission (overload drops, ladder rejections,
    #: open circuit breakers).
    shed: int = 0
    #: Requests whose deadline budget expired (at admission, in flight,
    #: or on a retry that could not start inside the budget).
    deadline_exceeded: int = 0
    #: Requests dropped after ``max_retries`` failed re-admissions.
    retries_exhausted: int = 0
    #: Every circuit-breaker state change, in occurrence order.
    breaker_transitions: tuple = ()
    #: Every degradation-ladder move, in occurrence order.
    degradation_steps: tuple = ()
    #: ``(request_id, terminal outcome)`` sorted by request id (ready
    #: mode; empty in poll mode).
    outcomes: tuple = ()
    #: drive()-shaped transcript (poll mode over one object), else None.
    transcript: Transcript | None = None

    def goodput_per_time(self) -> float:
        """Committed operations per sim-time unit."""
        return self.goodput_ops / self.sim_duration if self.sim_duration else 0.0

    def committed_per_time(self) -> float:
        """Committed requests per sim-time unit."""
        return self.committed / self.sim_duration if self.sim_duration else 0.0


class _Runner:
    """One in-flight request: its transaction and progress."""

    __slots__ = (
        "request",
        "txn",
        "step",
        "arrival",
        "admitted_at",
        "first_commit_wait",
        "waiting",
        "queued",
        "done",
    )

    def __init__(self, request: Request, txn: int, arrival: float, now: float):
        self.request = request
        self.txn = txn
        self.step = 0
        self.arrival = arrival
        self.admitted_at = now
        self.first_commit_wait: float | None = None
        self.waiting: set[int] = set()
        self.queued = False
        self.done = False


@dataclass
class _PendingSwitch:
    object_name: str
    new_policy: str
    conflict_rate: float
    abort_rate: float
    reason: str
    parked: list = field(default_factory=list)


class ServingLoop:
    """Batched front-end over a serving backend (scheduler or cluster)."""

    def __init__(
        self,
        backend,
        workload: ServeWorkload,
        *,
        max_inflight: int = 32,
        batch_size: int | None = None,
        tick: float = 1.0,
        retry: str = "ready",
        retry_aborts: bool = False,
        max_retries: int = 8,
        controller=None,
        recorder: LatencyRecorder | None = None,
        max_ticks: int | None = None,
        deadline: DeadlinePolicy | None = None,
        retry_policy: RetryPolicy | None = None,
        breakers: BreakerBoard | BreakerConfig | None = None,
        shedding: ShedConfig | None = None,
        fault_plan=None,
    ) -> None:
        if retry not in ("ready", "poll"):
            raise SchedulerError(f"unknown retry discipline {retry!r}")
        if retry_aborts and retry == "poll":
            raise SchedulerError("retry_aborts needs the ready loop")
        if retry == "poll" and (
            deadline is not None
            or breakers is not None
            or shedding is not None
            or fault_plan is not None
        ):
            # The poll loop is the frozen drive() replica; hardening
            # would perturb its bit-identical transcript.
            raise SchedulerError(
                "deadlines, breakers, shedding and fault plans need the "
                "ready loop"
            )
        if max_inflight < 1:
            raise SchedulerError("max_inflight must be at least 1")
        self.backend = backend
        self.workload = workload
        self.max_inflight = max_inflight
        self.batch_size = batch_size if batch_size is not None else max_inflight
        self.tick = tick
        self.retry = retry
        #: At-least-once serving: a request aborted by the scheduler
        #: (certification, cascade, deadlock victim) re-enters the
        #: admission queue as a fresh transaction, staggered by the
        #: retry policy's capped exponential backoff with seeded jitter
        #: (mirroring the restart supervisor's ``max_restart_backoff``
        #: discipline) so lockstep retry collisions spread out instead
        #: of re-colliding.  After ``max_retries`` failed re-admissions
        #: the request reaches the ``retries_exhausted`` terminal
        #: outcome — the bound that keeps an optimistic retry storm
        #: from livelocking the loop.  Voluntary aborts are intentional
        #: and never retried; a retry that could not start before the
        #: request's deadline is ``deadline_exceeded``, never silently
        #: requeued.
        self.retry_aborts = retry_aborts
        self.max_retries = max_retries
        self.controller = controller
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self.max_ticks = (
            max_ticks
            if max_ticks is not None
            else 1000 * max(1, workload.total_operations())
        )
        self.deadline = deadline
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        if isinstance(breakers, BreakerConfig):
            breakers = BreakerBoard(breakers)
        self.breakers = breakers
        self.shedding = shedding
        self.fault_plan = fault_plan
        self.switches: list[PolicySwitch] = []
        self._pending_switch: dict[str, _PendingSwitch] = {}
        #: request_id -> every transaction begun for it (ready mode);
        #: the chaos campaign certifies shed/expired requests against
        #: committed history through this map.
        self.request_txns: dict[int, list[int]] = {}
        #: request_id -> terminal outcome (ready mode).
        self.outcomes: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self) -> ServeResult:
        started = time.perf_counter()
        if self.retry == "poll":
            result = self._run_poll()
        else:
            result = self._run_ready()
        wall = time.perf_counter() - started
        return ServeResult(
            requests=result["requests"],
            committed=result["committed"],
            aborted=result["aborted"],
            goodput_ops=result["goodput_ops"],
            ops_issued=result["ops_issued"],
            sim_duration=result["sim_duration"],
            wall_seconds=wall,
            ticks=result["ticks"],
            forced_wakes=result.get("forced_wakes", 0),
            retries=result.get("retries", 0),
            policy_switches=tuple(self.switches),
            latency=self.recorder,
            shed=result.get("shed", 0),
            deadline_exceeded=result.get("deadline_exceeded", 0),
            retries_exhausted=result.get("retries_exhausted", 0),
            breaker_transitions=tuple(result.get("breaker_transitions", ())),
            degradation_steps=tuple(result.get("degradation_steps", ())),
            outcomes=tuple(sorted(self.outcomes.items())),
            transcript=result.get("transcript"),
        )

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------

    def _note_arrival(self, request: Request, available: float) -> None:
        self.backend.emit(
            RequestArrived(
                time=available,
                request_id=request.request_id,
                session=request.session,
                object_name=request.primary_object(),
                operations=len(request.steps),
            )
        )

    def _note_admission(self, request: Request, txn: int, now: float) -> None:
        self.backend.emit(
            RequestAdmitted(time=now, request_id=request.request_id, txn=txn)
        )

    def _finish_latency(self, runner: _Runner, outcome: str, now: float) -> None:
        observe = self.recorder.observe
        observe("serve.e2e", outcome, now - runner.arrival)
        observe("serve.queue_wait", outcome, runner.admitted_at - runner.arrival)
        observe("serve.service", outcome, now - runner.admitted_at)
        if runner.first_commit_wait is not None:
            observe(
                "serve.commit_wait", outcome, now - runner.first_commit_wait
            )

    # ------------------------------------------------------------------
    # Poll mode: the drive() replica
    # ------------------------------------------------------------------

    def _run_poll(self) -> dict:
        """Snapshot round-robin with busy-retry, exactly like ``drive``.

        Arrival times are ignored (admission in request order, as the
        harness admits programs); with one registered object the
        recorded transcript is bit-identical to the one
        :func:`repro.cc.harness.drive` produces for the same workload,
        scheduler and concurrency bound.
        """
        backend = self.backend
        requests = self.workload.requests
        ops: list = []
        resolutions: list = []
        live: list[_Runner] = []
        admitted = 0
        now = 0.0
        ticks = 0
        committed = aborted = goodput = issued = 0
        last_finish = 0.0

        def admit() -> None:
            nonlocal admitted
            while admitted < len(requests) and len(live) < self.max_inflight:
                request = requests[admitted]
                self._note_arrival(request, request.arrival)
                txn = backend.begin()
                self._note_admission(request, txn, now)
                live.append(_Runner(request, txn, request.arrival, now))
                admitted += 1

        def finish(runner: _Runner, outcome: str) -> None:
            nonlocal committed, aborted, goodput, last_finish
            runner.done = True
            live.remove(runner)
            if outcome == "committed":
                committed += 1
                goodput += len(runner.request.steps)
            else:
                aborted += 1
            last_finish = now
            self._finish_latency(runner, outcome, now)

        admit()
        turns = 0
        while live:
            for runner in list(live):
                turns += 1
                if turns > self.max_ticks:
                    raise SchedulerError(
                        f"serving loop exceeded {self.max_ticks} turns; "
                        f"workload livelocked"
                    )
                txn = runner.txn
                if backend.status(txn) != "ACTIVE":
                    resolutions.append((txn, "observed-abort", ()))
                    finish(runner, "aborted")
                    continue
                if runner.step < len(runner.request.steps):
                    step = runner.request.steps[runner.step]
                    decision = backend.request(
                        txn, step.object_name, step.invocation
                    )
                    issued += 1
                    ops.append((txn, runner.step, decision))
                    if decision.executed:
                        runner.step += 1
                    elif decision.aborted:
                        finish(runner, "aborted")
                    # else: blocked — retry on the next turn.
                    continue
                if runner.request.voluntary_abort:
                    extra = backend.abort(txn, reason="voluntary")
                    resolutions.append(
                        (txn, "voluntary-abort", tuple(sorted(extra)))
                    )
                    finish(runner, "aborted")
                    continue
                decision = backend.try_commit(txn)
                if decision.committed:
                    resolutions.append((txn, "committed", ()))
                    finish(runner, "committed")
                elif decision.must_abort:
                    resolutions.append((txn, "must-abort", ()))
                    finish(runner, "aborted")
                else:
                    resolutions.append(
                        (txn, "commit-waiting", tuple(sorted(decision.waiting_on)))
                    )
            admit()
            now += self.tick
            ticks += 1
            backend.set_now(now)

        transcript = None
        if (
            len(self.workload.object_names) == 1
            and getattr(backend, "kind", "") == "scheduler"
        ):
            edges, statuses, final_state, seed_stats = backend.transcript_tail(
                admitted, self.workload.object_names[0]
            )
            transcript = Transcript(
                op_decisions=tuple(ops),
                resolutions=tuple(resolutions),
                edges=edges,
                statuses=statuses,
                final_state=final_state,
                seed_stats=seed_stats,
            )
        return {
            "requests": admitted,
            "committed": committed,
            "aborted": aborted,
            "goodput_ops": goodput,
            "ops_issued": issued,
            "sim_duration": last_finish,
            "ticks": ticks,
            "transcript": transcript,
        }

    # ------------------------------------------------------------------
    # Ready mode: event-driven with resolution callbacks
    # ------------------------------------------------------------------

    def _run_ready(self) -> dict:
        backend = self.backend
        closed = self.workload.mode == "closed"
        policy = self.deadline
        board = self.breakers
        ladder = (
            DegradationLadder(self.shedding)
            if self.shedding is not None
            else None
        )
        plan = self.fault_plan
        #: Jitter stream of the retry backoff; drawn from only when a
        #: retry is actually scheduled, so retry-free runs stay
        #: bit-identical whatever the seed.
        retry_rng = self.retry_policy.stream()
        #: request_id -> absolute deadline (anchored at first arrival;
        #: retries never extend the budget).
        deadlines: dict[int, float] = {}
        outcomes = self.outcomes
        outcomes.clear()
        request_txns = self.request_txns
        request_txns.clear()

        def note_deadline(request: Request, available: float) -> None:
            if policy is not None:
                deadlines[request.request_id] = policy.deadline_of(available)

        #: (available_time, request_id, request) — the admission queue.
        pending: list[tuple[float, int, Request]] = []
        #: Closed loop: each session's remaining requests, in order.
        session_next: dict[int, list[Request]] = {}
        if closed:
            for request in self.workload.requests:
                session_next.setdefault(request.session, []).append(request)
            for session, queue in sorted(session_next.items()):
                first = queue.pop(0)
                heapq.heappush(pending, (0.0, first.request_id, first))
                self._note_arrival(first, 0.0)
                note_deadline(first, 0.0)
        else:
            for request in self.workload.requests:
                heapq.heappush(
                    pending, (request.arrival, request.request_id, request)
                )
                self._note_arrival(request, request.arrival)
                note_deadline(request, request.arrival)

        inflight: dict[int, _Runner] = {}
        runnable: list[_Runner] = []
        #: txn -> runners whose retry waits on its resolution.
        waiters: dict[int, list[_Runner]] = {}
        now = 0.0
        ticks = 0
        forced_wakes = 0
        resolved_events = 0
        committed = aborted = goodput = issued = retries = 0
        shed = deadline_exceeded = retries_exhausted = 0
        attempts: dict[int, int] = {}
        last_finish = 0.0

        def wake(runner: _Runner) -> None:
            if not runner.queued and not runner.done:
                runner.queued = True
                runnable.append(runner)

        def on_resolution(txn: int, status: str) -> None:
            nonlocal resolved_events
            resolved_events += 1
            runner = inflight.get(txn)
            if runner is not None and not runner.done and status == "aborted":
                # Externally aborted (cascade / deadlock victim): wake it
                # so its next action observes the abort and settles.
                runner.waiting.clear()
                wake(runner)
            for waiter in waiters.pop(txn, ()):
                waiter.waiting.discard(txn)
                if not waiter.waiting:
                    wake(waiter)

        backend.add_resolution_listener(on_resolution)

        def wait_on(runner: _Runner, blockers) -> None:
            live = set()
            for blocker in sorted(blockers):
                if backend.status(blocker) == "ACTIVE":
                    live.add(blocker)
                    waiters.setdefault(blocker, []).append(runner)
            if live:
                runner.waiting = live
            else:
                # Every blocker resolved before registration (or the set
                # was empty): retry on the next tick.
                wake(runner)

        def settle_terminal(rid: int, request: Request, outcome: str) -> None:
            nonlocal last_finish
            outcomes[rid] = outcome
            last_finish = now
            if closed:
                queue = session_next.get(request.session)
                if queue:
                    nxt = queue.pop(0)
                    available = now + nxt.think_time
                    heapq.heappush(pending, (available, nxt.request_id, nxt))
                    self._note_arrival(nxt, available)
                    note_deadline(nxt, available)

        def shed_request(entry, reason: str) -> None:
            """Shed an unadmitted request terminally (never admitted)."""
            nonlocal shed, deadline_exceeded
            available, rid, request = entry
            if reason == "deadline":
                deadline_exceeded += 1
                backend.note_shed("deadline")
                backend.emit(
                    DeadlineExceeded(
                        time=now, request_id=rid, txn=-1,
                        deadline=deadlines.get(rid, 0.0),
                    )
                )
                outcome = "deadline_exceeded"
            else:
                shed += 1
                backend.note_shed(
                    "breaker" if reason == "breaker" else "overload"
                )
                backend.emit(
                    RequestShed(
                        time=now, request_id=rid, reason=reason,
                        object_name=request.primary_object(),
                    )
                )
                outcome = "shed"
            self.recorder.observe("serve.e2e", outcome, now - available)
            settle_terminal(rid, request, outcome)

        def finish(runner: _Runner, outcome: str) -> None:
            nonlocal committed, aborted, goodput, retries
            nonlocal deadline_exceeded, retries_exhausted
            runner.done = True
            runner.waiting.clear()
            inflight.pop(runner.txn, None)
            request = runner.request
            rid = request.request_id
            if board is not None and outcome in ("committed", "aborted"):
                # Breaker signal: commits and *scheduler* aborts only —
                # voluntary aborts and deadline expiry are not conflict
                # evidence.
                if outcome == "committed" or not request.voluntary_abort:
                    board.on_outcome(
                        request.primary_object(), outcome == "committed", now
                    )
            self._finish_latency(runner, outcome, now)
            if outcome == "committed":
                committed += 1
                goodput += len(request.steps)
            elif outcome == "deadline_exceeded":
                deadline_exceeded += 1
                backend.note_shed("deadline")
                backend.emit(
                    DeadlineExceeded(
                        time=now, request_id=rid, txn=runner.txn,
                        deadline=deadlines.get(rid, 0.0),
                    )
                )
            elif self.retry_aborts and not request.voluntary_abort:
                attempt = attempts.get(rid, 0) + 1
                if attempt > self.max_retries:
                    retries_exhausted += 1
                    backend.note_shed("retries")
                    backend.emit(
                        RequestShed(
                            time=now, request_id=rid,
                            reason="retries_exhausted",
                            object_name=request.primary_object(),
                        )
                    )
                    settle_terminal(rid, request, "retries_exhausted")
                    return
                # At-least-once: back into the admission queue as a
                # fresh transaction (its think-time was already spent),
                # staggered by capped exponential backoff with seeded
                # jitter.
                retry_at = now + self.retry_policy.backoff(
                    attempt, retry_rng, self.tick
                )
                dl = deadlines.get(rid)
                if dl is not None and retry_at >= dl:
                    # The retry could not start inside the budget: shed
                    # as expired, never silently requeued.
                    deadline_exceeded += 1
                    backend.note_shed("deadline")
                    backend.emit(
                        DeadlineExceeded(
                            time=now, request_id=rid, txn=-1, deadline=dl,
                        )
                    )
                    settle_terminal(rid, request, "deadline_exceeded")
                    return
                attempts[rid] = attempt
                retries += 1
                heapq.heappush(pending, (retry_at, rid, request))
                return
            else:
                aborted += 1
            settle_terminal(rid, request, outcome)

        def budget_of(runner: _Runner) -> float | None:
            if policy is None or not policy.propagate:
                return None
            return deadlines.get(runner.request.request_id)

        def act(runner: _Runner) -> None:
            nonlocal issued
            txn = runner.txn
            if backend.status(txn) != "ACTIVE":
                finish(runner, "aborted")
                return
            request = runner.request
            if runner.step < len(request.steps):
                if plan and plan.spurious_abort(txn):
                    backend.emit(
                        FaultInjected(time=now, kind="spurious_abort", txn=txn)
                    )
                    backend.abort(txn, reason="fault-injected")
                    finish(runner, "aborted")
                    return
                if plan and plan.op_failure(txn):
                    # Transient: the op is lost this tick, retried next.
                    backend.emit(
                        FaultInjected(time=now, kind="op_failure", txn=txn)
                    )
                    wake(runner)
                    return
                step = request.steps[runner.step]
                decision = backend.request(
                    txn, step.object_name, step.invocation,
                    deadline=budget_of(runner),
                )
                issued += 1
                if decision.executed:
                    runner.step += 1
                    wake(runner)
                elif decision.aborted:
                    finish(runner, "aborted")
                else:
                    wait_on(runner, decision.blocked_on)
                return
            if request.voluntary_abort:
                backend.abort(txn, reason="voluntary")
                finish(runner, "aborted")
                return
            if plan and plan.commit_delay(txn) is not None:
                backend.emit(
                    FaultInjected(time=now, kind="commit_delay", txn=txn)
                )
                wake(runner)
                return
            decision = backend.try_commit(txn, deadline=budget_of(runner))
            if decision.committed:
                finish(runner, "committed")
            elif decision.must_abort:
                finish(runner, "aborted")
            else:
                if runner.first_commit_wait is None:
                    runner.first_commit_wait = now
                wait_on(runner, decision.waiting_on)

        def parked_objects(request: Request) -> bool:
            return any(
                step.object_name in self._pending_switch
                for step in request.steps
            )

        def admit_due() -> bool:
            # Pop everything due: the backlog drives the degradation
            # ladder, and sheds must apply even when in-flight capacity
            # is full.  Entries that survive but don't fit this tick go
            # straight back into the queue.
            due: list[tuple[float, int, Request]] = []
            while pending and pending[0][0] <= now:
                due.append(heapq.heappop(pending))
            level = 0
            overflow = 0
            if ladder is not None:
                level = ladder.update(len(due), now)
                overflow = len(due) - self.shedding.queue_limit
            changed = False
            admitted_now = 0
            hold: list[tuple[float, int, Request]] = []
            for entry in due:  # heap pops: oldest (earliest due) first
                available, rid, request = entry
                if overflow > 0:
                    # The bounded arrival queue drops oldest-first: the
                    # head of `due` has waited longest and is the least
                    # likely to meet any deadline.
                    shed_request(entry, "overload")
                    overflow -= 1
                    changed = True
                    continue
                if level >= 3:
                    shed_request(entry, "overload")
                    changed = True
                    continue
                dl = deadlines.get(rid)
                if dl is not None and now >= dl:
                    shed_request(entry, "deadline")
                    changed = True
                    continue
                if (
                    level >= 1
                    and dl is not None
                    and now + len(request.steps) * self.tick > dl
                ):
                    # Level 1: work that cannot finish inside its budget
                    # is shed at admission instead of admitted to die in
                    # flight.
                    shed_request(entry, "deadline")
                    changed = True
                    continue
                if (
                    len(inflight) >= self.max_inflight
                    or admitted_now >= self.batch_size
                ):
                    hold.append(entry)
                    continue
                if self._pending_switch and parked_objects(request):
                    # A policy switch is draining one of this request's
                    # objects: hold it back until the switch applies.
                    for name in {step.object_name for step in request.steps}:
                        if name in self._pending_switch:
                            self._pending_switch[name].parked.append(
                                (available, rid, request)
                            )
                            break
                    continue
                if board is not None and not board.allow(
                    sorted({step.object_name for step in request.steps}), now
                ):
                    shed_request(entry, "breaker")
                    changed = True
                    continue
                txn = backend.begin()
                self._note_admission(request, txn, now)
                request_txns.setdefault(rid, []).append(txn)
                runner = _Runner(request, txn, available, now)
                inflight[txn] = runner
                wake(runner)
                admitted_now += 1
                changed = True
            for entry in hold:
                heapq.heappush(pending, entry)
            return changed

        def force_hot_queued() -> None:
            """Ladder level 2: pin hot objects to ``queued`` discipline.

            Routed through the pending-switch machinery, so the flip
            happens at the same safe epoch boundary an adaptive switch
            would use, with arrivals parked while it drains.
            """
            profiles = backend.conflict_profiles()
            for name in sorted(profiles):
                if name in self._pending_switch:
                    continue
                profile = profiles[name]
                if profile.abort_rate < self.shedding.hot_abort_rate:
                    continue
                if backend.object_policy(name) == "queued":
                    continue
                self._pending_switch[name] = _PendingSwitch(
                    object_name=name,
                    new_policy="queued",
                    conflict_rate=profile.conflict_rate,
                    abort_rate=profile.abort_rate,
                    reason="degradation",
                )

        def apply_ready_switches() -> None:
            for name in list(self._pending_switch):
                if backend.object_active_txns(name):
                    continue
                pending_switch = self._pending_switch.pop(name)
                old = backend.object_policy(name)
                backend.set_object_policy(name, pending_switch.new_policy)
                switch = PolicySwitch(
                    time=now,
                    object_name=name,
                    old=old,
                    new=pending_switch.new_policy,
                    conflict_rate=pending_switch.conflict_rate,
                    abort_rate=pending_switch.abort_rate,
                    reason=pending_switch.reason,
                )
                self.switches.append(switch)
                backend.emit(
                    PolicySwitched(
                        time=now,
                        object_name=name,
                        old=old,
                        new=pending_switch.new_policy,
                        conflict_rate=pending_switch.conflict_rate,
                        abort_rate=pending_switch.abort_rate,
                        reason=pending_switch.reason,
                    )
                )
                if self.controller is not None:
                    self.controller.applied(name)
                for entry in pending_switch.parked:
                    # Back into the admission queue (other pending
                    # switches may park it again on pop).
                    heapq.heappush(pending, entry)

        last_forced_resolutions = -1
        while inflight or pending or self._pending_switch:
            backend.set_now(now)
            backend.tick_boundary()
            progressed = False
            if policy is not None and inflight:
                # Kill over-budget in-flight work before spending a tick
                # on it (deterministic txn order).
                for txn in sorted(inflight):
                    runner = inflight[txn]
                    if runner.done:
                        continue
                    dl = deadlines.get(runner.request.request_id)
                    if dl is not None and now > dl:
                        if backend.status(txn) == "ACTIVE":
                            backend.abort(txn, reason="deadline")
                        finish(runner, "deadline_exceeded")
                        progressed = True
            progressed = admit_due() or progressed
            batch = [runner for runner in runnable if not runner.done]
            runnable.clear()
            for runner in batch:
                runner.queued = False
            for runner in batch:
                if not runner.done:
                    act(runner)
            progressed = progressed or bool(batch)
            if self.controller is not None:
                for proposal in self.controller.step(
                    backend, set(self._pending_switch)
                ):
                    self._pending_switch[proposal.object_name] = _PendingSwitch(
                        object_name=proposal.object_name,
                        new_policy=proposal.new_policy,
                        conflict_rate=proposal.conflict_rate,
                        abort_rate=proposal.abort_rate,
                        reason=proposal.reason,
                    )
            if ladder is not None and ladder.level >= 2:
                force_hot_queued()
            if self._pending_switch:
                apply_ready_switches()
            if board is not None:
                for transition in board.drain_transitions():
                    backend.emit(
                        BreakerStateChanged(
                            time=transition.time,
                            object_name=transition.object_name,
                            old=transition.old,
                            new=transition.new,
                            failure_rate=transition.failure_rate,
                        )
                    )
            if ladder is not None:
                for step in ladder.drain_steps():
                    backend.emit(
                        DegradationStep(
                            time=step.time,
                            level=step.level,
                            previous=step.previous,
                            backlog=step.backlog,
                            reason=step.reason,
                        )
                    )
            ticks += 1
            if ticks > self.max_ticks:
                raise SchedulerError(
                    f"serving loop exceeded {self.max_ticks} ticks; "
                    f"workload livelocked"
                )
            if progressed:
                now += self.tick
                last_forced_resolutions = -1
            elif pending and (len(inflight) < self.max_inflight or not inflight):
                # Idle until the next arrival.
                now = max(now + self.tick, pending[0][0])
            elif inflight:
                # Nothing runnable and nothing due: every in-flight
                # transaction is waiting.  Cycles are broken inside the
                # scheduler, so this should resolve via callbacks; the
                # forced wake is the deterministic safety net (and the
                # livelock tripwire when even that makes no progress).
                if resolved_events == last_forced_resolutions:
                    raise SchedulerError(
                        "serving loop stalled: no runnable work and a "
                        "forced wake made no progress"
                    )
                last_forced_resolutions = resolved_events
                forced_wakes += 1
                for runner in list(inflight.values()):
                    runner.waiting.clear()
                    wake(runner)
                now += self.tick
            else:
                now += self.tick
        # Settle the distributed tail (crash revival, unacked decisions,
        # incomplete aborts); a no-op on fault-free backends.
        backend.finalize()
        return {
            "requests": (
                committed + aborted + shed + deadline_exceeded
                + retries_exhausted
            ),
            "committed": committed,
            "aborted": aborted,
            "goodput_ops": goodput,
            "ops_issued": issued,
            "sim_duration": last_finish,
            "ticks": ticks,
            "forced_wakes": forced_wakes,
            "retries": retries,
            "shed": shed,
            "deadline_exceeded": deadline_exceeded,
            "retries_exhausted": retries_exhausted,
            "breaker_transitions": (
                tuple(board.transitions) if board is not None else ()
            ),
            "degradation_steps": (
                tuple(ladder.steps) if ladder is not None else ()
            ),
        }


def serve(backend, workload: ServeWorkload, **options) -> ServeResult:
    """Build a :class:`ServingLoop` and run it (the one-call front door)."""
    return ServingLoop(backend, workload, **options).run()

"""The batched, event-driven serving engine.

Two retry disciplines share one engine:

* ``retry="ready"`` (the default, the performance path): an event-driven
  loop that multiplexes up to ``max_inflight`` transactions, dispatching
  **one action per runnable transaction per tick** — so admitted
  concurrency is actually exercised — and parking blocked or
  commit-waiting transactions until a **ready callback** (the
  scheduler's resolution listener) wakes them.  No busy-retry: a blocked
  operation is re-issued exactly once, after every transaction it waited
  on has resolved.
* ``retry="poll"`` (the compatibility path): a call-for-call replica of
  :func:`repro.cc.harness.drive` — snapshot round-robin, blocked
  operations re-request every turn, admission in program order — so the
  serving loop over one object produces a bit-identical
  :class:`~repro.cc.harness.Transcript`, which the parity suite asserts.

Either way the loop runs on its own deterministic sim clock (``tick``
units per round), records per-request latency phases (end-to-end,
queue-wait, service, commit-wait) into a PR 6
:class:`~repro.obs.latency.LatencyRecorder`, and emits
:class:`~repro.obs.events.RequestArrived` /
:class:`~repro.obs.events.RequestAdmitted` trace events the dashboard's
serving section consumes.

Adaptive switching: an attached
:class:`~repro.serve.adaptive.AdaptiveController` proposes per-object
policy changes; the loop *parks* not-yet-admitted requests touching a
proposed object (in-flight holders run to completion), applies the
switch at the first safe epoch boundary — no active transaction on the
object — and then releases the parked requests under the new policy.
Throughput is reported in **sim-time** (committed operations per tick
unit): deterministic, machine-independent, and exactly what batching
improves — one tick serves up to ``max_inflight`` operations instead of
one.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.cc.harness import Transcript
from repro.errors import SchedulerError
from repro.obs.events import PolicySwitched, RequestAdmitted, RequestArrived
from repro.obs.latency import LatencyRecorder
from repro.serve.adaptive import PolicySwitch
from repro.serve.workload import Request, ServeWorkload

__all__ = ["ServeResult", "ServingLoop", "serve"]


@dataclass(frozen=True)
class ServeResult:
    """The observable outcome of one serving run."""

    requests: int
    committed: int
    aborted: int
    #: Operations executed by transactions that went on to commit (the
    #: goodput numerator; an aborted request's work is lost).
    goodput_ops: int
    #: Operation requests issued, including blocked retries.
    ops_issued: int
    #: Sim-time of the last completion (the throughput denominator).
    sim_duration: float
    wall_seconds: float
    ticks: int
    #: Safety-net wakeups of every waiter after a zero-progress tick
    #: (0 in a correct run: cycles resolve inside the scheduler).
    forced_wakes: int
    #: Re-admissions of scheduler-aborted requests (``retry_aborts``).
    retries: int
    policy_switches: tuple[PolicySwitch, ...]
    latency: LatencyRecorder
    #: drive()-shaped transcript (poll mode over one object), else None.
    transcript: Transcript | None = None

    def goodput_per_time(self) -> float:
        """Committed operations per sim-time unit."""
        return self.goodput_ops / self.sim_duration if self.sim_duration else 0.0

    def committed_per_time(self) -> float:
        """Committed requests per sim-time unit."""
        return self.committed / self.sim_duration if self.sim_duration else 0.0


class _Runner:
    """One in-flight request: its transaction and progress."""

    __slots__ = (
        "request",
        "txn",
        "step",
        "arrival",
        "admitted_at",
        "first_commit_wait",
        "waiting",
        "queued",
        "done",
    )

    def __init__(self, request: Request, txn: int, arrival: float, now: float):
        self.request = request
        self.txn = txn
        self.step = 0
        self.arrival = arrival
        self.admitted_at = now
        self.first_commit_wait: float | None = None
        self.waiting: set[int] = set()
        self.queued = False
        self.done = False


@dataclass
class _PendingSwitch:
    object_name: str
    new_policy: str
    conflict_rate: float
    abort_rate: float
    reason: str
    parked: list = field(default_factory=list)


class ServingLoop:
    """Batched front-end over a serving backend (scheduler or cluster)."""

    def __init__(
        self,
        backend,
        workload: ServeWorkload,
        *,
        max_inflight: int = 32,
        batch_size: int | None = None,
        tick: float = 1.0,
        retry: str = "ready",
        retry_aborts: bool = False,
        max_retries: int = 8,
        controller=None,
        recorder: LatencyRecorder | None = None,
        max_ticks: int | None = None,
    ) -> None:
        if retry not in ("ready", "poll"):
            raise SchedulerError(f"unknown retry discipline {retry!r}")
        if retry_aborts and retry == "poll":
            raise SchedulerError("retry_aborts needs the ready loop")
        if max_inflight < 1:
            raise SchedulerError("max_inflight must be at least 1")
        self.backend = backend
        self.workload = workload
        self.max_inflight = max_inflight
        self.batch_size = batch_size if batch_size is not None else max_inflight
        self.tick = tick
        self.retry = retry
        #: At-least-once serving: a request aborted by the scheduler
        #: (certification, cascade, deadlock victim) re-enters the
        #: admission queue as a fresh transaction, with a deterministic
        #: linear backoff (attempt × tick) that staggers lockstep retry
        #: collisions.  After ``max_retries`` failed re-admissions the
        #: request is shed (counted aborted) — the bound that keeps an
        #: optimistic retry storm from livelocking the loop.  Voluntary
        #: aborts are intentional and never retried.
        self.retry_aborts = retry_aborts
        self.max_retries = max_retries
        self.controller = controller
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self.max_ticks = (
            max_ticks
            if max_ticks is not None
            else 1000 * max(1, workload.total_operations())
        )
        self.switches: list[PolicySwitch] = []
        self._pending_switch: dict[str, _PendingSwitch] = {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self) -> ServeResult:
        started = time.perf_counter()
        if self.retry == "poll":
            result = self._run_poll()
        else:
            result = self._run_ready()
        wall = time.perf_counter() - started
        return ServeResult(
            requests=result["requests"],
            committed=result["committed"],
            aborted=result["aborted"],
            goodput_ops=result["goodput_ops"],
            ops_issued=result["ops_issued"],
            sim_duration=result["sim_duration"],
            wall_seconds=wall,
            ticks=result["ticks"],
            forced_wakes=result.get("forced_wakes", 0),
            retries=result.get("retries", 0),
            policy_switches=tuple(self.switches),
            latency=self.recorder,
            transcript=result.get("transcript"),
        )

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------

    def _note_arrival(self, request: Request, available: float) -> None:
        self.backend.emit(
            RequestArrived(
                time=available,
                request_id=request.request_id,
                session=request.session,
                object_name=request.primary_object(),
                operations=len(request.steps),
            )
        )

    def _note_admission(self, request: Request, txn: int, now: float) -> None:
        self.backend.emit(
            RequestAdmitted(time=now, request_id=request.request_id, txn=txn)
        )

    def _finish_latency(self, runner: _Runner, outcome: str, now: float) -> None:
        observe = self.recorder.observe
        observe("serve.e2e", outcome, now - runner.arrival)
        observe("serve.queue_wait", outcome, runner.admitted_at - runner.arrival)
        observe("serve.service", outcome, now - runner.admitted_at)
        if runner.first_commit_wait is not None:
            observe(
                "serve.commit_wait", outcome, now - runner.first_commit_wait
            )

    # ------------------------------------------------------------------
    # Poll mode: the drive() replica
    # ------------------------------------------------------------------

    def _run_poll(self) -> dict:
        """Snapshot round-robin with busy-retry, exactly like ``drive``.

        Arrival times are ignored (admission in request order, as the
        harness admits programs); with one registered object the
        recorded transcript is bit-identical to the one
        :func:`repro.cc.harness.drive` produces for the same workload,
        scheduler and concurrency bound.
        """
        backend = self.backend
        requests = self.workload.requests
        ops: list = []
        resolutions: list = []
        live: list[_Runner] = []
        admitted = 0
        now = 0.0
        ticks = 0
        committed = aborted = goodput = issued = 0
        last_finish = 0.0

        def admit() -> None:
            nonlocal admitted
            while admitted < len(requests) and len(live) < self.max_inflight:
                request = requests[admitted]
                self._note_arrival(request, request.arrival)
                txn = backend.begin()
                self._note_admission(request, txn, now)
                live.append(_Runner(request, txn, request.arrival, now))
                admitted += 1

        def finish(runner: _Runner, outcome: str) -> None:
            nonlocal committed, aborted, goodput, last_finish
            runner.done = True
            live.remove(runner)
            if outcome == "committed":
                committed += 1
                goodput += len(runner.request.steps)
            else:
                aborted += 1
            last_finish = now
            self._finish_latency(runner, outcome, now)

        admit()
        turns = 0
        while live:
            for runner in list(live):
                turns += 1
                if turns > self.max_ticks:
                    raise SchedulerError(
                        f"serving loop exceeded {self.max_ticks} turns; "
                        f"workload livelocked"
                    )
                txn = runner.txn
                if backend.status(txn) != "ACTIVE":
                    resolutions.append((txn, "observed-abort", ()))
                    finish(runner, "aborted")
                    continue
                if runner.step < len(runner.request.steps):
                    step = runner.request.steps[runner.step]
                    decision = backend.request(
                        txn, step.object_name, step.invocation
                    )
                    issued += 1
                    ops.append((txn, runner.step, decision))
                    if decision.executed:
                        runner.step += 1
                    elif decision.aborted:
                        finish(runner, "aborted")
                    # else: blocked — retry on the next turn.
                    continue
                if runner.request.voluntary_abort:
                    extra = backend.abort(txn, reason="voluntary")
                    resolutions.append(
                        (txn, "voluntary-abort", tuple(sorted(extra)))
                    )
                    finish(runner, "aborted")
                    continue
                decision = backend.try_commit(txn)
                if decision.committed:
                    resolutions.append((txn, "committed", ()))
                    finish(runner, "committed")
                elif decision.must_abort:
                    resolutions.append((txn, "must-abort", ()))
                    finish(runner, "aborted")
                else:
                    resolutions.append(
                        (txn, "commit-waiting", tuple(sorted(decision.waiting_on)))
                    )
            admit()
            now += self.tick
            ticks += 1
            backend.set_now(now)

        transcript = None
        if (
            len(self.workload.object_names) == 1
            and getattr(backend, "kind", "") == "scheduler"
        ):
            edges, statuses, final_state, seed_stats = backend.transcript_tail(
                admitted, self.workload.object_names[0]
            )
            transcript = Transcript(
                op_decisions=tuple(ops),
                resolutions=tuple(resolutions),
                edges=edges,
                statuses=statuses,
                final_state=final_state,
                seed_stats=seed_stats,
            )
        return {
            "requests": admitted,
            "committed": committed,
            "aborted": aborted,
            "goodput_ops": goodput,
            "ops_issued": issued,
            "sim_duration": last_finish,
            "ticks": ticks,
            "transcript": transcript,
        }

    # ------------------------------------------------------------------
    # Ready mode: event-driven with resolution callbacks
    # ------------------------------------------------------------------

    def _run_ready(self) -> dict:
        backend = self.backend
        closed = self.workload.mode == "closed"
        #: (available_time, request_id, request) — the admission queue.
        pending: list[tuple[float, int, Request]] = []
        #: Closed loop: each session's remaining requests, in order.
        session_next: dict[int, list[Request]] = {}
        if closed:
            for request in self.workload.requests:
                session_next.setdefault(request.session, []).append(request)
            for session, queue in sorted(session_next.items()):
                first = queue.pop(0)
                heapq.heappush(pending, (0.0, first.request_id, first))
                self._note_arrival(first, 0.0)
        else:
            for request in self.workload.requests:
                heapq.heappush(
                    pending, (request.arrival, request.request_id, request)
                )
                self._note_arrival(request, request.arrival)

        inflight: dict[int, _Runner] = {}
        runnable: list[_Runner] = []
        #: txn -> runners whose retry waits on its resolution.
        waiters: dict[int, list[_Runner]] = {}
        now = 0.0
        ticks = 0
        forced_wakes = 0
        resolved_events = 0
        committed = aborted = goodput = issued = retries = 0
        attempts: dict[int, int] = {}
        last_finish = 0.0

        def wake(runner: _Runner) -> None:
            if not runner.queued and not runner.done:
                runner.queued = True
                runnable.append(runner)

        def on_resolution(txn: int, status: str) -> None:
            nonlocal resolved_events
            resolved_events += 1
            runner = inflight.get(txn)
            if runner is not None and not runner.done and status == "aborted":
                # Externally aborted (cascade / deadlock victim): wake it
                # so its next action observes the abort and settles.
                runner.waiting.clear()
                wake(runner)
            for waiter in waiters.pop(txn, ()):
                waiter.waiting.discard(txn)
                if not waiter.waiting:
                    wake(waiter)

        backend.add_resolution_listener(on_resolution)

        def wait_on(runner: _Runner, blockers) -> None:
            live = set()
            for blocker in sorted(blockers):
                if backend.status(blocker) == "ACTIVE":
                    live.add(blocker)
                    waiters.setdefault(blocker, []).append(runner)
            if live:
                runner.waiting = live
            else:
                # Every blocker resolved before registration (or the set
                # was empty): retry on the next tick.
                wake(runner)

        def finish(runner: _Runner, outcome: str) -> None:
            nonlocal committed, aborted, goodput, last_finish, retries
            runner.done = True
            runner.waiting.clear()
            inflight.pop(runner.txn, None)
            self._finish_latency(runner, outcome, now)
            if outcome == "committed":
                committed += 1
                goodput += len(runner.request.steps)
            elif (
                self.retry_aborts
                and not runner.request.voluntary_abort
                and attempts.get(runner.request.request_id, 0)
                < self.max_retries
            ):
                # At-least-once: back into the admission queue as a
                # fresh transaction (its think-time was already spent),
                # staggered by a linear per-attempt backoff.
                attempt = attempts.get(runner.request.request_id, 0) + 1
                attempts[runner.request.request_id] = attempt
                retries += 1
                heapq.heappush(
                    pending,
                    (
                        now + attempt * self.tick,
                        runner.request.request_id,
                        runner.request,
                    ),
                )
                return
            else:
                aborted += 1
            last_finish = now
            if closed:
                queue = session_next.get(runner.request.session)
                if queue:
                    nxt = queue.pop(0)
                    available = now + nxt.think_time
                    heapq.heappush(pending, (available, nxt.request_id, nxt))
                    self._note_arrival(nxt, available)

        def act(runner: _Runner) -> None:
            nonlocal issued
            txn = runner.txn
            if backend.status(txn) != "ACTIVE":
                finish(runner, "aborted")
                return
            request = runner.request
            if runner.step < len(request.steps):
                step = request.steps[runner.step]
                decision = backend.request(txn, step.object_name, step.invocation)
                issued += 1
                if decision.executed:
                    runner.step += 1
                    wake(runner)
                elif decision.aborted:
                    finish(runner, "aborted")
                else:
                    wait_on(runner, decision.blocked_on)
                return
            if request.voluntary_abort:
                backend.abort(txn, reason="voluntary")
                finish(runner, "aborted")
                return
            decision = backend.try_commit(txn)
            if decision.committed:
                finish(runner, "committed")
            elif decision.must_abort:
                finish(runner, "aborted")
            else:
                if runner.first_commit_wait is None:
                    runner.first_commit_wait = now
                wait_on(runner, decision.waiting_on)

        def parked_objects(request: Request) -> bool:
            return any(
                step.object_name in self._pending_switch
                for step in request.steps
            )

        def admit_due() -> bool:
            admitted_now = 0
            while (
                pending
                and pending[0][0] <= now
                and len(inflight) < self.max_inflight
                and admitted_now < self.batch_size
            ):
                available, rid, request = heapq.heappop(pending)
                if self._pending_switch and parked_objects(request):
                    # A policy switch is draining one of this request's
                    # objects: hold it back until the switch applies.
                    for name in {step.object_name for step in request.steps}:
                        if name in self._pending_switch:
                            self._pending_switch[name].parked.append(
                                (available, rid, request)
                            )
                            break
                    continue
                txn = backend.begin()
                self._note_admission(request, txn, now)
                runner = _Runner(request, txn, available, now)
                inflight[txn] = runner
                wake(runner)
                admitted_now += 1
            return admitted_now > 0

        def apply_ready_switches() -> None:
            for name in list(self._pending_switch):
                if backend.object_active_txns(name):
                    continue
                pending_switch = self._pending_switch.pop(name)
                old = backend.object_policy(name)
                backend.set_object_policy(name, pending_switch.new_policy)
                switch = PolicySwitch(
                    time=now,
                    object_name=name,
                    old=old,
                    new=pending_switch.new_policy,
                    conflict_rate=pending_switch.conflict_rate,
                    abort_rate=pending_switch.abort_rate,
                    reason=pending_switch.reason,
                )
                self.switches.append(switch)
                backend.emit(
                    PolicySwitched(
                        time=now,
                        object_name=name,
                        old=old,
                        new=pending_switch.new_policy,
                        conflict_rate=pending_switch.conflict_rate,
                        abort_rate=pending_switch.abort_rate,
                        reason=pending_switch.reason,
                    )
                )
                if self.controller is not None:
                    self.controller.applied(name)
                for entry in pending_switch.parked:
                    # Back into the admission queue (other pending
                    # switches may park it again on pop).
                    heapq.heappush(pending, entry)

        last_forced_resolutions = -1
        while inflight or pending or self._pending_switch:
            backend.set_now(now)
            progressed = admit_due()
            batch = [runner for runner in runnable if not runner.done]
            runnable.clear()
            for runner in batch:
                runner.queued = False
            for runner in batch:
                if not runner.done:
                    act(runner)
            progressed = progressed or bool(batch)
            if self.controller is not None:
                for proposal in self.controller.step(
                    backend, set(self._pending_switch)
                ):
                    self._pending_switch[proposal.object_name] = _PendingSwitch(
                        object_name=proposal.object_name,
                        new_policy=proposal.new_policy,
                        conflict_rate=proposal.conflict_rate,
                        abort_rate=proposal.abort_rate,
                        reason=proposal.reason,
                    )
            if self._pending_switch:
                apply_ready_switches()
            ticks += 1
            if ticks > self.max_ticks:
                raise SchedulerError(
                    f"serving loop exceeded {self.max_ticks} ticks; "
                    f"workload livelocked"
                )
            if progressed:
                now += self.tick
                last_forced_resolutions = -1
            elif pending and (len(inflight) < self.max_inflight or not inflight):
                # Idle until the next arrival.
                now = max(now + self.tick, pending[0][0])
            elif inflight:
                # Nothing runnable and nothing due: every in-flight
                # transaction is waiting.  Cycles are broken inside the
                # scheduler, so this should resolve via callbacks; the
                # forced wake is the deterministic safety net (and the
                # livelock tripwire when even that makes no progress).
                if resolved_events == last_forced_resolutions:
                    raise SchedulerError(
                        "serving loop stalled: no runnable work and a "
                        "forced wake made no progress"
                    )
                last_forced_resolutions = resolved_events
                forced_wakes += 1
                for runner in list(inflight.values()):
                    runner.waiting.clear()
                    wake(runner)
                now += self.tick
            else:
                now += self.tick
        return {
            "requests": committed + aborted,
            "committed": committed,
            "aborted": aborted,
            "goodput_ops": goodput,
            "ops_issued": issued,
            "sim_duration": last_finish,
            "ticks": ticks,
            "forced_wakes": forced_wakes,
            "retries": retries,
        }


def serve(backend, workload: ServeWorkload, **options) -> ServeResult:
    """Build a :class:`ServingLoop` and run it (the one-call front door)."""
    return ServingLoop(backend, workload, **options).run()

"""Serving chaos campaigns: overload plus faults against the hardened loop.

The serving analogue of :func:`repro.robust.chaos.run_chaos` and
:func:`repro.dist.chaos.run_dist_chaos`: the matrix is **ADT × backend
(bare scheduler / cluster shard counts) × load mix × seed**, and each
cell runs the fully hardened :class:`~repro.serve.loop.ServingLoop` —
deadline budgets, circuit breakers, the degradation ladder, at-least-once
retry — under one of three mixes:

* ``nominal`` — the baseline arrival rate, no faults: the goodput
  reference every degradation gate is measured against, and the proof
  that the hardening machinery is free when nothing goes wrong.
* ``overload`` — double the offered load (halved mean interarrival),
  still fault-free: the ladder and the queue bound carry the excess.
* ``overload_faults`` — double load **plus** a seeded
  :class:`~repro.robust.faults.FaultPlan`: scheduler-level faults
  (spurious aborts, transient op failures, commit delays) on the bare
  scheduler, message storms and node/coordinator crashes on the
  cluster, served over at-least-once through
  :meth:`~repro.dist.cluster.ClusterFrontend.tick_boundary`.

Two certifications per cell, folded into the report's ``passed`` gate:

1. **Graceful degradation** — committed work (``goodput_ops``) under
   ``overload_faults`` stays at or above ``goodput_floor`` (default
   50%) of the ``nominal`` cell's.
2. **No resurrection** — no request the loop shed, expired or
   retired ever appears committed: every transaction begun for such a
   request is checked against the backend's committed history, the
   cluster history is audited with
   :func:`~repro.dist.audit.audit_global`, and the bare scheduler's
   committed portion must stay serializable
   (:func:`~repro.cc.serializability.is_serializable`).

Everything is seeded and clock-free, so the report is **byte-stable**:
the same matrix produces identical JSON byte-for-byte (asserted by the
CI ``serving-chaos-smoke`` job, which runs the campaign twice and
compares).  Each cell embeds a SHA-256 digest of its outcome map, so
sub-field drift between two runs is loud.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.serializability import is_serializable
from repro.robust.faults import FaultPlan, FaultSpec

from repro.serve.backend import ClusterBackend, SchedulerBackend
from repro.serve.breaker import BreakerConfig
from repro.serve.deadline import DeadlinePolicy, RetryPolicy
from repro.serve.loop import ServingLoop
from repro.serve.shed import ShedConfig
from repro.serve.workload import ServeConfig, generate

__all__ = ["SERVING_MIXES", "run_serving_chaos"]

#: Terminal outcomes that must never appear in a committed history.
_SHED_OUTCOMES = ("shed", "deadline_exceeded", "retries_exhausted")


def SERVING_MIXES(intensity: float = 0.05) -> dict[str, dict]:
    """The standard load mixes: nominal, overload, overload + faults.

    A factory (matching :func:`repro.dist.chaos.DEFAULT_MIXES`) so every
    campaign gets fresh spec instances.  ``load`` scales the offered
    arrival rate; the fault specs are per-backend because the bare
    scheduler has no bus to storm.
    """
    return {
        "nominal": {"load": 1.0, "scheduler": None, "cluster": None},
        "overload": {"load": 2.0, "scheduler": None, "cluster": None},
        "overload_faults": {
            "load": 2.0,
            "scheduler": FaultSpec(
                spurious_abort_rate=intensity,
                op_failure_rate=intensity,
                commit_delay_rate=intensity,
            ),
            # The dist_storm mix with shorter, rarer partitions: a
            # 5.0-unit partition stalls 2PC for longer than a serving
            # deadline budget tolerates, which would measure the fault
            # plan, not the hardening.
            "cluster": FaultSpec(
                msg_drop_rate=intensity,
                msg_duplicate_rate=intensity,
                msg_delay_rate=intensity,
                msg_reorder_rate=intensity,
                partition_rate=intensity / 4,
                crash_rate=intensity / 2,
                partition_duration=2.0,
                max_partitions=2,
            ),
        },
    }


def _digest(payload) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def _spec_dict(spec: FaultSpec | None) -> dict | None:
    return None if spec is None else dataclasses.asdict(spec)


def _fault_summary(plan: FaultPlan | None) -> dict | None:
    """Counts only — the full record list would swamp the report."""
    if plan is None:
        return None
    return {
        "seed": plan.seed,
        "faults_injected": plan.stats.faults_injected,
        "faults_by_kind": dict(plan.stats.faults_by_kind),
    }


def _workload(adt, load: float, seed: int, objects: int, object_names=None):
    config = ServeConfig(
        sessions=6,
        requests_per_session=5,
        operations_per_request=2,
        mode="open",
        mean_interarrival=2.0 / load,
        objects=objects,
        zipf_s=0.9,
        seed=seed,
    )
    return generate(adt, config, object_names=object_names)


def _hardened_loop(backend, workload, seed: int, fault_plan=None) -> ServingLoop:
    """One fully hardened serving loop (every PR 9 feature on)."""
    return ServingLoop(
        backend,
        workload,
        max_inflight=8,
        retry_aborts=True,
        max_retries=4,
        deadline=DeadlinePolicy(budget=96.0),
        retry_policy=RetryPolicy(seed=seed),
        breakers=BreakerConfig(),
        shedding=ShedConfig(queue_limit=24),
        fault_plan=fault_plan,
    )


def _certify_no_resurrection(loop: ServingLoop, committed_txn) -> list[str]:
    """Shed/expired/retired requests must not appear committed anywhere."""
    violations = []
    for rid, outcome in sorted(loop.outcomes.items()):
        if outcome not in _SHED_OUTCOMES:
            continue
        for txn in loop.request_txns.get(rid, ()):
            if committed_txn(txn):
                violations.append(
                    f"request {rid} ({outcome}) committed as txn {txn}"
                )
    return violations


def _result_cell(loop: ServingLoop, result) -> dict:
    """The deterministic (wall-clock-free) slice of one serving run."""
    return {
        "requests": result.requests,
        "committed": result.committed,
        "aborted": result.aborted,
        "shed": result.shed,
        "deadline_exceeded": result.deadline_exceeded,
        "retries_exhausted": result.retries_exhausted,
        "retries": result.retries,
        "goodput_ops": result.goodput_ops,
        "sim_duration": result.sim_duration,
        "goodput_per_time": result.goodput_per_time(),
        "forced_wakes": result.forced_wakes,
        "breaker_transitions": len(result.breaker_transitions),
        "degradation_steps": len(result.degradation_steps),
        "outcomes_digest": _digest(tuple(sorted(loop.outcomes.items()))),
    }


def _scheduler_cell(adts, adt_name, mix, seed, intensity) -> tuple[dict, bool]:
    adt, table = adts[adt_name]
    scheduler = TableDrivenScheduler(policy="optimistic")
    backend = SchedulerBackend(scheduler)
    for name in ("obj0", "obj1"):
        backend.register_object(name, adt, table)
    workload = _workload(
        adt, mix["load"], seed, objects=2, object_names=("obj0", "obj1")
    )
    spec = mix["scheduler"]
    plan = None if spec is None else FaultPlan(seed, spec)
    loop = _hardened_loop(backend, workload, seed, fault_plan=plan)
    result = loop.run()

    def committed_txn(txn: int) -> bool:
        return scheduler.transaction(txn).status.name == "COMMITTED"

    violations = _certify_no_resurrection(loop, committed_txn)
    serializable = is_serializable(scheduler)
    cell = _result_cell(loop, result)
    cell["audit"] = {
        "serializable": serializable,
        "violations": violations,
    }
    cell["faults"] = _fault_summary(plan)
    return cell, serializable and not violations


def _cluster_cell(
    adts, adt_name, shards, mix, seed, intensity, replicas=1
) -> tuple[dict, bool]:
    from repro.dist.audit import audit_global
    from repro.dist.cluster import Cluster, ClusterFrontend

    adt, table = adts[adt_name]
    spec = mix["cluster"]
    plan = None if spec is None else FaultPlan(seed, spec)
    cluster = Cluster(
        adt, table, shards=shards, policy="blocking", fault_plan=plan,
        replicas=replicas,
    )
    backend = ClusterBackend(
        ClusterFrontend(cluster, allow_faults=plan is not None)
    )
    workload = _workload(
        adt, mix["load"], seed, objects=shards,
        object_names=tuple(cluster.shard_names),
    )
    loop = _hardened_loop(backend, workload, seed)
    result = loop.run()

    def committed_txn(txn: int) -> bool:
        return cluster.gstatus.get(txn) == "COMMITTED"

    violations = _certify_no_resurrection(loop, committed_txn)
    audit = audit_global(cluster)
    cell = _result_cell(loop, result)
    cell["audit"] = {
        "passed": audit.passed,
        "serializable": audit.serializable,
        "ad_cd_ok": audit.ad_cd_ok,
        "in_doubt": list(audit.in_doubt),
        "violations": list(audit.violations) + violations,
    }
    cell["faults"] = _fault_summary(plan)
    cell["dist"] = cluster.stats.to_dict()
    return cell, audit.passed and not violations


def run_serving_chaos(
    adts: dict[str, tuple],
    shard_counts: tuple[int, ...] = (1,),
    seeds: tuple[int, ...] = (1991,),
    intensity: float = 0.05,
    goodput_floor: float = 0.5,
    replicas: int = 1,
) -> dict:
    """Run the serving chaos matrix; returns the JSON-ready report.

    ``adts`` maps ADT name to ``(adt, table)``.  Backends are the bare
    scheduler plus one cluster per entry in ``shard_counts``; each runs
    all three :func:`SERVING_MIXES` per seed.  The report's ``passed``
    field gates CI: every audit clean, every shed/expired request absent
    from every committed history, and every ``overload_faults`` cell's
    committed work at or above ``goodput_floor`` of its ``nominal``
    sibling.

    ``replicas > 1`` backs each cluster shard with a replica group
    (:mod:`repro.dist.replication`): the serving loop then rides
    through crash-driven primary failover on the existing at-least-once
    retry and breaker machinery, with no serving-layer changes — the
    promoted backup takes over the deposed primary's address.  The
    degradation ladder's per-object policy switches are decision-logged
    (``kind="policy"``), so backups replay them and stay convergent.
    """
    mixes = SERVING_MIXES(intensity)
    backends = ["scheduler"] + [f"cluster{n}" for n in shard_counts]
    groups = []
    passed = True
    for adt_name in sorted(adts):
        for backend_name in backends:
            for seed in seeds:
                cells = {}
                group_ok = True
                for mix_name in sorted(mixes):
                    mix = mixes[mix_name]
                    if backend_name == "scheduler":
                        cell, ok = _scheduler_cell(
                            adts, adt_name, mix, seed, intensity
                        )
                    else:
                        shards = int(backend_name[len("cluster"):])
                        cell, ok = _cluster_cell(
                            adts, adt_name, shards, mix, seed, intensity,
                            replicas=replicas,
                        )
                    cells[mix_name] = cell
                    group_ok = group_ok and ok
                # Gate on completed work, not work-per-sim-time: the
                # fault plan's stalls (partitions, crash recovery)
                # legitimately stretch the clock, and a per-time ratio
                # would grade the plan's stall budget rather than how
                # much offered work the hardened loop still lands.
                nominal = cells["nominal"]["goodput_ops"]
                stormy = cells["overload_faults"]["goodput_ops"]
                ratio = stormy / nominal if nominal else 0.0
                degraded_ok = ratio >= goodput_floor
                group_ok = group_ok and degraded_ok
                passed = passed and group_ok
                groups.append(
                    {
                        "adt": adt_name,
                        "backend": backend_name,
                        "seed": seed,
                        "cells": cells,
                        "goodput_ratio": ratio,
                        "degraded_ok": degraded_ok,
                        "passed": group_ok,
                    }
                )
    return {
        "matrix": {
            "adts": sorted(adts),
            "backends": backends,
            "mixes": {
                name: {
                    "load": mixes[name]["load"],
                    "scheduler": _spec_dict(mixes[name]["scheduler"]),
                    "cluster": _spec_dict(mixes[name]["cluster"]),
                }
                for name in sorted(mixes)
            },
            "seeds": list(seeds),
            "intensity": intensity,
            "goodput_floor": goodput_floor,
            "replicas": replicas,
        },
        "groups": groups,
        "passed": passed,
    }

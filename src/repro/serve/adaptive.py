"""Adaptive per-object policy switching from live conflict telemetry.

The controller closes the loop the PR 6 telemetry opened: every
``check_every`` serving ticks it reads each object's
:class:`~repro.obs.conflict.ConflictProfile` and compares
``recommend()`` against the object's current discipline.  A switch is
*proposed* only after hysteresis clears:

* the same recommendation must repeat for ``confirm`` consecutive
  checks (one noisy window cannot flap the policy), and
* at least ``min_dwell`` checks must have passed since the object's
  last switch (a fresh switch gets time to show up in the rates before
  it can be reverted).

Proposals are *applied by the serving loop*, not here: the loop parks
newly admitted requests targeting the object (in-flight holders run to
completion) and flips the policy at the first **safe epoch boundary** —
no active transaction with executed operations on the object — which
:meth:`~repro.cc.scheduler.TableDrivenScheduler.set_object_policy`
enforces.  Every applied switch is recorded as a :class:`PolicySwitch`
and trace-evented as
:class:`~repro.obs.events.PolicySwitched`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PolicySwitch", "AdaptiveController"]


@dataclass(frozen=True)
class PolicySwitch:
    """One applied policy switch (the dashboard's timeline row)."""

    time: float
    object_name: str
    old: str
    new: str
    conflict_rate: float
    abort_rate: float
    reason: str = "recommendation"


@dataclass(frozen=True)
class _Proposal:
    """A confirmed recommendation waiting for its safe boundary."""

    object_name: str
    new_policy: str
    conflict_rate: float
    abort_rate: float
    reason: str


class AdaptiveController:
    """Hysteretic policy recommendations over windowed conflict rates."""

    def __init__(
        self,
        check_every: int = 8,
        confirm: int = 2,
        min_dwell: int = 4,
        min_requests: int = 8,
    ) -> None:
        if check_every < 1 or confirm < 1 or min_dwell < 0:
            raise ValueError("controller cadence parameters must be positive")
        self.check_every = check_every
        self.confirm = confirm
        self.min_dwell = min_dwell
        #: Objects with fewer lifetime requests than this are left alone
        #: — their rates are noise.
        self.min_requests = min_requests
        self._ticks = 0
        self._checks = 0
        self._streak: dict[str, tuple[str, int]] = {}
        self._last_switch_check: dict[str, int] = {}

    def step(self, backend, pending: set[str]) -> list[_Proposal]:
        """One serving tick; returns newly confirmed proposals.

        ``pending`` names objects whose earlier proposal is still
        waiting for a safe boundary — they are skipped (no re-proposal,
        no streak churn) until the loop applies or drops them.
        """
        self._ticks += 1
        if self._ticks % self.check_every:
            return []
        self._checks += 1
        proposals: list[_Proposal] = []
        for name, profile in backend.conflict_profiles().items():
            if name in pending:
                continue
            if profile.total.requests < self.min_requests:
                continue
            current = backend.object_policy(name)
            recommended = profile.recommend()
            if recommended == current:
                self._streak.pop(name, None)
                continue
            last, count = self._streak.get(name, (None, 0))
            count = count + 1 if recommended == last else 1
            self._streak[name] = (recommended, count)
            if count < self.confirm:
                continue
            since = self._checks - self._last_switch_check.get(name, -self.min_dwell)
            if since < self.min_dwell:
                continue
            proposals.append(
                _Proposal(
                    object_name=name,
                    new_policy=recommended,
                    conflict_rate=profile.conflict_rate,
                    abort_rate=profile.abort_rate,
                    reason="recommendation",
                )
            )
        return proposals

    def applied(self, object_name: str) -> None:
        """The loop applied a proposal; reset the object's hysteresis."""
        self._streak.pop(object_name, None)
        self._last_switch_check[object_name] = self._checks

"""Deadline budgets and the capped, jittered retry policy.

Two small deterministic policies the serving loop composes:

* :class:`DeadlinePolicy` — a per-request sim-time budget measured from
  the request's arrival.  The loop enforces it at three points: at
  admission (an already-expired request is shed without a transaction),
  per tick over the in-flight set (an expired runner's transaction is
  aborted and the request finishes ``deadline_exceeded``) and in the
  retry path (a retry that would land past the deadline is shed instead
  of re-queued — a deadline-exceeded request is *never* silently
  retried).  With ``propagate=True`` the absolute deadline also rides in
  every 2PC leg's bus envelope, so the cluster stops spending RPC
  attempts on work the front-end has already given up on.

* :class:`RetryPolicy` — capped exponential backoff with deterministic
  seeded jitter, replacing the unbounded linear ``attempt × tick``
  discipline.  The delay of attempt *n* is
  ``min(base · 2^(n-1), max_backoff) + U(0, jitter·base)`` where the
  uniform draw comes from a dedicated ``serve:retry:<seed>`` RNG stream
  — the same capped-exponential shape as the simulator's
  ``max_restart_backoff`` restart policy, and the same stream-isolation
  contract as the fault plan: the stream is drawn only when a retry is
  actually scheduled, so a run that never retries is bit-identical with
  any jitter setting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SchedulerError

__all__ = ["DeadlinePolicy", "RetryPolicy"]


@dataclass(frozen=True)
class DeadlinePolicy:
    """A per-request sim-time budget, measured from arrival."""

    #: Sim-time a request may spend between arrival and resolution.
    budget: float
    #: Thread the absolute deadline through 2PC legs' bus envelopes.
    propagate: bool = True

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise SchedulerError("deadline budget must be positive")

    def deadline_of(self, arrival: float) -> float:
        """The absolute sim-time deadline of a request arriving then."""
        return arrival + self.budget


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter."""

    #: Base delay unit; ``None`` = the serving loop's tick.
    base: float | None = None
    #: Hard cap on the exponential term (``max_restart_backoff`` shape).
    max_backoff: float = 16.0
    #: Jitter span as a fraction of ``base``; 0 disables the draw.
    jitter: float = 0.5
    #: Seeds the dedicated ``serve:retry:<seed>`` stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_backoff <= 0:
            raise SchedulerError("max_backoff must be positive")
        if self.jitter < 0:
            raise SchedulerError("jitter must be non-negative")

    def stream(self) -> random.Random:
        """A fresh dedicated RNG stream (one per run, drawn in order)."""
        return random.Random(f"serve:retry:{self.seed}")

    def backoff(self, attempt: int, rng: random.Random, tick: float) -> float:
        """Delay before re-admission attempt ``attempt`` (1-based)."""
        base = self.base if self.base is not None else tick
        delay = min(base * (2 ** (attempt - 1)), self.max_backoff)
        if self.jitter:
            delay += rng.random() * self.jitter * base
        return delay

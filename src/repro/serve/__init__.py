"""repro.serve: a batched, adaptive serving front-end.

The serving layer turns the one-transaction-at-a-time harness into a
high-throughput front door over the table-driven scheduler (PR 2) and
the sharded cluster (PR 5):

* :mod:`repro.serve.workload` — seeded session populations: open /
  closed loops, Zipfian hot keys, diurnal bursts; byte-stable streams.
* :mod:`repro.serve.backend` — one protocol over the bare scheduler and
  the cluster's 2PC front-end.
* :mod:`repro.serve.loop` — the event-driven batched engine: many
  in-flight transactions per tick, ready-callback wakeups instead of
  busy-retry, per-phase latency recording.
* :mod:`repro.serve.adaptive` — per-object policy switching driven by
  PR 6 conflict telemetry, applied at safe epoch boundaries.
"""

from repro.serve.adaptive import AdaptiveController, PolicySwitch
from repro.serve.backend import ClusterBackend, SchedulerBackend
from repro.serve.loop import ServeResult, ServingLoop, serve
from repro.serve.workload import (
    BurstEnvelope,
    Request,
    ServeConfig,
    ServeWorkload,
    from_cc_workload,
    generate,
    zipf_weights,
)

__all__ = [
    "AdaptiveController",
    "PolicySwitch",
    "ClusterBackend",
    "SchedulerBackend",
    "ServeResult",
    "ServingLoop",
    "serve",
    "BurstEnvelope",
    "Request",
    "ServeConfig",
    "ServeWorkload",
    "from_cc_workload",
    "generate",
    "zipf_weights",
]

"""repro.serve: a batched, adaptive serving front-end.

The serving layer turns the one-transaction-at-a-time harness into a
high-throughput front door over the table-driven scheduler (PR 2) and
the sharded cluster (PR 5):

* :mod:`repro.serve.workload` — seeded session populations: open /
  closed loops, Zipfian hot keys, diurnal bursts; byte-stable streams.
* :mod:`repro.serve.backend` — one protocol over the bare scheduler and
  the cluster's 2PC front-end.
* :mod:`repro.serve.loop` — the event-driven batched engine: many
  in-flight transactions per tick, ready-callback wakeups instead of
  busy-retry, per-phase latency recording.
* :mod:`repro.serve.adaptive` — per-object policy switching driven by
  PR 6 conflict telemetry, applied at safe epoch boundaries.
* :mod:`repro.serve.deadline` — per-request deadline budgets and the
  capped-exponential retry policy with seeded jitter.
* :mod:`repro.serve.breaker` — deterministic per-object circuit
  breakers (closed → open → half-open).
* :mod:`repro.serve.shed` — the bounded arrival queue and the serving
  degradation ladder.
* :mod:`repro.serve.chaos` — the byte-stable serving chaos campaign:
  overload plus message faults and crashes, certified by the global
  audit.
"""

from repro.serve.adaptive import AdaptiveController, PolicySwitch
from repro.serve.backend import ClusterBackend, SchedulerBackend
from repro.serve.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerTransition,
    CircuitBreaker,
)
from repro.serve.chaos import SERVING_MIXES, run_serving_chaos
from repro.serve.deadline import DeadlinePolicy, RetryPolicy
from repro.serve.loop import ServeResult, ServingLoop, serve
from repro.serve.shed import (
    LEVEL_NAMES,
    DegradationLadder,
    LadderStep,
    ShedConfig,
)
from repro.serve.workload import (
    BurstEnvelope,
    Request,
    ServeConfig,
    ServeWorkload,
    from_cc_workload,
    generate,
    zipf_weights,
)

__all__ = [
    "AdaptiveController",
    "PolicySwitch",
    "ClusterBackend",
    "SchedulerBackend",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "DeadlinePolicy",
    "RetryPolicy",
    "DegradationLadder",
    "LadderStep",
    "LEVEL_NAMES",
    "ShedConfig",
    "SERVING_MIXES",
    "run_serving_chaos",
    "ServeResult",
    "ServingLoop",
    "serve",
    "BurstEnvelope",
    "Request",
    "ServeConfig",
    "ServeWorkload",
    "from_cc_workload",
    "generate",
    "zipf_weights",
]

"""Seeded serving workloads: session populations, Zipf keys, bursts.

The harness workloads (:mod:`repro.cc.workload`) script a fixed set of
transactions; a serving front-end needs *request streams* shaped like
production load instead.  This module generates them deterministically
from a single seed:

* a population of **sessions**, each producing a stream of requests —
  **open loop** (Poisson arrivals: requests keep coming whether or not
  earlier ones finished) or **closed loop** (a session thinks for an
  exponential pause after each completion before issuing the next);
* **Zipfian object selection** — each operation picks its target object
  with probability ∝ 1/rank^s, so a skew ``s > 0`` concentrates load on
  hot keys while ``s = 0`` spreads it uniformly;
* a **diurnal burst envelope** — a sinusoidal modulation of the open-loop
  arrival rate, so benches see sustained peaks and troughs rather than a
  flat rate;
* per-ADT **operation mixes**, exactly as in the harness generator.

Every random draw comes from per-session ``random.Random`` streams keyed
``serve:<seed>:<session>``, so streams are byte-stable across runs and
platforms and independent of how many other sessions exist —
:meth:`ServeWorkload.fingerprint` hashes the full request stream and the
determinism property suite pins it.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field

from repro.cc.workload import Step, Workload
from repro.errors import WorkloadError
from repro.spec.adt import ADTSpec

__all__ = [
    "BurstEnvelope",
    "Request",
    "ServeConfig",
    "ServeWorkload",
    "generate",
    "from_cc_workload",
    "zipf_weights",
]


@dataclass(frozen=True)
class BurstEnvelope:
    """Sinusoidal arrival-rate modulation (a compressed diurnal cycle).

    The instantaneous open-loop arrival rate is multiplied by
    ``1 + amplitude * sin(2*pi*t / period)``; ``period <= 0`` disables
    the envelope (flat rate).  ``amplitude`` must stay below 1 so the
    rate never reaches zero.
    """

    period: float = 0.0
    amplitude: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise WorkloadError("burst amplitude must be within [0, 1)")

    def rate_multiplier(self, t: float) -> float:
        if self.period <= 0.0:
            return 1.0
        return 1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)


@dataclass(frozen=True)
class Request:
    """One serving request: a short transaction issued by a session.

    ``arrival`` is the absolute issue time (open loop); ``think_time``
    is the pause after the session's previous completion (closed loop —
    the serving loop computes the actual issue times).  ``steps`` are
    executed in order under one transaction, then the request commits
    (or voluntarily aborts, when ``voluntary_abort`` is set).
    """

    request_id: int
    session: int
    arrival: float
    think_time: float
    steps: tuple[Step, ...]
    voluntary_abort: bool = False

    def primary_object(self) -> str:
        """The first step's target (the dashboard's per-request label)."""
        return self.steps[0].object_name if self.steps else ""


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of the serving-workload generator.

    Attributes:
        sessions: Number of concurrent client sessions.
        requests_per_session: Requests each session issues.
        operations_per_request: Steps per request (one transaction).
        mode: ``"open"`` (Poisson arrivals) or ``"closed"`` (think time).
        mean_interarrival: Per-session mean between open-loop arrivals.
        mean_think_time: Closed-loop mean pause after each completion.
        objects: Number of shared objects load spreads over.
        zipf_s: Zipf skew exponent for object selection (0 = uniform).
        operation_mix: Relative weights per operation name (default:
            uniform over the ADT's operations).
        abort_probability: Chance a request voluntarily aborts at the end.
        burst: Open-loop arrival-rate envelope.
        seed: The single seed every stream derives from.
    """

    sessions: int = 8
    requests_per_session: int = 8
    operations_per_request: int = 2
    mode: str = "open"
    mean_interarrival: float = 1.0
    mean_think_time: float = 1.0
    objects: int = 1
    zipf_s: float = 0.0
    operation_mix: dict[str, float] = field(default_factory=dict)
    abort_probability: float = 0.0
    burst: BurstEnvelope = BurstEnvelope()
    seed: int = 1991

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise WorkloadError(f"unknown serving mode {self.mode!r}")
        if self.sessions < 1 or self.requests_per_session < 1:
            raise WorkloadError("need at least one session and one request")
        if self.operations_per_request < 1:
            raise WorkloadError("need at least one operation per request")
        if self.objects < 1:
            raise WorkloadError("need at least one object")
        if not 0.0 <= self.abort_probability <= 1.0:
            raise WorkloadError("abort_probability must be within [0, 1]")
        if self.mean_interarrival <= 0 or self.mean_think_time <= 0:
            raise WorkloadError("mean times must be positive")
        if self.zipf_s < 0:
            raise WorkloadError("zipf_s must be non-negative")


@dataclass(frozen=True)
class ServeWorkload:
    """A fully materialised request stream ready for the serving loop."""

    requests: tuple[Request, ...]
    mode: str
    object_names: tuple[str, ...]
    description: str = ""

    def total_operations(self) -> int:
        return sum(len(request.steps) for request in self.requests)

    def fingerprint(self) -> str:
        """A stable digest of the complete stream (determinism gate)."""
        digest = hashlib.sha256()
        digest.update(self.mode.encode())
        digest.update(repr(self.object_names).encode())
        for request in self.requests:
            digest.update(repr(request).encode())
        return digest.hexdigest()


def zipf_weights(count: int, s: float) -> list[float]:
    """Zipf selection weights ∝ 1/rank^s over ``count`` ranks (1-based)."""
    return [1.0 / (rank ** s) for rank in range(1, count + 1)]


def generate(
    adt: ADTSpec,
    config: ServeConfig,
    object_names: tuple[str, ...] | None = None,
) -> ServeWorkload:
    """Materialise a serving workload over one ADT's shared objects.

    ``object_names`` overrides the generated names (the sharded benches
    pass the cluster's shard names so steps route to real shards); the
    default is the harness's ``"obj"`` for one object, ``obj0..objN``
    otherwise.  Zipf rank follows list order: the first name is the
    hottest key.
    """
    if object_names is None:
        object_names = (
            ("obj",)
            if config.objects == 1
            else tuple(f"obj{i}" for i in range(config.objects))
        )
    elif len(object_names) != config.objects:
        raise WorkloadError(
            f"{len(object_names)} object names for {config.objects} objects"
        )
    mix = config.operation_mix or {
        name: 1.0 for name in adt.operation_names()
    }
    unknown = set(mix) - set(adt.operation_names())
    if unknown:
        raise WorkloadError(f"operation mix names unknown operations: {unknown}")
    operations = list(mix)
    op_weights = [mix[name] for name in operations]
    key_weights = zipf_weights(len(object_names), config.zipf_s)
    names = list(object_names)

    requests: list[Request] = []
    request_id = 0
    for session in range(config.sessions):
        rng = random.Random(f"serve:{config.seed}:{session}")
        clock = 0.0
        for _ in range(config.requests_per_session):
            if config.mode == "open":
                rate = (
                    1.0 / config.mean_interarrival
                ) * config.burst.rate_multiplier(clock)
                clock += rng.expovariate(rate)
                arrival, think = clock, 0.0
            else:
                arrival = 0.0
                think = rng.expovariate(1.0 / config.mean_think_time)
            steps = tuple(
                Step(
                    object_name=rng.choices(names, key_weights)[0],
                    invocation=rng.choice(
                        adt.invocations_of(
                            rng.choices(operations, op_weights)[0]
                        )
                    ),
                    service_time=1.0,
                )
                for _ in range(config.operations_per_request)
            )
            requests.append(
                Request(
                    request_id=request_id,
                    session=session,
                    arrival=arrival,
                    think_time=think,
                    steps=steps,
                    voluntary_abort=rng.random() < config.abort_probability,
                )
            )
            request_id += 1
    if config.mode == "open":
        # Issue order across sessions: by arrival, ties by generation
        # order.  Ids are re-assigned so admission order == id order.
        requests.sort(key=lambda r: (r.arrival, r.request_id))
        requests = [
            Request(
                request_id=index,
                session=r.session,
                arrival=r.arrival,
                think_time=r.think_time,
                steps=r.steps,
                voluntary_abort=r.voluntary_abort,
            )
            for index, r in enumerate(requests)
        ]
    return ServeWorkload(
        requests=tuple(requests),
        mode=config.mode,
        object_names=object_names,
        description=(
            f"{config.sessions} sessions x {config.requests_per_session} "
            f"requests ({config.mode} loop, zipf={config.zipf_s}, "
            f"seed {config.seed})"
        ),
    )


def from_cc_workload(
    workload: Workload, object_name: str = "obj"
) -> ServeWorkload:
    """Lift a harness :class:`~repro.cc.workload.Workload` into requests.

    Program ``i`` becomes request ``i`` of session ``i`` — the shape the
    transcript-parity suite drives through the poll-mode serving loop to
    match :func:`repro.cc.harness.drive` call for call.
    """
    requests = tuple(
        Request(
            request_id=index,
            session=index,
            arrival=program.arrival,
            think_time=0.0,
            steps=tuple(
                Step(
                    object_name=object_name,
                    invocation=step.invocation,
                    service_time=step.service_time,
                )
                for step in program.steps
            ),
            voluntary_abort=program.voluntary_abort,
        )
        for index, program in enumerate(workload.programs)
    )
    return ServeWorkload(
        requests=requests,
        mode="open",
        object_names=(object_name,),
        description=f"harness lift: {workload.description}",
    )

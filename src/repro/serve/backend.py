"""Uniform serving-loop surface over the scheduler and the cluster.

The serving loop speaks one small protocol — ``begin`` / ``status`` /
``request`` / ``try_commit`` / ``abort`` plus the adaptive-policy
introspection (``conflict_profiles`` / ``set_object_policy`` /
``object_active_txns``) and the ready-callback hook
(``add_resolution_listener``).  These adapters implement it over the
bare :class:`~repro.cc.scheduler.TableDrivenScheduler` and over a
:class:`~repro.dist.cluster.ClusterFrontend` (the batched 2PC submission
path), so every loop feature — batching, ready-callbacks, adaptive
switching, latency phases — works identically against one shard or
many.

The backends take a *pre-built* scheduler, so the serving layer inherits
whatever dispatch mode it was constructed with — by default the compiled
hot path (``TableDrivenScheduler(compiled=True)``: integer conflict
matrices and codegen executors; see ``docs/PERFORMANCE.md``, "Compiled
dispatch").  Pass ``compiled=False`` at construction to serve on the
pure-Python reference structures; decisions are bit-identical either
way.
"""

from __future__ import annotations

__all__ = ["SchedulerBackend", "ClusterBackend"]


class SchedulerBackend:
    """The serving protocol over one bare table-driven scheduler."""

    kind = "scheduler"

    def __init__(self, scheduler) -> None:
        self.scheduler = scheduler

    # -- setup ---------------------------------------------------------

    def register_object(self, name, adt, table, initial_state=None):
        return self.scheduler.register_object(name, adt, table, initial_state)

    def set_now(self, now: float) -> None:
        self.scheduler.now = now

    def emit(self, event) -> None:
        if self.scheduler.tracer:
            self.scheduler.tracer.emit(event)

    # -- transaction lifecycle ----------------------------------------

    def begin(self) -> int:
        return self.scheduler.begin()

    def status(self, txn: int) -> str:
        return self.scheduler.transaction(txn).status.name

    def request(self, txn: int, object_name: str, invocation, deadline=None):
        # A bare scheduler call is instantaneous in sim-time; deadlines
        # only matter where messages travel, so the budget is ignored.
        return self.scheduler.request(txn, object_name, invocation)

    def try_commit(self, txn: int, deadline=None):
        return self.scheduler.try_commit(txn)

    def abort(self, txn: int, reason: str = "voluntary"):
        return self.scheduler.abort(txn, reason=reason)

    # -- overload / fault hardening -----------------------------------

    has_faults = False

    def note_shed(self, kind: str) -> None:
        """Count one shed request (``overload``/``breaker``/``deadline``/``retries``)."""
        stats = self.scheduler.stats
        field = f"serve_shed_{kind}"
        setattr(stats, field, getattr(stats, field) + 1)

    def tick_boundary(self) -> None:
        """Nothing to revive or flush on a bare scheduler."""

    def finalize(self) -> None:
        """Nothing to settle on a bare scheduler."""

    # -- adaptive policy / ready callbacks ----------------------------

    def conflict_profiles(self):
        return self.scheduler.conflict_profiles()

    def object_policy(self, name: str) -> str:
        return self.scheduler.object_policy(name)

    def set_object_policy(self, name: str, policy: str) -> None:
        self.scheduler.set_object_policy(name, policy)

    def object_active_txns(self, name: str):
        return self.scheduler.object_active_txns(name)

    def add_resolution_listener(self, listener) -> None:
        self.scheduler.add_resolution_listener(listener)

    # -- transcript support (poll-mode parity) ------------------------

    def transcript_tail(self, admitted: int, object_name: str):
        """``(edges, statuses, final_state, seed_stats)`` as ``drive`` records them."""
        scheduler = self.scheduler
        edges = tuple(
            sorted(
                (pair, dependency.name)
                for pair, dependency in scheduler.dependency_graph()
                .edges()
                .items()
            )
        )
        statuses = tuple(
            (txn, scheduler.transaction(txn).status.name)
            for txn in range(admitted)
        )
        final_state = repr(scheduler.object(object_name).state())
        seed_stats = tuple(
            sorted(scheduler.stats.seed_counters().items())
        )
        return edges, statuses, final_state, seed_stats


class ClusterBackend:
    """The serving protocol over a sharded cluster's 2PC front-end.

    Wraps a :class:`~repro.dist.cluster.ClusterFrontend`; policy
    introspection routes to the owning node's scheduler per shard (each
    object lives on exactly one node), so adaptive switching works
    per-shard without any cross-node coordination — the safe-boundary
    check is local to the owner.
    """

    kind = "cluster"

    def __init__(self, frontend) -> None:
        self.frontend = frontend
        self.cluster = frontend.cluster

    def set_now(self, now: float) -> None:
        # Float the bus clock up to the serving clock (never backwards),
        # so spans, e2e latency and trace events share one timeline; RPC
        # latencies still advance the bus on top.
        bus = self.cluster.bus
        bus.now = max(bus.now, now)

    def emit(self, event) -> None:
        if self.cluster.tracer:
            self.cluster.tracer.emit(event)

    # -- transaction lifecycle ----------------------------------------

    def begin(self) -> int:
        return self.frontend.begin()

    def status(self, gtxn: int) -> str:
        return self.frontend.status(gtxn)

    def request(self, gtxn: int, object_name: str, invocation, deadline=None):
        return self.frontend.request(
            gtxn, object_name, invocation, deadline=deadline
        )

    def try_commit(self, gtxn: int, deadline=None):
        return self.frontend.try_commit(gtxn, deadline=deadline)

    def abort(self, gtxn: int, reason: str = "voluntary"):
        return self.frontend.abort(gtxn, reason=reason)

    # -- overload / fault hardening -----------------------------------

    @property
    def has_faults(self) -> bool:
        return (
            self.cluster.plan is not None
            or self.cluster.crash_schedule is not None
        )

    def note_shed(self, kind: str) -> None:
        """Count one shed request in the cluster's ``dist_*`` stats."""
        stats = self.cluster.stats
        field = f"serve_shed_{kind}"
        setattr(stats, field, getattr(stats, field) + 1)

    def tick_boundary(self) -> None:
        self.frontend.tick_boundary()

    def finalize(self) -> None:
        if self.has_faults:
            self.frontend.finalize()

    # -- adaptive policy / ready callbacks ----------------------------

    def _owner_sched(self, name: str):
        node_name = self.cluster.owner[name]
        for node in self.cluster.nodes:
            if node.name == node_name:
                return node.sched
        raise KeyError(name)

    def conflict_profiles(self):
        profiles = {}
        for node in self.cluster.nodes:
            profiles.update(node.sched.conflict_profiles())
        return {name: profiles[name] for name in sorted(profiles)}

    def object_policy(self, name: str) -> str:
        return self._owner_sched(name).object_policy(name)

    def set_object_policy(self, name: str, policy: str) -> None:
        self._owner_sched(name).set_object_policy(name, policy)

    def object_active_txns(self, name: str):
        return self._owner_sched(name).object_active_txns(name)

    def add_resolution_listener(self, listener) -> None:
        self.frontend.add_resolution_listener(listener)

"""Deterministic closed-loop driver shared by parity tests and benchmarks.

The discrete-event simulator (:mod:`repro.cc.simulator`) owns the
clock-driven experiments; this harness is its deterministic, zero-clock
sibling.  It drives a scripted :class:`~repro.cc.workload.Workload`
through any scheduler exposing the ``begin`` / ``request`` / ``try_commit``
/ ``abort`` / ``transaction`` surface — the optimized
:class:`~repro.cc.scheduler.TableDrivenScheduler` and the frozen
:class:`~repro.cc.reference.ReferenceScheduler` alike — and records the
complete observable outcome as a :class:`Transcript`:

* every operation decision, in issue order;
* every commit decision and voluntary abort;
* externally observed aborts (cascades, deadlock victims);
* the final dependency edges, final object state, per-transaction
  statuses, and the seed-comparable scheduler counters.

Transcripts are plain frozen dataclasses, so *parity* between two
scheduler implementations is a single ``==``: identical workloads must
yield identical transcripts.  The throughput benchmark times the same
:func:`drive` call, so the parity gate and the speedup measurement
exercise exactly the same code path.

Scheduling discipline: up to ``concurrency`` transactions are live at
once (admitted in program order, so transaction ids match across
implementations); live transactions are polled round-robin, one action
per turn — the next unexecuted step, or the commit/abort once steps are
exhausted.  Blocked operations and commit-waits retry on their next
turn.  Wait-cycle resolution is the scheduler's job; the harness only
caps total turns to turn a would-be livelock into a loud failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.scheduler import OpDecision
from repro.cc.transaction import TransactionStatus, TxnId
from repro.cc.workload import Workload
from repro.core.table import CompatibilityTable
from repro.errors import SchedulerError
from repro.obs.events import (
    CrashInduced,
    FaultInjected,
    RecoveryCompleted,
    RecoveryStarted,
)
from repro.spec.adt import ADTSpec, AbstractState

__all__ = ["Transcript", "drive"]


@dataclass(frozen=True)
class Transcript:
    """The complete observable outcome of one driven workload.

    Every field is hashable/comparable, so two scheduler implementations
    agree on a run exactly when their transcripts compare equal.
    """

    #: (txn, step index, decision) per operation attempt, in issue order.
    op_decisions: tuple[tuple[TxnId, int, OpDecision], ...]
    #: (txn, kind, detail) per resolution attempt, in issue order.  Kinds:
    #: ``committed``, ``commit-waiting`` (detail: sorted waiters),
    #: ``must-abort``, ``voluntary-abort`` (detail: sorted extra aborts),
    #: ``observed-abort`` (cascade/deadlock victim seen at turn start).
    resolutions: tuple[tuple[TxnId, str, tuple[TxnId, ...]], ...]
    #: Final dependency edges, sorted: ((later, earlier), dependency name).
    edges: tuple[tuple[tuple[TxnId, TxnId], str], ...]
    #: Final per-transaction statuses, by transaction id.
    statuses: tuple[tuple[TxnId, str], ...]
    #: repr of the final object state (abstract states are not hashable).
    final_state: str
    #: The seed-comparable scheduler counters, sorted by name.
    seed_stats: tuple[tuple[str, int], ...]

    def committed(self) -> tuple[TxnId, ...]:
        """Ids of the transactions that committed."""
        return tuple(
            txn
            for txn, status in self.statuses
            if status == TransactionStatus.COMMITTED.name
        )


class _Runner:
    """Progress of one transaction program through the scheduler."""

    __slots__ = ("txn", "program", "step", "done")

    def __init__(self, txn: TxnId, program) -> None:
        self.txn = txn
        self.program = program
        self.step = 0
        self.done = False


def drive(
    scheduler,
    adt: ADTSpec,
    table: CompatibilityTable,
    workload: Workload,
    object_name: str = "obj",
    initial_state: AbstractState | None = None,
    concurrency: int | None = None,
    max_turns: int | None = None,
    checkpoint=None,
    fault_plan=None,
) -> Transcript:
    """Run ``workload`` to completion and return the full transcript.

    ``concurrency`` bounds the number of simultaneously live transactions
    (default: all of them — maximum contention).  ``max_turns`` guards
    against livelock; the default allows every operation a generous number
    of blocked retries before failing loudly.

    ``checkpoint(index, scheduler)`` is invoked before every *decision
    point* (each ``request`` / ``try_commit`` / voluntary ``abort`` call,
    numbered from 0); returning a scheduler replaces the one in use — the
    hook the crash-point sweep uses to kill the scheduler mid-run and
    swap in a recovered one.  ``fault_plan`` is a
    :class:`~repro.robust.faults.FaultPlan` consulted at the named fault
    points; both default to ``None``, leaving the driver bit-identical to
    the fault-free harness.
    """
    scheduler.register_object(object_name, adt, table, initial_state)
    programs = list(workload.programs)
    concurrency = len(programs) if concurrency is None else max(1, concurrency)
    if max_turns is None:
        max_turns = 1000 * max(1, workload.total_operations())

    ops: list[tuple[TxnId, int, OpDecision]] = []
    resolutions: list[tuple[TxnId, str, tuple[TxnId, ...]]] = []
    live: list[_Runner] = []
    admitted = 0
    decision_index = 0

    def admit() -> None:
        nonlocal admitted
        while admitted < len(programs) and len(live) < concurrency:
            live.append(_Runner(scheduler.begin(), programs[admitted]))
            admitted += 1

    def at_decision_point() -> None:
        """Run the checkpoint hook (possibly swapping the scheduler)."""
        nonlocal scheduler, decision_index
        if checkpoint is not None:
            replacement = checkpoint(decision_index, scheduler)
            if replacement is not None:
                scheduler = replacement
        decision_index += 1

    def emit_fault(kind: str, txn: TxnId = -1, detail: str = "") -> None:
        if scheduler.tracer:
            scheduler.tracer.emit(
                FaultInjected(
                    time=scheduler.now, kind=kind, txn=txn, detail=detail
                )
            )

    def inject_turn_faults() -> None:
        """Between-decision faults: cache poisoning and scheduler crashes."""
        nonlocal scheduler
        mode = fault_plan.cache_poison()
        if mode:
            cache = getattr(scheduler, "execution_cache", None)
            if cache is not None:
                if mode == "evict":
                    cache.chaos_evict()
                else:
                    cache.chaos_corrupt()
            emit_fault("cache_poison", detail=mode)
        if fault_plan.crash() and hasattr(scheduler, "reincarnate"):
            emit_fault("crash")
            log_records = len(scheduler.log)
            tracer = scheduler.tracer
            if tracer:
                tracer.emit(
                    CrashInduced(time=scheduler.now, log_records=log_records)
                )
                tracer.emit(
                    RecoveryStarted(time=scheduler.now, log_records=log_records)
                )
            scheduler = scheduler.reincarnate()
            if scheduler.tracer:
                scheduler.tracer.emit(
                    RecoveryCompleted(time=scheduler.now, replayed=log_records)
                )

    admit()
    turns = 0
    while live:
        # Snapshot: runners admitted mid-round first act next round, and
        # removal below cannot skip a peer's turn.
        for runner in list(live):
            turns += 1
            if turns > max_turns:
                raise SchedulerError(
                    f"harness exceeded {max_turns} turns; workload livelocked"
                )
            if fault_plan:
                inject_turn_faults()
            txn = runner.txn
            status = scheduler.transaction(txn).status
            if status is not TransactionStatus.ACTIVE:
                # Aborted from outside its own turn: a cascade, a deadlock
                # victim, or a replay invalidation.
                resolutions.append((txn, "observed-abort", ()))
                runner.done = True
                live.remove(runner)
                continue
            if runner.step < len(runner.program.steps):
                if fault_plan and fault_plan.spurious_abort(txn):
                    emit_fault("spurious_abort", txn=txn)
                    extra = scheduler.abort(txn, reason="fault-injected")
                    resolutions.append(
                        (txn, "fault-abort", tuple(sorted(extra)))
                    )
                    runner.done = True
                    live.remove(runner)
                    continue
                if fault_plan and fault_plan.op_failure(txn):
                    # Transient execution failure: the step is retried on
                    # the runner's next turn.
                    emit_fault("op_failure", txn=txn)
                    continue
                step = runner.program.steps[runner.step]
                at_decision_point()
                decision = scheduler.request(txn, object_name, step.invocation)
                ops.append((txn, runner.step, decision))
                if decision.executed:
                    runner.step += 1
                elif decision.aborted:
                    runner.done = True
                    live.remove(runner)
                # else: blocked — retry on the next turn.
                continue
            if runner.program.voluntary_abort:
                at_decision_point()
                extra = scheduler.abort(txn, reason="voluntary")
                resolutions.append((txn, "voluntary-abort", tuple(sorted(extra))))
                runner.done = True
                live.remove(runner)
                continue
            if fault_plan and fault_plan.commit_delay(txn) is not None:
                # The attempt is postponed to the runner's next turn.
                emit_fault("commit_delay", txn=txn)
                continue
            at_decision_point()
            decision = scheduler.try_commit(txn)
            if decision.committed:
                resolutions.append((txn, "committed", ()))
                runner.done = True
                live.remove(runner)
            elif decision.must_abort:
                resolutions.append((txn, "must-abort", ()))
                runner.done = True
                live.remove(runner)
            else:
                resolutions.append(
                    (txn, "commit-waiting", tuple(sorted(decision.waiting_on)))
                )
                # Retry on the next turn.
        admit()

    edges = tuple(
        sorted(
            (pair, dependency.name)
            for pair, dependency in scheduler.dependency_graph().edges().items()
        )
    )
    statuses = tuple(
        (txn, scheduler.transaction(txn).status.name) for txn in range(admitted)
    )
    # Re-fetched from the (possibly checkpoint-swapped) scheduler rather
    # than the registration-time object: after a crash swap the live
    # object belongs to the recovered scheduler.
    final_state = repr(scheduler.object(object_name).state())
    return Transcript(
        op_decisions=tuple(ops),
        resolutions=tuple(resolutions),
        edges=edges,
        statuses=statuses,
        final_state=final_state,
        seed_stats=tuple(sorted(scheduler.stats.seed_counters().items())),
    )

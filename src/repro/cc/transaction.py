"""Transactions and their lifecycle.

The paper assumes "a traditional transaction model in which transactions
have the properties of serializability and failure atomicity" (Section 2).
A transaction here is a flat sequence of operation invocations on shared
objects; its lifecycle is ``ACTIVE -> COMMITTED`` or ``ACTIVE -> ABORTED``,
with commit gated by the dependencies recorded against other transactions
(see :mod:`repro.cc.dependencies`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TransactionStateError
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ReturnValue

__all__ = ["TxnId", "TransactionStatus", "OperationRecord", "Transaction"]

#: Transactions are identified by integers, assigned in arrival order.
TxnId = int


class TransactionStatus(enum.Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"

    @property
    def is_resolved(self) -> bool:
        """Whether the transaction has reached a terminal state."""
        return self is not TransactionStatus.ACTIVE


@dataclass
class OperationRecord:
    """One operation a transaction executed on a shared object."""

    object_name: str
    invocation: Invocation
    returned: ReturnValue
    sequence: int  #: global execution-order stamp assigned by the scheduler

    def render(self) -> str:
        ret = self.returned
        shown = ret.outcome if ret.has_outcome else repr(ret.result)
        return f"{self.object_name}.{self.invocation.render()}:{shown}"


@dataclass
class Transaction:
    """A flat transaction: identity, status, and executed-operation log."""

    txn_id: TxnId
    status: TransactionStatus = TransactionStatus.ACTIVE
    records: list[OperationRecord] = field(default_factory=list)
    #: Global commit-order stamp, set by the scheduler at commit time.
    commit_sequence: int | None = None

    def require_active(self) -> None:
        """Guard used by the scheduler before any further action."""
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.status.value}, not active"
            )

    def record(self, record: OperationRecord) -> None:
        """Append an executed operation to the transaction's log."""
        self.require_active()
        self.records.append(record)

    @property
    def is_committed(self) -> bool:
        return self.status is TransactionStatus.COMMITTED

    @property
    def is_aborted(self) -> bool:
        return self.status is TransactionStatus.ABORTED

    @property
    def is_active(self) -> bool:
        return self.status is TransactionStatus.ACTIVE

    def objects_touched(self) -> set[str]:
        """Names of the shared objects this transaction operated on."""
        return {record.object_name for record in self.records}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Txn {self.txn_id} {self.status.value} "
            f"ops={[r.render() for r in self.records]}>"
        )

"""Commit-time validation scheduling over intentions lists.

The third discipline of the paper's Section 3, alongside the optimistic
(recoverability-style) and blocking schedulers of
:mod:`repro.cc.scheduler`: operations never touch the shared state during
execution — each transaction runs against the committed state plus its own
intentions — and conflicts surface at *commitment*, when the buffered
operations are validated against the state the earlier committers left
behind ("at the time of commitment, a transaction is validated to
determine if its commitment invalidates ... the effects of any in-progress
transaction").

This is backward validation: a committing transaction re-executes its
intentions against the current committed state; if every return value it
observed still holds, the intentions apply atomically, otherwise the
transaction aborts (and may be retried by the caller).  Serializability is
immediate — committed transactions are *literally* applied serially in
commit order, and validation guarantees their observations match that
serial execution.

The compatibility table is used as the *conflict filter* that makes
validation cheap and fair: a committing transaction is validated only
against the intentions it actually conflicts with; transactions whose
operations are pairwise ND against everything committed since their start
skip re-execution entirely (the table certifies their observations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.objects import SharedObject
from repro.cc.transaction import TxnId
from repro.core.conditions import ConditionContext
from repro.core.dependency import Dependency
from repro.core.table import CompatibilityTable
from repro.errors import SchedulerError, TransactionStateError
from repro.graph.instrument import EdgeAttribution
from repro.perf.cache import ExecutionCache
from repro.spec.adt import ADTSpec, AbstractState, execute_invocation
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ReturnValue

__all__ = ["ValidationScheduler", "ValidationStats"]


@dataclass
class ValidationStats:
    """Counters of the validation discipline."""

    operations_buffered: int = 0
    commits: int = 0
    validation_aborts: int = 0
    voluntary_aborts: int = 0
    validations_skipped_by_table: int = 0
    validations_run: int = 0


@dataclass
class _Intention:
    object_name: str
    invocation: Invocation
    predicted: ReturnValue


@dataclass
class _ValidationTxn:
    txn_id: TxnId
    #: Committed-state snapshot version at transaction start.
    start_version: int
    intentions: list[_Intention] = field(default_factory=list)
    status: str = "active"


@dataclass
class _ValidationObject:
    shared: SharedObject
    table: CompatibilityTable


class ValidationScheduler:
    """Intentions-list scheduler with table-filtered backward validation.

    ``execution_cache`` memoizes the shadow executions of :meth:`request`
    and :meth:`_validate` — a transaction replaying a long intentions list
    re-executes the same ``(state, invocation)`` prefix on every request,
    and validation re-executes exactly what :meth:`request` predicted, so
    the deferred discipline is where memoization pays most.  Pass ``None``
    to disable, or share one cache across schedulers.
    """

    def __init__(self, execution_cache: ExecutionCache | None = None) -> None:
        self.stats = ValidationStats()
        self._cache = execution_cache
        self._objects: dict[str, _ValidationObject] = {}
        self._txns: dict[TxnId, _ValidationTxn] = {}
        self._next_txn: TxnId = 0
        #: Monotone commit version; committed operations are tagged with
        #: the version at which they applied.
        self._version = 0
        self._committed_ops: list[tuple[int, str, Invocation]] = []

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def register_object(
        self,
        name: str,
        adt: ADTSpec,
        table: CompatibilityTable,
        initial_state: AbstractState | None = None,
    ) -> SharedObject:
        """Attach a shared object and the table filtering its validations."""
        if name in self._objects:
            raise SchedulerError(f"object {name!r} already registered")
        shared = SharedObject(name, adt, initial_state)
        self._objects[name] = _ValidationObject(shared=shared, table=table)
        return shared

    def object(self, name: str) -> SharedObject:
        """Look up a registered shared object."""
        return self._required(name).shared

    def begin(self) -> TxnId:
        """Start a transaction; it snapshots the current commit version."""
        txn_id = self._next_txn
        self._next_txn += 1
        self._txns[txn_id] = _ValidationTxn(
            txn_id=txn_id, start_version=self._version
        )
        return txn_id

    # ------------------------------------------------------------------
    # Execution (deferred)
    # ------------------------------------------------------------------

    def request(
        self, txn: TxnId, object_name: str, invocation: Invocation
    ) -> ReturnValue:
        """Execute against committed state + own intentions; never blocks."""
        record = self._active(txn)
        registered = self._required(object_name)
        state = registered.shared.state()
        for intention in record.intentions:
            if intention.object_name != object_name:
                continue
            state = self._execute(
                registered.shared.adt, state, intention.invocation
            ).post_state
        execution = self._execute(registered.shared.adt, state, invocation)
        record.intentions.append(
            _Intention(
                object_name=object_name,
                invocation=invocation,
                predicted=execution.returned,
            )
        )
        self.stats.operations_buffered += 1
        return execution.returned

    # ------------------------------------------------------------------
    # Commitment
    # ------------------------------------------------------------------

    def try_commit(self, txn: TxnId) -> bool:
        """Validate and, on success, apply the intentions atomically.

        Validation is skipped when the compatibility table certifies every
        buffered operation as ND against every operation committed since
        the transaction began (nothing it observed can have changed);
        otherwise the intentions are re-executed against the committed
        state and the observed returns must hold.  Failure aborts the
        transaction.
        """
        record = self._active(txn)
        if self._table_certifies_no_conflict(record):
            self.stats.validations_skipped_by_table += 1
        else:
            self.stats.validations_run += 1
            if not self._validate(record):
                record.status = "aborted"
                self.stats.validation_aborts += 1
                return False
        self._apply(record)
        record.status = "committed"
        self.stats.commits += 1
        return True

    def abort(self, txn: TxnId) -> None:
        """Discard the transaction's intentions (nothing was applied)."""
        record = self._active(txn)
        record.status = "aborted"
        self.stats.voluntary_aborts += 1

    def status(self, txn: TxnId) -> str:
        """``"active"``, ``"committed"`` or ``"aborted"``."""
        return self._record(txn).status

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _table_certifies_no_conflict(self, record: _ValidationTxn) -> bool:
        """Whether every intention is unconditionally ND against every
        operation committed after the transaction's snapshot."""
        recent = [
            (object_name, invocation)
            for version, object_name, invocation in self._committed_ops
            if version > record.start_version
        ]
        if not recent:
            return True
        for intention in record.intentions:
            table = self._required(intention.object_name).table
            for object_name, earlier in recent:
                if object_name != intention.object_name:
                    continue
                entry = table.entry(
                    intention.invocation.operation, earlier.operation
                )
                if entry.is_conditional:
                    return False
                context = ConditionContext(
                    first_invocation=earlier,
                    second_invocation=intention.invocation,
                )
                if entry.resolve(context) is not Dependency.ND:
                    return False
        return True

    def _validate(self, record: _ValidationTxn) -> bool:
        states = {}
        for intention in record.intentions:
            shared = self._required(intention.object_name).shared
            state = states.get(intention.object_name, shared.state())
            execution = self._execute(shared.adt, state, intention.invocation)
            if execution.returned != intention.predicted:
                return False
            states[intention.object_name] = execution.post_state
        return True

    def _apply(self, record: _ValidationTxn) -> None:
        self._version += 1
        for intention in record.intentions:
            shared = self._required(intention.object_name).shared
            shared.execute(record.txn_id, intention.invocation)
            self._committed_ops.append(
                (self._version, intention.object_name, intention.invocation)
            )

    def _execute(self, adt, state, invocation):
        """One shadow execution, memoized when a cache is attached."""
        if self._cache is not None:
            return self._cache.get_or_execute(
                adt, state, invocation, EdgeAttribution.BOTH
            )
        return execute_invocation(adt, state, invocation)

    def _required(self, name: str) -> _ValidationObject:
        try:
            return self._objects[name]
        except KeyError:
            raise SchedulerError(f"object {name!r} is not registered") from None

    def _record(self, txn: TxnId) -> _ValidationTxn:
        try:
            return self._txns[txn]
        except KeyError:
            raise SchedulerError(f"unknown transaction {txn}") from None

    def _active(self, txn: TxnId) -> _ValidationTxn:
        record = self._record(txn)
        if record.status != "active":
            raise TransactionStateError(
                f"transaction {txn} is {record.status}, not active"
            )
        return record

"""Synthetic transaction workloads.

The paper has no workload section (it is a methodology paper); these
generators provide the parameterised synthetic workloads used by the
concurrency experiments: mixes of operations over shared objects, Poisson
arrivals, per-operation service times, and optional voluntary aborts to
exercise cascades.  All randomness is seeded for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.spec.adt import ADTSpec
from repro.spec.operation import Invocation

__all__ = ["Step", "TransactionProgram", "Workload", "WorkloadConfig", "generate"]


@dataclass(frozen=True)
class Step:
    """One operation of a transaction program."""

    object_name: str
    invocation: Invocation
    service_time: float


@dataclass(frozen=True)
class TransactionProgram:
    """A scripted transaction: arrival time, steps, commit/abort intent."""

    arrival: float
    steps: tuple[Step, ...]
    voluntary_abort: bool = False


@dataclass(frozen=True)
class Workload:
    """A fully materialised workload ready for simulation."""

    programs: tuple[TransactionProgram, ...]
    description: str = ""

    def total_operations(self) -> int:
        return sum(len(program.steps) for program in self.programs)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic workload generator.

    Attributes:
        transactions: Number of transactions.
        operations_per_transaction: Steps per transaction.
        operation_mix: Relative weights per operation name; defaults to a
            uniform mix over the ADT's operations.
        mean_service_time: Mean of the exponential per-operation service
            time.
        mean_interarrival: Mean of the exponential interarrival time
            (0 starts every transaction at time 0).
        abort_probability: Chance a transaction voluntarily aborts instead
            of committing (exercises cascades).
        seed: RNG seed.
    """

    transactions: int = 16
    operations_per_transaction: int = 4
    operation_mix: dict[str, float] = field(default_factory=dict)
    mean_service_time: float = 1.0
    mean_interarrival: float = 0.5
    abort_probability: float = 0.0
    seed: int = 1991  # the paper's year

    def __post_init__(self) -> None:
        if self.transactions < 1:
            raise WorkloadError("need at least one transaction")
        if self.operations_per_transaction < 1:
            raise WorkloadError("need at least one operation per transaction")
        if not 0.0 <= self.abort_probability <= 1.0:
            raise WorkloadError("abort_probability must be within [0, 1]")
        if self.mean_service_time <= 0:
            raise WorkloadError("mean_service_time must be positive")


def _random_invocation(
    adt: ADTSpec, operation: str, rng: random.Random
) -> Invocation:
    """A random invocation of ``operation`` within the ADT's bounds."""
    choices = adt.invocations_of(operation)
    return rng.choice(choices)


def generate(
    adt: ADTSpec,
    object_name: str,
    config: WorkloadConfig,
) -> Workload:
    """Materialise a workload of transactions over a single shared object."""
    rng = random.Random(config.seed)
    mix = config.operation_mix or {name: 1.0 for name in adt.operation_names()}
    unknown = set(mix) - set(adt.operation_names())
    if unknown:
        raise WorkloadError(f"operation mix names unknown operations: {unknown}")
    names = list(mix)
    weights = [mix[name] for name in names]

    programs = []
    clock = 0.0
    for _ in range(config.transactions):
        if config.mean_interarrival > 0:
            clock += rng.expovariate(1.0 / config.mean_interarrival)
        steps = tuple(
            Step(
                object_name=object_name,
                invocation=_random_invocation(
                    adt, rng.choices(names, weights)[0], rng
                ),
                service_time=rng.expovariate(1.0 / config.mean_service_time),
            )
            for _ in range(config.operations_per_transaction)
        )
        programs.append(
            TransactionProgram(
                arrival=clock,
                steps=steps,
                voluntary_abort=rng.random() < config.abort_probability,
            )
        )
    return Workload(
        programs=tuple(programs),
        description=(
            f"{config.transactions} txns x {config.operations_per_transaction} ops "
            f"on {object_name} (seed {config.seed})"
        ),
    )

"""Shared objects: live state, operation execution, replay recovery.

A :class:`SharedObject` wraps one ADT instance.  Its live state is an
object graph mutated in place by executed operations; in parallel it keeps
an *operation log* — the global execution order of (transaction,
invocation) pairs — which is the basis of recovery:

When a transaction aborts, its operations are removed from the log and the
remaining operations are **replayed from the initial state** (footnote 1
of the paper: "p's changes have to be undone and possibly q's, and the
changes of q must be reapplied").  Replay also *re-verifies* the return
values of the surviving active transactions: if a surviving operation
would now return something different, the information it handed to its
transaction was invalidated, and the object reports those transactions so
the scheduler can cascade the abort.  A sound compatibility table makes
such collateral aborts impossible beyond the recorded AD edges — the
property checked by the scheduler-soundness experiment (X5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.transaction import TxnId
from repro.graph.instrument import EdgeAttribution, InstrumentedGraph, LocalityTrace
from repro.graph.object_graph import ObjectGraph
from repro.spec.adt import ADTSpec, AbstractState
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ReturnValue

__all__ = ["AppliedOperation", "SharedObject"]


@dataclass
class AppliedOperation:
    """One log entry: who executed what, and what came back."""

    txn: TxnId
    invocation: Invocation
    returned: ReturnValue
    trace: LocalityTrace


class SharedObject:
    """One concurrently accessed ADT instance with replay recovery."""

    def __init__(
        self,
        name: str,
        adt: ADTSpec,
        initial_state: AbstractState | None = None,
        attribution: EdgeAttribution = EdgeAttribution.SOURCE,
    ) -> None:
        """Create a shared instance of ``adt``.

        Runtime traces default to ``SOURCE`` edge attribution — the
        reference-granular reading the paper's Stage 5 uses.  The literal
        ``BOTH`` reading also attributes ordering-edge changes to the
        *neighbouring* vertices, which makes adjacent front/back operations
        (Push vs. Deq on a two-element QStack) appear to conflict and
        erases exactly the concurrency the ``f ≠ b`` predicate exists to
        expose; see the attribution ablation benchmark.
        """
        self.name = name
        self.adt = adt
        self.attribution = attribution
        self._initial_state = (
            adt.initial_state() if initial_state is None else initial_state
        )
        self._graph: ObjectGraph = adt.build_graph(self._initial_state)
        self._log: list[AppliedOperation] = []

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def graph(self) -> ObjectGraph:
        """The live object graph (used to evaluate reference predicates)."""
        return self._graph

    @property
    def initial_state(self) -> AbstractState:
        """The recovery baseline (the state all replays start from)."""
        return self._initial_state

    def state(self) -> AbstractState:
        """The current abstract state."""
        return self.adt.abstract_state(self._graph)

    def log(self) -> list[AppliedOperation]:
        """A copy of the operation log in execution order."""
        return list(self._log)

    def operations_of(self, txn: TxnId) -> list[AppliedOperation]:
        """Log entries belonging to one transaction."""
        return [entry for entry in self._log if entry.txn == txn]

    def active_writers(self, exclude: TxnId) -> set[TxnId]:
        """Transactions (other than ``exclude``) present in the log."""
        return {entry.txn for entry in self._log if entry.txn != exclude}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, txn: TxnId, invocation: Invocation) -> AppliedOperation:
        """Execute an invocation on the live state and log it."""
        view = InstrumentedGraph(self._graph, attribution=self.attribution)
        operation = self.adt.operation(invocation.operation)
        returned = operation.execute(view, *invocation.args)
        applied = AppliedOperation(
            txn=txn, invocation=invocation, returned=returned, trace=view.trace
        )
        self._log.append(applied)
        return applied

    def preview(self, invocation: Invocation) -> ReturnValue:
        """Execute an invocation against a throwaway copy of the state.

        Used by the blocking scheduler to evaluate outcome-conditional
        entries without committing to the execution.
        """
        returned, _ = self.preview_with_trace(invocation)
        return returned

    def preview_with_trace(
        self, invocation: Invocation
    ) -> tuple[ReturnValue, LocalityTrace]:
        """Preview an invocation on an id-preserving clone of the live graph.

        The returned locality trace uses the *live* graph's vertex ids
        (the clone shares them and would allocate the same fresh ids), so
        it can be intersected with traces already recorded on the object —
        the basis of the scheduler's runtime conflict certification.
        """
        scratch = self._graph.clone()
        view = InstrumentedGraph(scratch, attribution=self.attribution)
        operation = self.adt.operation(invocation.operation)
        returned = operation.execute(view, *invocation.args)
        return returned, view.trace

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def remove_transactions(self, txns: set[TxnId]) -> set[TxnId]:
        """Erase the given transactions' operations and replay the rest.

        Returns the set of *surviving* transactions whose replayed return
        values differ from the originally observed ones — the transactions
        whose information was invalidated by the abort.  Under a sound
        compatibility table this set is always empty (the scheduler already
        cascaded every AD-dependent); it is surfaced rather than assumed so
        the soundness experiments can detect violations.
        """
        survivors = [entry for entry in self._log if entry.txn not in txns]
        self._graph = self.adt.build_graph(self._initial_state)
        invalidated: set[TxnId] = set()
        replayed: list[AppliedOperation] = []
        for entry in survivors:
            view = InstrumentedGraph(self._graph, attribution=self.attribution)
            operation = self.adt.operation(entry.invocation.operation)
            returned = operation.execute(view, *entry.invocation.args)
            if returned != entry.returned:
                invalidated.add(entry.txn)
            replayed.append(
                AppliedOperation(
                    txn=entry.txn,
                    invocation=entry.invocation,
                    returned=entry.returned,
                    trace=view.trace,
                )
            )
        self._log = replayed
        return invalidated

    def forget(self, txn: TxnId) -> None:
        """Drop a committed transaction's log entries (its effects stay).

        Committed work no longer needs recovery bookkeeping; trimming the
        log keeps replay costs proportional to the active population.  The
        committed effects are preserved by re-basing the initial state on
        the current live state when the log becomes empty of other entries.
        """
        remaining = [entry for entry in self._log if entry.txn != txn]
        if not remaining:
            # Everything still logged is committed state: fold it into the
            # recovery baseline.
            self._initial_state = self.state()
            self._log = []
            return
        # Only safe to drop a prefix: committed entries that precede every
        # surviving active entry can be folded into the baseline.
        kept = list(self._log)
        while kept and kept[0].txn == txn:
            kept.pop(0)
        if len(kept) < len(self._log):
            prefix = self._log[: len(self._log) - len(kept)]
            baseline = self.adt.build_graph(self._initial_state)
            for entry in prefix:
                view = InstrumentedGraph(baseline, attribution=self.attribution)
                operation = self.adt.operation(entry.invocation.operation)
                operation.execute(view, *entry.invocation.args)
            self._initial_state = self.adt.abstract_state(baseline)
            self._log = kept
        # Entries of ``txn`` interleaved after active entries must remain in
        # the log (they are needed to replay correctly around the active
        # transactions); they are labelled committed implicitly by the
        # scheduler's transaction table.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SharedObject {self.name} state={self.state()!r}>"

"""Recovery disciplines (Section 3's recovery-mechanism distinction).

The paper stresses that the applicable conflict notion depends on the
recovery mechanism: serial dependency assumes *intentions lists* (updates
deferred to commit), recoverability and backward commutativity assume
*in-place updates with undo* (log-based).  Both disciplines are provided:

* :class:`IntentionsList` — per-transaction buffers of deferred
  invocations, applied atomically at commit.  "With intentions lists ...
  the modifications of an object by an operation are not effected until
  the operation commits", so information never flows between active
  transactions.
* :class:`UndoLog` — in-place execution with replay-based undo, the
  discipline :class:`~repro.cc.objects.SharedObject` implements natively;
  the class here wraps it with explicit undo bookkeeping for direct use in
  examples and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.objects import SharedObject
from repro.cc.transaction import TxnId
from repro.spec.adt import execute_invocation
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ReturnValue

__all__ = ["IntentionsList", "UndoLog"]


@dataclass
class _Intention:
    invocation: Invocation
    predicted: ReturnValue


class IntentionsList:
    """Deferred-update recovery: buffer invocations, apply at commit.

    Each transaction sees the committed state plus its *own* intentions;
    other transactions' intentions are invisible until they commit.  At
    commit the buffered invocations are validated by re-execution against
    the current committed state — if any return value differs from the one
    the transaction observed, the commit is rejected (backward validation,
    as in the optimistic schemes of Section 3).
    """

    def __init__(self, shared: SharedObject) -> None:
        self._shared = shared
        self._intentions: dict[TxnId, list[_Intention]] = {}

    def execute(self, txn: TxnId, invocation: Invocation) -> ReturnValue:
        """Run ``invocation`` against committed-state + own intentions."""
        adt = self._shared.adt
        state = self._shared.state()
        for intention in self._intentions.get(txn, []):
            state = execute_invocation(adt, state, intention.invocation).post_state
        execution = execute_invocation(adt, state, invocation)
        self._intentions.setdefault(txn, []).append(
            _Intention(invocation=invocation, predicted=execution.returned)
        )
        return execution.returned

    def validate(self, txn: TxnId) -> bool:
        """Whether the buffered intentions still return the observed values."""
        adt = self._shared.adt
        state = self._shared.state()
        for intention in self._intentions.get(txn, []):
            execution = execute_invocation(adt, state, intention.invocation)
            if execution.returned != intention.predicted:
                return False
            state = execution.post_state
        return True

    def commit(self, txn: TxnId) -> bool:
        """Validate and, if valid, apply the intentions to the shared object.

        Returns ``False`` (and discards nothing) when validation fails; the
        caller decides whether to retry or abort.
        """
        if not self.validate(txn):
            return False
        for intention in self._intentions.pop(txn, []):
            self._shared.execute(txn, intention.invocation)
        return True

    def abort(self, txn: TxnId) -> None:
        """Discard the transaction's intentions (nothing was applied)."""
        self._intentions.pop(txn, None)

    def pending(self, txn: TxnId) -> list[Invocation]:
        """The invocations currently buffered for ``txn``."""
        return [intention.invocation for intention in self._intentions.get(txn, [])]


class UndoLog:
    """In-place updates with replay-based undo.

    A thin, explicit wrapper over the replay recovery built into
    :class:`~repro.cc.objects.SharedObject`: operations execute
    immediately; :meth:`undo` removes a transaction's operations and
    reports which surviving transactions saw their return values
    invalidated (the cascading-abort candidates of the paper's
    footnote 1).
    """

    def __init__(self, shared: SharedObject) -> None:
        self._shared = shared

    def execute(self, txn: TxnId, invocation: Invocation) -> ReturnValue:
        """Execute in place, logging for potential undo."""
        return self._shared.execute(txn, invocation).returned

    def undo(self, txn: TxnId) -> set[TxnId]:
        """Back out one transaction; returns invalidated survivors."""
        return self._shared.remove_transactions({txn})

    def undo_many(self, txns: set[TxnId]) -> set[TxnId]:
        """Back out several transactions at once."""
        return self._shared.remove_transactions(set(txns))

"""The inter-transaction dependency graph (Section 2.1 semantics).

Edges always point from the *later* transaction to the *earlier* one (the
one whose operation executed first), labelled with the strongest
dependency recorded between the two:

* ``later --AD--> earlier``: later observed earlier's effects; it may
  commit only after earlier commits, and must abort if earlier aborts.
* ``later --CD--> earlier``: later may commit only after earlier commits
  *or aborts* (commit ordering), but can never be forced to abort.

Because edges follow execution order, the graph is acyclic by
construction; :meth:`DependencyGraph.add` still verifies this so that a
faulty scheduler fails loudly rather than deadlocking silently.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.dependency import Dependency
from repro.cc.transaction import TxnId
from repro.errors import DependencyCycleError

__all__ = ["DependencyGraph"]


class DependencyGraph:
    """Directed multigraph of AD/CD dependencies between transactions."""

    def __init__(self) -> None:
        #: (later, earlier) -> strongest dependency recorded for the pair
        self._edges: dict[tuple[TxnId, TxnId], Dependency] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, later: TxnId, earlier: TxnId, dependency: Dependency) -> None:
        """Record a dependency of ``later`` on ``earlier``.

        ND edges are ignored; repeated edges keep the strongest label.
        Self-dependencies never arise (a transaction's own operations
        cannot conflict with it) and are rejected.
        """
        if dependency is Dependency.ND:
            return
        if later == earlier:
            raise DependencyCycleError(
                f"transaction {later} cannot depend on itself"
            )
        if self._reachable(earlier, later):
            raise DependencyCycleError(
                f"adding {later}->{earlier} would close a dependency cycle"
            )
        key = (later, earlier)
        current = self._edges.get(key, Dependency.ND)
        self._edges[key] = max(current, dependency)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def dependency(self, later: TxnId, earlier: TxnId) -> Dependency:
        """The recorded dependency of ``later`` on ``earlier`` (ND if none)."""
        return self._edges.get((later, earlier), Dependency.ND)

    def predecessors(self, txn: TxnId) -> dict[TxnId, Dependency]:
        """Transactions ``txn`` depends on, with the dependency kind."""
        return {
            earlier: dependency
            for (later, earlier), dependency in self._edges.items()
            if later == txn
        }

    def dependents(self, txn: TxnId) -> dict[TxnId, Dependency]:
        """Transactions that depend on ``txn``, with the dependency kind."""
        return {
            later: dependency
            for (later, earlier), dependency in self._edges.items()
            if earlier == txn
        }

    def abort_dependents(self, txn: TxnId) -> set[TxnId]:
        """Direct AD-dependents of ``txn`` (one cascade step)."""
        return {
            later
            for later, dependency in self.dependents(txn).items()
            if dependency is Dependency.AD
        }

    def abort_cascade(self, roots: Iterable[TxnId]) -> set[TxnId]:
        """Transitive closure of AD-dependents of ``roots``.

        These are the transactions that must abort when the roots abort —
        failure atomicity propagated along abort-dependencies.  The roots
        themselves are not included.
        """
        cascade: set[TxnId] = set()
        frontier = list(roots)
        while frontier:
            txn = frontier.pop()
            for dependent in self.abort_dependents(txn):
                if dependent not in cascade:
                    cascade.add(dependent)
                    frontier.append(dependent)
        return cascade

    def edges(self) -> dict[tuple[TxnId, TxnId], Dependency]:
        """A copy of all recorded edges."""
        return dict(self._edges)

    def depends_transitively(self, later: TxnId, earlier: TxnId) -> bool:
        """Whether ``later`` reaches ``earlier`` along dependency edges."""
        return self._reachable(later, earlier)

    def drop(self, txn: TxnId) -> None:
        """Remove every edge incident to ``txn`` (after it is resolved and
        its constraints have been consumed)."""
        self._edges = {
            key: dependency
            for key, dependency in self._edges.items()
            if txn not in key
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reachable(self, start: TxnId, goal: TxnId) -> bool:
        """Whether ``goal`` is reachable from ``start`` along edges."""
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for (later, earlier) in self._edges:
                if later == node and earlier not in seen:
                    seen.add(earlier)
                    frontier.append(earlier)
        return False

"""Concurrency metrics of a simulated run.

The refinement experiment (X1) compares runs of the *same workload* under
tables of increasing refinement; the metrics here are the observables that
must improve (or at least not degrade) with every methodology stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.scheduler import SchedulerStats

__all__ = ["RunMetrics"]


@dataclass
class RunMetrics:
    """Aggregated observables of one simulated run."""

    #: Time of the last event (commit/abort) of the run.
    makespan: float = 0.0
    #: Transactions by final status.
    committed: int = 0
    aborted: int = 0
    #: Involuntary-abort restarts performed (restart_aborted mode).
    restarts: int = 0
    #: Programs that hit the restart ceiling and finished aborted — the
    #: simulator's livelock-avoidance giving up, which used to be silent.
    restarts_exhausted: int = 0
    #: Sum over transactions of time spent blocked waiting for conflicts.
    total_blocked_time: float = 0.0
    #: Individual blocked-interval durations (feeds the histogram export).
    blocked_durations: list[float] = field(default_factory=list)
    #: Sum over committed transactions of (commit time - arrival time).
    total_response_time: float = 0.0
    #: Sum of service times of every executed operation (committed or not).
    total_service_time: float = 0.0
    #: Raw scheduler counters.
    scheduler: SchedulerStats = field(default_factory=SchedulerStats)
    #: The scheduler's execution cache, when the run had one; exported as
    #: ``execution_cache_*`` counters so cache behaviour under runtime
    #: traffic is observable alongside the scheduler counters.
    execution_cache: object | None = None
    #: Robustness counters (:class:`repro.robust.faults.RobustStats`,
    #: duck-typed) when the run carried a fault plan or monitor; exported
    #: as ``robust_*`` counters.
    robust: object | None = None
    #: End-to-end latencies (commit time - arrival time) of committed
    #: transactions, in arrival order — feeds the latency histogram.
    txn_latencies: list[float] = field(default_factory=list)
    #: Individual commit-wait interval durations (time spent between a
    #: program's last operation finishing and its commit being granted).
    commit_wait_durations: list[float] = field(default_factory=list)
    #: Sum of the commit-wait intervals above.
    total_commit_wait_time: float = 0.0
    #: Per-object :class:`repro.obs.conflict.ConflictProfile` snapshots
    #: taken at the end of the run, when the scheduler tracks them.
    conflict_profiles: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Committed transactions per unit time."""
        return self.committed / self.makespan if self.makespan > 0 else 0.0

    @property
    def mean_response_time(self) -> float:
        """Average latency of committed transactions."""
        return self.total_response_time / self.committed if self.committed else 0.0

    @property
    def effective_concurrency(self) -> float:
        """Mean number of operations in service: busy time over makespan.

        The higher the table's potential for concurrency, the more
        operations overlap and the higher this index.
        """
        return self.total_service_time / self.makespan if self.makespan > 0 else 0.0

    @property
    def blocking_ratio(self) -> float:
        """Blocked time as a fraction of total transaction time."""
        busy = self.total_service_time + self.total_blocked_time
        return self.total_blocked_time / busy if busy > 0 else 0.0

    def summary(self) -> str:
        """One-line report used by benches and examples."""
        exhausted = (
            f" restarts_exhausted={self.restarts_exhausted}"
            if self.restarts_exhausted
            else ""
        )
        return (
            f"makespan={self.makespan:.2f} committed={self.committed} "
            f"aborted={self.aborted} restarts={self.restarts}{exhausted} "
            f"throughput={self.throughput:.3f} "
            f"concurrency={self.effective_concurrency:.2f} "
            f"blocked={self.total_blocked_time:.2f} "
            f"(AD={self.scheduler.ad_edges} CD={self.scheduler.cd_edges} "
            f"ND={self.scheduler.nd_pairs})"
        )

    def latency_summary(self) -> str:
        """One-line latency footer: e2e quantiles plus a phase breakdown.

        The quantiles come from the log2-bucketed histogram (so they match
        what ``repro report`` prints from a trace); the phase percentages
        split total transaction time into service, blocked, and
        commit-wait shares.
        """
        from repro.obs.latency import histogram_of

        histogram = histogram_of(self.txn_latencies)
        busy = (
            self.total_service_time
            + self.total_blocked_time
            + self.total_commit_wait_time
        )
        if busy > 0:
            phases = (
                f"service={100.0 * self.total_service_time / busy:.0f}% "
                f"blocked={100.0 * self.total_blocked_time / busy:.0f}% "
                f"commit_wait={100.0 * self.total_commit_wait_time / busy:.0f}%"
            )
        else:
            phases = "service=0% blocked=0% commit_wait=0%"
        return f"latency: {histogram.summary()} | phases: {phases}"

    def to_registry(self, registry=None):
        """Export the run into a :class:`repro.obs.registry.MetricsRegistry`.

        Scheduler counters become counters, the derived observables become
        gauges, and the blocked-interval durations populate a fixed-bound
        histogram — ready for JSON or Prometheus text rendering.
        """
        from dataclasses import fields as dataclass_fields

        from repro.obs.registry import MetricsRegistry

        registry = registry if registry is not None else MetricsRegistry()
        registry.counter("txns", "Transactions by final status.",
                         labels={"status": "committed"}).inc(self.committed)
        registry.counter("txns", "Transactions by final status.",
                         labels={"status": "aborted"}).inc(self.aborted)
        registry.counter("restarts", "Involuntary-abort restarts.").inc(
            self.restarts
        )
        registry.counter(
            "restarts_exhausted",
            "Programs that hit the restart ceiling and finished aborted.",
        ).inc(self.restarts_exhausted)
        if self.robust is not None:
            self.robust.publish(registry)
        for field_info in dataclass_fields(self.scheduler):
            registry.counter(
                f"scheduler_{field_info.name}", "Raw scheduler counter."
            ).inc(getattr(self.scheduler, field_info.name))
        if self.execution_cache is not None:
            self.execution_cache.publish(registry)
        registry.gauge("makespan", "Time of the last event of the run.").set(
            self.makespan
        )
        registry.gauge("throughput", "Committed transactions per unit time.").set(
            self.throughput
        )
        registry.gauge(
            "effective_concurrency", "Mean operations in service."
        ).set(self.effective_concurrency)
        registry.gauge(
            "blocking_ratio", "Blocked time over busy time."
        ).set(self.blocking_ratio)
        registry.gauge(
            "mean_response_time", "Average committed-transaction latency."
        ).set(self.mean_response_time)
        blocked = registry.histogram(
            "blocked_time",
            bounds=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0),
            help="Blocked-interval durations (sim-time units).",
        )
        for duration in self.blocked_durations:
            blocked.observe(duration)
        if self.txn_latencies:
            from repro.obs.latency import histogram_of

            recorder_histogram = histogram_of(self.txn_latencies)
            target = registry.histogram(
                "txn_latency",
                bounds=tuple(
                    bound
                    for bound, _count in recorder_histogram.bucket_counts()
                ) or (1.0,),
                help="End-to-end committed-transaction latencies.",
            )
            for duration in self.txn_latencies:
                target.observe(duration)
        registry.gauge(
            "total_commit_wait_time",
            "Sum of commit-wait interval durations.",
        ).set(self.total_commit_wait_time)
        for name, profile in sorted(self.conflict_profiles.items()):
            labels = {"object": name}
            registry.counter(
                "conflict_requests", "Operation requests per object.",
                labels=labels,
            ).inc(profile.total.requests)
            registry.counter(
                "conflict_blocks", "Blocked operations per object.",
                labels=labels,
            ).inc(profile.total.blocks)
            registry.counter(
                "conflict_aborts", "Aborts attributed per object.",
                labels=labels,
            ).inc(profile.total.aborts)
            registry.gauge(
                "conflict_rate", "Recent-window block rate per object.",
                labels=labels,
            ).set(profile.conflict_rate)
        return registry

"""Concurrency metrics of a simulated run.

The refinement experiment (X1) compares runs of the *same workload* under
tables of increasing refinement; the metrics here are the observables that
must improve (or at least not degrade) with every methodology stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.scheduler import SchedulerStats

__all__ = ["RunMetrics"]


@dataclass
class RunMetrics:
    """Aggregated observables of one simulated run."""

    #: Time of the last event (commit/abort) of the run.
    makespan: float = 0.0
    #: Transactions by final status.
    committed: int = 0
    aborted: int = 0
    #: Involuntary-abort restarts performed (restart_aborted mode).
    restarts: int = 0
    #: Sum over transactions of time spent blocked waiting for conflicts.
    total_blocked_time: float = 0.0
    #: Sum over committed transactions of (commit time - arrival time).
    total_response_time: float = 0.0
    #: Sum of service times of every executed operation (committed or not).
    total_service_time: float = 0.0
    #: Raw scheduler counters.
    scheduler: SchedulerStats = field(default_factory=SchedulerStats)

    @property
    def throughput(self) -> float:
        """Committed transactions per unit time."""
        return self.committed / self.makespan if self.makespan > 0 else 0.0

    @property
    def mean_response_time(self) -> float:
        """Average latency of committed transactions."""
        return self.total_response_time / self.committed if self.committed else 0.0

    @property
    def effective_concurrency(self) -> float:
        """Mean number of operations in service: busy time over makespan.

        The higher the table's potential for concurrency, the more
        operations overlap and the higher this index.
        """
        return self.total_service_time / self.makespan if self.makespan > 0 else 0.0

    @property
    def blocking_ratio(self) -> float:
        """Blocked time as a fraction of total transaction time."""
        busy = self.total_service_time + self.total_blocked_time
        return self.total_blocked_time / busy if busy > 0 else 0.0

    def summary(self) -> str:
        """One-line report used by benches and examples."""
        return (
            f"makespan={self.makespan:.2f} committed={self.committed} "
            f"aborted={self.aborted} restarts={self.restarts} "
            f"throughput={self.throughput:.3f} "
            f"concurrency={self.effective_concurrency:.2f} "
            f"blocked={self.total_blocked_time:.2f} "
            f"(AD={self.scheduler.ad_edges} CD={self.scheduler.cd_edges} "
            f"ND={self.scheduler.nd_pairs})"
        )

"""Serializability verification of completed runs.

The ground truth the scheduler must preserve: the committed transactions'
observed return values and the final object states must be producible by
*some* serial execution of those transactions.  The checker first tries
the serial order suggested by the dependency edges (commit-order
consistency), then falls back to brute-force permutation search for small
transaction populations.

Used by the property-based soundness tests and experiment X5: under a
table derived by the methodology, every run must verify.
"""

from __future__ import annotations

from itertools import permutations

from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.transaction import Transaction, TxnId
from repro.spec.adt import execute_invocation

__all__ = ["replay_serial", "find_serialization", "is_serializable"]


def replay_serial(
    scheduler: TableDrivenScheduler,
    order: list[TxnId],
) -> bool:
    """Whether executing committed transactions serially in ``order``
    reproduces every recorded return value and every final object state.

    Only single-object-per-record replay is needed: each transaction's
    records carry the object they ran against, and records are replayed in
    the transaction's own program order.
    """
    object_names = {
        record.object_name
        for txn_id in order
        for record in scheduler.transaction(txn_id).records
    }
    states = {
        name: scheduler.object(name).initial_state for name in object_names
    }
    adts = {name: scheduler.object(name).adt for name in object_names}
    for txn_id in order:
        transaction = scheduler.transaction(txn_id)
        for record in transaction.records:
            execution = execute_invocation(
                adts[record.object_name],
                states[record.object_name],
                record.invocation,
            )
            if execution.returned != record.returned:
                return False
            states[record.object_name] = execution.post_state
    return all(
        states[name] == scheduler.object(name).state() for name in object_names
    )


def find_serialization(
    scheduler: TableDrivenScheduler,
    brute_force_limit: int = 6,
) -> list[TxnId] | None:
    """A serial order of the committed transactions that explains the run.

    Tries the dependency-respecting order first (committed transactions
    topologically sorted by their recorded edges, ties broken by first
    execution stamp), then brute force when the population is small.
    Returns the witness order, or ``None`` when no order works.
    """
    committed = [txn for txn in _all_transactions(scheduler) if txn.is_committed]
    committed_ids = [txn.txn_id for txn in committed]
    if not committed_ids:
        return []

    # Candidate 1: commit order.  Blocking disciplines order conflicting
    # transactions by commitment (the blocked side only proceeds after the
    # holder commits), so this is the natural witness.
    commit_order = sorted(
        committed_ids,
        key=lambda txn: scheduler.transaction(txn).commit_sequence or 0,
    )
    if replay_serial(scheduler, commit_order):
        return commit_order

    # Candidate 2: topological order over recorded dependency edges.
    edges = scheduler.dependency_graph().edges()
    order = _topological(committed_ids, edges, scheduler)
    if order is not None and replay_serial(scheduler, order):
        return order

    # Candidate 3: brute force for small populations.
    if len(committed_ids) <= brute_force_limit:
        for permutation in permutations(committed_ids):
            candidate = list(permutation)
            if replay_serial(scheduler, candidate):
                return candidate
    return None


def is_serializable(
    scheduler: TableDrivenScheduler, brute_force_limit: int = 6
) -> bool:
    """Whether the committed portion of the run is serializable."""
    return find_serialization(scheduler, brute_force_limit) is not None


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------

def _all_transactions(scheduler: TableDrivenScheduler) -> list[Transaction]:
    found = []
    index = 0
    while True:
        try:
            found.append(scheduler.transaction(index))
        except Exception:
            return found
        index += 1


def _first_stamp(txn: Transaction) -> int:
    return txn.records[0].sequence if txn.records else 0


def _topological(
    committed_ids: list[TxnId],
    edges: dict[tuple[TxnId, TxnId], object],
    scheduler: TableDrivenScheduler,
) -> list[TxnId] | None:
    """Topological sort: earlier transactions before their dependents."""
    members = set(committed_ids)
    preds: dict[TxnId, set[TxnId]] = {txn: set() for txn in members}
    for (later, earlier) in edges:
        if later in members and earlier in members:
            preds[later].add(earlier)
    order: list[TxnId] = []
    remaining = set(members)
    while remaining:
        ready = [
            txn for txn in remaining if not (preds[txn] & remaining)
        ]
        if not ready:
            return None  # cycle (cannot happen with a correct scheduler)
        ready.sort(key=lambda txn: _first_stamp(scheduler.transaction(txn)))
        chosen = ready[0]
        order.append(chosen)
        remaining.discard(chosen)
    return order

"""Table-driven transaction scheduler.

The point of the paper's compatibility tables is to drive concurrency
control; this scheduler consumes a derived
:class:`~repro.core.table.CompatibilityTable` per shared object and
implements two classic disciplines over it:

* **optimistic** (recoverability-style, after [Badrinath & Ramamritham]):
  operations execute immediately; the entry resolved for each pair of
  operations by different active transactions is recorded as an AD/CD edge
  in the dependency graph.  Commit waits for predecessors; aborts cascade
  along AD edges.  A dependency that would close a cycle aborts the
  requesting transaction (the dynamic equivalent of a deadlock victim).
* **blocking** (pessimistic, lock-table style): before executing, the
  requesting operation is checked against every operation of every other
  active transaction on the object; an AD verdict blocks the requester
  until the holder resolves.  CD verdicts only record commit-order edges.
  Wait-for cycles are detected and broken by aborting the youngest
  transaction.

Conditional entries are resolved with exactly the dynamic information the
paper appeals to: the live object graph (for reference predicates such as
``f ≠ b``), the earlier operation's recorded return value, and — where the
entry is conditional on the requester's own outcome — a deterministic
preview of that outcome against the current state.

State-dependent conditions are validated at derivation time on *adjacent*
executions, which does not compose across intervening operations (see
DESIGN.md §4b.5), so every non-AD verdict is additionally **certified**
before being trusted: by the live locality intersection of the actual
traces (the paper's Section-4.3 general rule, Table 2 over stable vertex
ids) and by a shadow-replay return test.  Unconditional ND entries —
full-state-space commutativity, which is composable — skip the locality
escalation.  See :meth:`TableDrivenScheduler._pair_dependency`.

**The hot path is amortized O(active transactions) per request**, not
O(active × log × replay) as in the seed (kept verbatim in
:mod:`repro.cc.reference` as the parity oracle):

* shadow-replay certification reads a
  :class:`~repro.perf.shadow.ShadowStateIndex` — per-transaction "log
  without that txn" states advanced incrementally on every grant and
  epoch-invalidated on abort rollback — instead of replaying the log per
  pair check;
* the pre-state object graph backing condition contexts is built at most
  once per request and shared across every pair iteration;
* under the blocking policy, the admission preview's pair verdicts are
  memoized and reused when the operation executes immediately afterwards
  (nothing can run in between — both happen in one synchronous call), so
  each pair is decided once rather than twice;
* tables are precompiled to a :class:`~repro.perf.flat_table.FlatTable`
  whose unconditional-ND bitset settles the common no-conflict pair in a
  dict hit and a bit test;
* every scheduler-side ``execute_invocation`` goes through an
  :class:`~repro.perf.cache.ExecutionCache`, so the
  ``execution_cache_*`` metrics reflect runtime traffic too.

On top of those, ``compiled=True`` (the default) engages the
registration-time compilation layer (:mod:`repro.perf.codegen`):

* each table is additionally compiled to a
  :class:`~repro.perf.codegen.ConflictMatrix` — flat integer arrays over
  dense operation ids, so pair verdicts index a ``bytes`` matrix instead
  of hashing operation-name strings;
* the per-request log scan is replaced by an **incremental peer index**
  (per object: active transaction -> its log entries, their op ids, and
  an OR-ed op-id bitmask), appended on every grant, pruned on commit,
  and epoch-invalidated with the shadow index on abort rollback; a peer
  transaction whose bitmask is all-unconditional-ND against the
  requested operation settles in one integer test;
* a missed execution runs an ``exec``-generated per-operation executor
  (:func:`~repro.perf.codegen.compiled_execute` as the private cache's
  miss handler) instead of the generic ``execute_uncached`` dispatch,
  and the shadow index keeps a transition memo in front of the cache.

``compiled=False`` keeps the PR 3 pure-Python structures as the
reference; ``tests/property/test_compiled_parity.py`` holds the two
bit-identical across every builtin ADT, policy and seed.

The decision stream, dependency edges, final states and seed counters are
bit-identical to the reference — enforced by
``tests/property/test_scheduler_parity.py`` and the
``benchmarks/bench_scheduler_throughput.py`` parity gate.

A third discipline, commit-time validation over intentions lists, lives
in :mod:`repro.cc.validation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

from repro.cc.dependencies import DependencyGraph
from repro.cc.objects import AppliedOperation, SharedObject
from repro.cc.transaction import (
    OperationRecord,
    Transaction,
    TransactionStatus,
    TxnId,
)
from repro.core.assertions import locality_dependency
from repro.core.conditions import ConditionContext
from repro.core.dependency import Dependency
from repro.core.table import CompatibilityTable
from repro.errors import DependencyCycleError, SchedulerError
from repro.graph.instrument import LocalityTrace
from repro.obs.events import (
    CascadeAborted,
    CommitWaited,
    DeadlockResolved,
    DependencyRecorded,
    ObjectRegistered,
    OpBlocked,
    OpGranted,
    OpRequested,
    TxnAborted,
    TxnBegun,
    TxnCommitted,
)
from repro.obs.conflict import ConflictProfile, ObjectConflictTracker
from repro.obs.tracers import NULL_TRACER, Tracer
from repro.perf.cache import ExecutionCache
from repro.perf.codegen import ConflictMatrix, compiled_execute
from repro.perf.flat_table import FlatTable
from repro.perf.shadow import ShadowStateIndex
from repro.spec.adt import ADTSpec, AbstractState, active_execution_cache
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ReturnValue

__all__ = ["OpDecision", "CommitDecision", "SchedulerStats", "TableDrivenScheduler"]


@dataclass(frozen=True)
class OpDecision:
    """Outcome of one operation request."""

    executed: bool
    returned: ReturnValue | None = None
    blocked_on: frozenset[TxnId] = frozenset()
    aborted: bool = False
    dependencies: tuple[tuple[TxnId, Dependency], ...] = ()


@dataclass(frozen=True)
class CommitDecision:
    """Outcome of a commit attempt."""

    committed: bool
    waiting_on: frozenset[TxnId] = frozenset()
    must_abort: bool = False


@dataclass
class SchedulerStats:
    """Counters the simulator and the benchmarks aggregate."""

    operations_executed: int = 0
    operations_blocked: int = 0
    ad_edges: int = 0
    cd_edges: int = 0
    nd_pairs: int = 0
    aborts: int = 0
    cascaded_aborts: int = 0
    deadlock_victims: int = 0
    commit_waits: int = 0
    #: Distinct block intervals begun (a blocked retry of an already
    #: blocked transaction counts in operations_blocked but not here).
    blocked_time_events: int = 0
    #: Non-trivial table-entry condition evaluations performed while
    #: resolving pair dependencies.
    condition_evaluations: int = 0
    #: Shadow certifications served from the incremental shadow-state
    #: index; each one replaces the full log replay the seed performed.
    shadow_replays_avoided: int = 0
    #: Shadow states (re)built by a full log replay (a transaction's
    #: first certification, or the first after an abort invalidation).
    shadow_full_replays: int = 0
    #: Condition contexts that reused the per-request pre-state graph
    #: instead of rebuilding it (the seed rebuilt one per pair).
    context_reuses: int = 0
    #: Blocking-policy pair verdicts reused from the admission preview
    #: instead of being recomputed after execution.
    preview_reuses: int = 0
    #: Pair checks settled by the flattened table's unconditional-ND
    #: bitset without building a condition context.
    nd_fast_path_hits: int = 0
    #: Shadow state transitions served by the compiled transition memo
    #: (``compiled=True`` only), skipping the execution cache's lock and
    #: key hashing; see :mod:`repro.perf.shadow`.
    compiled_memo_hits: int = 0

    #: Serving-layer sheds recorded against this scheduler's backend
    #: (``repro.serve``): overload drops (bounded queue / ladder reject),
    #: circuit-breaker sheds, deadline-exceeded sheds, and exhausted
    #: at-least-once retries.  Serving-only — never part of SEED_FIELDS
    #: (the bare harness has no admission queue to shed from).
    serve_shed_overload: int = 0
    serve_shed_breaker: int = 0
    serve_shed_deadline: int = 0
    serve_shed_retries: int = 0

    #: The counters the seed scheduler also maintains; parity with
    #: :class:`repro.cc.reference.ReferenceScheduler` is asserted on
    #: exactly these (the optimization counters above stay zero there).
    SEED_FIELDS = (
        "operations_executed",
        "operations_blocked",
        "ad_edges",
        "cd_edges",
        "nd_pairs",
        "aborts",
        "cascaded_aborts",
        "deadlock_victims",
        "commit_waits",
        "blocked_time_events",
        "condition_evaluations",
    )

    def seed_counters(self) -> dict[str, int]:
        """The seed-comparable slice of the counters."""
        return {name: getattr(self, name) for name in self.SEED_FIELDS}


class _DepEvidence(NamedTuple):
    """Provenance of one pair-dependency verdict, for the tracer.

    Carries the live ``Entry``/``Condition`` objects and renders only at
    emission time, so the un-traced path never builds strings.
    """

    executing: str
    entry: object | None
    condition: object | None
    source: str

    def render_entry(self) -> str:
        if self.entry is None:
            return ""
        return self.entry.render().replace("\n", "; ")

    def render_condition(self) -> str:
        if self.condition is None:
            return ""
        return self.condition.render()


_NO_EVIDENCE = _DepEvidence(executing="", entry=None, condition=None, source="table")

_SHADOW_EVIDENCE = _DepEvidence(
    executing="*", entry=None, condition=None, source="shadow-return"
)


class _PreGraph:
    """The pre-state object graph of one request, built at most once.

    Every pair iteration of a request evaluates its conditions against
    the same pre-state; the seed rebuilt the graph per pair.  The holder
    materialises it on first use and counts each subsequent reuse.
    """

    __slots__ = ("adt", "pre_state", "stats", "graph")

    def __init__(self, adt: ADTSpec, pre_state: AbstractState, stats) -> None:
        self.adt = adt
        self.pre_state = pre_state
        self.stats = stats
        self.graph = None

    def get(self):
        if self.graph is None:
            self.graph = self.adt.build_graph(self.pre_state)
        else:
            self.stats.context_reuses += 1
        return self.graph


class _PreviewVerdicts(NamedTuple):
    """Blocking-policy admission verdicts, reusable by the grant path.

    ``condition_evaluations`` per transaction record what recomputing the
    verdict would cost, so reusing it can keep the seed counter exact.
    """

    #: other txn -> (dependency, evidence, condition evaluations).
    verdicts: dict[TxnId, tuple[Dependency, _DepEvidence, int]]
    pre_graph: "_PreGraph"


@dataclass
class _RegisteredObject:
    shared: SharedObject
    table: CompatibilityTable
    flat: FlatTable
    #: Integer-id compilation of ``table`` (``compiled=True`` only).
    matrix: ConflictMatrix | None = None


class _TxnEntries:
    """One active peer transaction's logged operations, in log order.

    ``ids`` carries the matrix op id of each entry and ``mask`` their OR
    — so a whole peer transaction can be tested against the requested
    operation's unconditional-ND row in one integer operation.
    """

    __slots__ = ("entries", "ids", "mask")

    def __init__(self) -> None:
        self.entries: list[AppliedOperation] = []
        self.ids: list[int] = []
        self.mask = 0


class _PeerIndex:
    """Incrementally maintained active-peer entries of one shared object.

    Replaces the compiled scheduler's per-request log scan: appended on
    every grant, pruned when a transaction commits, and marked stale when
    an abort rewrites the log wholesale (the entries are replaced by
    fresh :class:`~repro.cc.objects.AppliedOperation` objects with new
    traces, so the index must rebuild from the authoritative log — the
    same epoch discipline the shadow index uses).
    """

    __slots__ = ("stale", "by_txn")

    def __init__(self) -> None:
        self.stale = True
        self.by_txn: dict[TxnId, _TxnEntries] = {}


class TableDrivenScheduler:
    """Scheduler over shared objects, driven by compatibility tables."""

    #: The disciplines an object can run under: the paper's two plus the
    #: serialize-everything fallback the adaptive serving layer switches
    #: churn-heavy objects into.
    POLICIES = ("optimistic", "blocking", "queued")

    def __init__(
        self,
        policy: str = "optimistic",
        tracer: Tracer | None = None,
        execution_cache: ExecutionCache | None = None,
        conflict_thresholds=None,
        compiled: bool = True,
    ) -> None:
        if policy not in self.POLICIES:
            raise SchedulerError(f"unknown policy {policy!r}")
        self.policy = policy
        #: Registration-time compilation (:mod:`repro.perf.codegen`):
        #: integer conflict matrices, the incremental peer index, codegen
        #: executors and the shadow transition memo.  ``False`` selects
        #: the PR 3 pure-Python reference structures — bit-identical
        #: transcripts either way (``tests/property/test_compiled_parity``).
        self.compiled = compiled
        #: Falsy NullTracer by default: emissions are guarded with
        #: ``if self.tracer:`` so untraced runs never build an event.
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        #: Logical timestamp stamped onto emitted events; drivers with a
        #: clock (the discrete-event simulator) keep it current.
        self.now: float = 0.0
        self.stats = SchedulerStats()
        #: Windowed per-object conflict telemetry (see
        #: :mod:`repro.obs.conflict`); always on — the hooks are integer
        #: increments — and never part of transcript/seed parity.
        self.conflict_window: int = 64
        #: Recommendation cutoffs stamped onto every object's tracker
        #: (``None`` keeps the documented defaults).
        self.conflict_thresholds = conflict_thresholds
        self._conflict: dict[str, ObjectConflictTracker] = {}
        #: Per-object policy overrides (adaptive serving layer); objects
        #: without an entry follow the scheduler-wide ``policy``.
        self._object_policy: dict[str, str] = {}
        #: ``listener(txn, status)`` callbacks fired whenever a
        #: transaction resolves (``"committed"`` / ``"aborted"``) — the
        #: serving loop's ready-callback hook.  Empty list = zero cost.
        self._resolution_listeners: list = []
        #: Memo for every scheduler-side ``execute_invocation`` (shadow
        #: replays and shadow-state maintenance).  Joins an installed
        #: process-wide cache when one is active, else owns a private one
        #: — the ``ensure_execution_cache`` idiom, held for the
        #: scheduler's lifetime.
        #: A privately owned cache runs the compiled executors on miss;
        #: an installed or caller-supplied cache is joined as-is (its
        #: miss handler is shared state this scheduler must not mutate —
        #: the values are bit-identical either way).
        self.execution_cache: ExecutionCache = (
            execution_cache
            if execution_cache is not None
            else (
                active_execution_cache()
                or ExecutionCache(
                    executor=compiled_execute if compiled else None
                )
            )
        )
        self._objects: dict[str, _RegisteredObject] = {}
        #: Per-object incremental peer index (``compiled=True`` only).
        self._peers: dict[str, _PeerIndex] = {}
        self._txns: dict[TxnId, Transaction] = {}
        self._deps = DependencyGraph()
        self._wait_for: dict[TxnId, set[TxnId]] = {}
        self._shadow = ShadowStateIndex(
            cache=self.execution_cache, stats=self.stats, compiled=compiled
        )
        self._next_txn: TxnId = 0
        self._sequence = 0
        self._commit_counter = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def register_object(
        self,
        name: str,
        adt: ADTSpec,
        table: CompatibilityTable,
        initial_state: AbstractState | None = None,
    ) -> SharedObject:
        """Attach a shared object and the table governing it.

        The table is flattened once, here, into the dict-indexed
        :class:`~repro.perf.flat_table.FlatTable` the hot path reads —
        and, when the scheduler runs compiled, additionally into the
        integer-id :class:`~repro.perf.codegen.ConflictMatrix`.
        """
        if name in self._objects:
            raise SchedulerError(f"object {name!r} already registered")
        shared = SharedObject(name, adt, initial_state)
        self._objects[name] = _RegisteredObject(
            shared=shared,
            table=table,
            flat=FlatTable.compile(table),
            matrix=ConflictMatrix.compile(table) if self.compiled else None,
        )
        if self.compiled:
            self._peers[name] = _PeerIndex()
        if self.conflict_thresholds is not None:
            self._conflict[name] = ObjectConflictTracker(
                object_name=name,
                window_size=self.conflict_window,
                thresholds=self.conflict_thresholds,
            )
        else:
            self._conflict[name] = ObjectConflictTracker(
                object_name=name, window_size=self.conflict_window
            )
        self._shadow.register(name)
        if self.tracer:
            self.tracer.emit(
                ObjectRegistered(
                    time=self.now,
                    object_name=name,
                    adt=adt.name,
                    initial_state=repr(shared.initial_state),
                )
            )
        return shared

    def object_names(self) -> list[str]:
        """Names of all registered shared objects, in registration order."""
        return list(self._objects)

    def object(self, name: str) -> SharedObject:
        """Look up a registered shared object."""
        return self._required(name).shared

    def begin(self) -> TxnId:
        """Start a new transaction."""
        txn_id = self._next_txn
        self._next_txn += 1
        self._txns[txn_id] = Transaction(txn_id=txn_id)
        if self.tracer:
            self.tracer.emit(TxnBegun(time=self.now, txn=txn_id))
        return txn_id

    def transaction(self, txn: TxnId) -> Transaction:
        """Look up a transaction."""
        try:
            return self._txns[txn]
        except KeyError:
            raise SchedulerError(f"unknown transaction {txn}") from None

    def active_transactions(self) -> set[TxnId]:
        """Ids of all currently active transactions."""
        return {tid for tid, txn in self._txns.items() if txn.is_active}

    def shadow_index(self) -> ShadowStateIndex:
        """The live shadow-state index (introspection for tests/tools)."""
        return self._shadow

    # ------------------------------------------------------------------
    # Operation requests
    # ------------------------------------------------------------------

    def request(
        self, txn: TxnId, object_name: str, invocation: Invocation
    ) -> OpDecision:
        """Ask to execute ``invocation`` on behalf of ``txn``.

        Returns an executed decision (with the return value and the
        dependencies recorded), a blocked decision (blocking policy, AD
        conflict), or an aborted decision (cycle/deadlock victim).

        The blocking-policy admission check retries iteratively after a
        deadlock victim is removed (the seed recursed, which deep victim
        chains could drive into the recursion limit).
        """
        preview: _PreviewVerdicts | None = None
        while True:
            transaction = self.transaction(txn)
            transaction.require_active()
            registered = self._required(object_name)
            shared = registered.shared
            conflict = self._conflict[object_name]
            conflict.note_request()
            if self.tracer:
                self.tracer.emit(
                    OpRequested(
                        time=self.now,
                        txn=txn,
                        object_name=object_name,
                        operation=invocation.operation,
                        args=repr(invocation.args),
                    )
                )

            mode = self._object_policy.get(object_name, self.policy)
            if mode != "optimistic":
                if mode == "blocking":
                    blockers, preview = self._blocking_conflicts(
                        txn, registered, invocation
                    )
                else:  # queued: serialize behind every active holder
                    blockers = self._queued_conflicts(txn, shared)
                    preview = None
                if blockers:
                    self.stats.operations_blocked += 1
                    conflict.note_block()
                    if txn not in self._wait_for:
                        self.stats.blocked_time_events += 1
                    self._wait_for[txn] = set(blockers)
                    victim = self._resolve_deadlock(txn)
                    if victim is not None:
                        # The victim's abort may have cascaded to the
                        # requester itself (an AD edge from earlier work).
                        if victim == txn or not self.transaction(txn).is_active:
                            return OpDecision(executed=False, aborted=True)
                        # The blocker was the victim; retry the request
                        # now that it is gone (the preview is stale).
                        preview = None
                        continue
                    if self.tracer:
                        self.tracer.emit(
                            OpBlocked(
                                time=self.now,
                                txn=txn,
                                object_name=object_name,
                                operation=invocation.operation,
                                args=repr(invocation.args),
                                blocked_on=tuple(sorted(blockers)),
                            )
                        )
                    return OpDecision(
                        executed=False, blocked_on=frozenset(blockers)
                    )
                self._wait_for.pop(txn, None)
            break

        pre_state = shared.state()
        applied = shared.execute(txn, invocation)
        recorded = self._record_dependencies(
            txn, registered, applied, pre_state, preview
        )
        if recorded is None:
            # A cycle: the requester becomes the victim.  Its executed
            # operation is rolled back with the rest of its effects.
            self.abort(txn, reason="dependency-cycle")
            return OpDecision(executed=False, aborted=True)
        # Only now does the shadow index learn about the grant: the
        # certification above must see every maintained state *without*
        # the entry it is certifying.
        self._shadow.note_execute(object_name, shared, applied)
        if self.compiled:
            self._note_peer_entry(object_name, registered, txn, applied)
        self.stats.operations_executed += 1
        self._conflict[object_name].note_grant()
        self._sequence += 1
        transaction.record(
            OperationRecord(
                object_name=object_name,
                invocation=invocation,
                returned=applied.returned,
                sequence=self._sequence,
            )
        )
        if self.tracer:
            self.tracer.emit(
                OpGranted(
                    time=self.now,
                    txn=txn,
                    object_name=object_name,
                    operation=invocation.operation,
                    args=repr(invocation.args),
                    outcome=applied.returned.outcome,
                    result=repr(applied.returned.result),
                    sequence=self._sequence,
                )
            )
        return OpDecision(
            executed=True, returned=applied.returned, dependencies=tuple(recorded)
        )

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------

    def try_commit(self, txn: TxnId) -> CommitDecision:
        """Attempt to commit ``txn`` under the dependency rules.

        AD/CD predecessors must be resolved first; an aborted AD
        predecessor forces this transaction to abort too (the caller sees
        ``must_abort`` and the abort has already been carried out).
        Retries iteratively after a commit-wait deadlock victim is
        removed (the seed recursed).
        """
        while True:
            transaction = self.transaction(txn)
            transaction.require_active()
            waiting = set()
            for earlier, dependency in self._deps.predecessors(txn).items():
                status = self.transaction(earlier).status
                if status is TransactionStatus.ACTIVE:
                    waiting.add(earlier)
                elif (
                    status is TransactionStatus.ABORTED
                    and dependency is Dependency.AD
                ):
                    self.abort(txn, reason="ad-predecessor-aborted")
                    return CommitDecision(committed=False, must_abort=True)
            if waiting:
                self.stats.commit_waits += 1
                # Commit waits participate in deadlock detection: a blocked
                # operation waiting on us while we commit-wait on it is a
                # genuine cycle and must be broken.
                self._wait_for[txn] = set(waiting)
                victim = self._resolve_deadlock(txn)
                if victim is not None:
                    if victim == txn or not self.transaction(txn).is_active:
                        return CommitDecision(committed=False, must_abort=True)
                    continue
                if self.tracer:
                    self.tracer.emit(
                        CommitWaited(
                            time=self.now,
                            txn=txn,
                            waiting_on=tuple(sorted(waiting)),
                        )
                    )
                return CommitDecision(
                    committed=False, waiting_on=frozenset(waiting)
                )
            transaction.status = TransactionStatus.COMMITTED
            self._commit_counter += 1
            transaction.commit_sequence = self._commit_counter
            self._wait_for.pop(txn, None)
            # Committed transactions are never certified against again;
            # their shadow states would only cost maintenance, and their
            # peer-index entries would only cost a skipped iteration.
            for name in self._objects:
                self._shadow.forget(name, txn)
                if self.compiled:
                    self._peers[name].by_txn.pop(txn, None)
            if self.tracer:
                self.tracer.emit(
                    TxnCommitted(
                        time=self.now, txn=txn, commit_sequence=self._commit_counter
                    )
                )
            if self._resolution_listeners:
                for listener in self._resolution_listeners:
                    listener(txn, "committed")
            return CommitDecision(committed=True)

    def abort(self, txn: TxnId, reason: str = "requested") -> set[TxnId]:
        """Abort ``txn``, cascading along AD edges.

        Returns the set of transactions aborted *in addition to* ``txn``.
        Replay recovery re-verifies surviving return values; invalidated
        survivors (impossible under a sound table) are aborted as well and
        included in the returned set.  ``reason`` labels the trigger in
        the emitted trace event.

        Replay-invalidated collateral is processed with an explicit
        work-list (depth-first, matching the order the former recursion
        produced) so a deep invalidation chain cannot exhaust the Python
        call stack.
        """
        transaction = self.transaction(txn)
        if transaction.is_aborted:
            return set()
        transaction.require_active()
        cascade, collateral = self._abort_once(txn, reason)
        stack = list(reversed(collateral))
        while stack:
            t = stack.pop()
            cascade.add(t)
            if self.transaction(t).is_aborted:
                continue
            extra, more = self._abort_once(t, "replay-invalidated")
            cascade |= extra
            stack.extend(reversed(more))
        return cascade

    def _abort_once(
        self, txn: TxnId, reason: str
    ) -> tuple[set[TxnId], list[TxnId]]:
        """Abort one active transaction plus its AD cascade, no follow-up.

        Returns ``(cascade, collateral)``: the AD-cascaded transactions
        aborted alongside ``txn``, and the still-active transactions whose
        logged return values the rollback replay invalidated (the caller's
        work-list processes those).
        """
        cascade = {
            t
            for t in self._deps.abort_cascade([txn])
            if self.transaction(t).is_active
        }
        all_aborting = {txn} | cascade
        for t in all_aborting:
            self._txns[t].status = TransactionStatus.ABORTED
            self._wait_for.pop(t, None)
            # Conflict telemetry: attribute the abort to the last object
            # the transaction touched (the same heuristic the offline
            # trace reconstruction uses).
            records = self._txns[t].records
            if records:
                tracker = self._conflict.get(records[-1].object_name)
                if tracker is not None:
                    tracker.note_abort()
        self.stats.aborts += len(all_aborting)
        self.stats.cascaded_aborts += len(cascade)
        if self._resolution_listeners:
            for t in sorted(all_aborting):
                for listener in self._resolution_listeners:
                    listener(t, "aborted")
        if self.tracer:
            self.tracer.emit(TxnAborted(time=self.now, txn=txn, reason=reason))
            for t in sorted(cascade):
                self.tracer.emit(CascadeAborted(time=self.now, txn=t, root=txn))
        collateral: set[TxnId] = set()
        for registered in self._objects.values():
            invalidated = registered.shared.remove_transactions(all_aborting)
            collateral |= {
                t for t in invalidated if self.transaction(t).is_active
            }
        # The rollback rewrote every object's log; every maintained
        # shadow state — and every peer-index entry, whose log objects
        # were replaced by the replay — is stale.  Epoch-invalidate and
        # rebuild lazily.
        self._shadow.invalidate()
        if self.compiled:
            for index in self._peers.values():
                index.stale = True
                index.by_txn = {}
        return cascade, list(collateral)

    # ------------------------------------------------------------------
    # Introspection for drivers
    # ------------------------------------------------------------------

    def waiting_on(self, txn: TxnId) -> set[TxnId]:
        """Transactions ``txn`` is currently blocked on (blocking policy)."""
        return set(self._wait_for.get(txn, set()))

    def dependency_graph(self) -> DependencyGraph:
        """The live inter-transaction dependency graph."""
        return self._deps

    def conflict_profiles(self) -> dict[str, "ConflictProfile"]:
        """Per-object windowed conflict profiles, keyed by object name.

        The published signal an adaptive blocking/optimistic/queued
        policy consumes (ROADMAP item 1); see :mod:`repro.obs.conflict`.
        """
        return {
            name: self._conflict[name].profile()
            for name in sorted(self._conflict)
        }

    def object_policy(self, name: str) -> str:
        """The discipline ``name`` currently runs under."""
        self._required(name)
        return self._object_policy.get(name, self.policy)

    def set_object_policy(self, name: str, policy: str) -> None:
        """Switch one object's discipline at a safe epoch boundary.

        Only legal while no active transaction has executed operations
        on the object: every decision already taken on it belongs to a
        resolved transaction, so the switch cannot retroactively change
        a dependency verdict and serializability is preserved (the
        adaptive property suite drives this across policies and seeds).
        """
        if policy not in self.POLICIES:
            raise SchedulerError(f"unknown policy {policy!r}")
        self._required(name)
        active = self.object_active_txns(name)
        if active:
            raise SchedulerError(
                f"cannot switch {name!r} to {policy!r}: transactions "
                f"{sorted(active)} are still active on it"
            )
        if policy == self.policy:
            self._object_policy.pop(name, None)
        else:
            self._object_policy[name] = policy

    def object_active_txns(self, name: str) -> set[TxnId]:
        """Active transactions with executed operations on ``name``.

        Empty exactly when the object is at a safe policy-switch
        boundary (see :meth:`set_object_policy`).
        """
        shared = self._required(name).shared
        return {
            entry.txn
            for entry in shared.log()
            if self._txns[entry.txn].is_active
        }

    def add_resolution_listener(self, listener) -> None:
        """Register ``listener(txn, status)`` for transaction resolutions.

        Fired once per transaction, with ``status`` ``"committed"`` or
        ``"aborted"`` — including cascade and deadlock victims resolved
        outside their own call, which is what lets a serving loop drain
        blocked work via callbacks instead of busy-retry.  With no
        listeners registered the scheduler takes no extra branches.
        """
        self._resolution_listeners.append(listener)

    def dependency_sets(self, txn: TxnId) -> tuple[frozenset, frozenset]:
        """``(abort-dependency, commit-dependency)`` predecessor sets of ``txn``.

        The 2PC piggybacking hook (:mod:`repro.dist`): a participant ships
        these with its PREPARE vote, and may only vote yes once every
        predecessor in either set has resolved locally — which is what
        carries the paper's AD/CD commit-ordering across nodes.
        """
        ad: set[TxnId] = set()
        cd: set[TxnId] = set()
        for earlier, dependency in self._deps.predecessors(txn).items():
            if dependency is Dependency.AD:
                ad.add(earlier)
            else:
                cd.add(earlier)
        return frozenset(ad), frozenset(cd)

    # ------------------------------------------------------------------
    # Quarantine (repro.robust invariant monitor)
    # ------------------------------------------------------------------

    def rebuild_fast_paths(self) -> None:
        """Drop and rebuild every derived fast-path structure.

        The quarantine rung of the robustness degradation ladder: the
        execution-cache entries are discarded (a poisoned entry cannot
        survive), every flat table is recompiled from its authoritative
        :class:`~repro.core.tables.CompatibilityTable`, and the shadow
        index is replaced by a fresh one whose states rebuild lazily from
        the (authoritative) object logs.  Nothing here touches
        transactions, dependency edges or logs, so scheduling decisions
        after a rebuild are exactly what they would have been had the
        fast paths never been corrupted.
        """
        self.execution_cache.clear()
        self._shadow = ShadowStateIndex(
            cache=self.execution_cache, stats=self.stats, compiled=self.compiled
        )
        for name, registered in self._objects.items():
            registered.flat = FlatTable.compile(registered.table)
            if self.compiled:
                registered.matrix = ConflictMatrix.compile(registered.table)
                self._peers[name] = _PeerIndex()
            self._shadow.register(name)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _required(self, name: str) -> _RegisteredObject:
        try:
            return self._objects[name]
        except KeyError:
            raise SchedulerError(f"object {name!r} is not registered") from None

    def _active_entries_by_txn(
        self, txn: TxnId, shared: SharedObject, skip: AppliedOperation | None
    ) -> dict[TxnId, list[AppliedOperation]]:
        """Log entries of every *other* active transaction, grouped.

        One pass over the log per request, instead of one per (pair ×
        log-scan) as in the seed.
        """
        by_txn: dict[TxnId, list[AppliedOperation]] = {}
        for entry in shared.log():
            if entry is skip or entry.txn == txn:
                continue
            by_txn.setdefault(entry.txn, []).append(entry)
        return {
            other: entries
            for other, entries in by_txn.items()
            if self.transaction(other).is_active
        }

    def _note_peer_entry(
        self,
        name: str,
        registered: _RegisteredObject,
        txn: TxnId,
        applied: AppliedOperation,
    ) -> None:
        """Append one granted operation to the object's peer index.

        Called *after* :meth:`_record_dependencies`, mirroring the shadow
        index: certification must never see the entry it is certifying,
        so a live index naturally lacks it.  A stale index skips the
        append — the next :meth:`_compiled_peers` rebuild picks the entry
        up from the authoritative log.
        """
        index = self._peers[name]
        if index.stale:
            return
        op_id = registered.matrix.op_id[applied.invocation.operation]
        peer = index.by_txn.get(txn)
        if peer is None:
            peer = index.by_txn[txn] = _TxnEntries()
        peer.entries.append(applied)
        peer.ids.append(op_id)
        peer.mask |= 1 << op_id

    def _compiled_peers(
        self, registered: _RegisteredObject, skip: AppliedOperation | None
    ) -> dict[TxnId, _TxnEntries]:
        """The object's peer index, rebuilt from the log if stale.

        Same grouping as :meth:`_active_entries_by_txn` (log order within
        each transaction, inactive transactions dropped) except that the
        requester's own entries are *included* — callers exclude the
        requesting transaction's key at iteration time, which lets the
        index be maintained incrementally instead of refiltered per
        request.  ``skip`` names the entry under certification, exactly
        as in a shadow rebuild.
        """
        index = self._peers[registered.shared.name]
        if index.stale:
            op_id = registered.matrix.op_id
            txns = self._txns
            by_txn: dict[TxnId, _TxnEntries] = {}
            for entry in registered.shared.log():
                if entry is skip:
                    continue
                t = entry.txn
                peer = by_txn.get(t)
                if peer is None:
                    if not txns[t].is_active:
                        continue
                    peer = by_txn[t] = _TxnEntries()
                oid = op_id[entry.invocation.operation]
                peer.entries.append(entry)
                peer.ids.append(oid)
                peer.mask |= 1 << oid
            index.by_txn = by_txn
            index.stale = False
        return index.by_txn

    def _pair_dependency(
        self,
        shared: SharedObject,
        flat: FlatTable,
        invocation: Invocation,
        returned: ReturnValue,
        trace: LocalityTrace,
        pre_graph: _PreGraph,
        other_entries: list[AppliedOperation],
        other_txn: TxnId,
        skip: AppliedOperation | None,
    ) -> tuple[Dependency, _DepEvidence]:
        """Dependency of the requested operation on one active transaction.

        Three sources of evidence, strongest verdict wins:

        1. the **static table** resolved with the runtime context — covers
           occupancy-level information flow (outcome conditions) that
           vertex localities cannot express;
        2. the **live locality intersection** — the paper's Section-4.3
           general rule applied at run time: the requested operation's
           trace against each of the other transaction's logged traces,
           mapped through Table 2.  Vertex ids are stable on the live
           graph, so this is provenance-exact (consuming a vertex another
           active transaction created is an AD even when the *value* would
           coincidentally be available elsewhere);
        3. the **shadow-return certification** — the requested operation is
           re-executed on the shadow state "log without the other
           transaction" (maintained incrementally by the
           :class:`~repro.perf.shadow.ShadowStateIndex`); a differing
           return value escalates to AD.

        Returns the verdict together with its provenance — which earlier
        operation, table entry, condition and evidence source were
        decisive — for the ``DependencyRecorded`` trace event.
        """
        verdict = Dependency.ND
        evidence = _NO_EVIDENCE
        stats = self.stats
        for earlier in other_entries:
            executing = earlier.invocation.operation
            if flat.is_unconditional_nd(invocation.operation, executing):
                # Full-state-space forward commutativity: the operations
                # can be swapped anywhere in any history, so the
                # (conservative) locality escalation is skipped —
                # otherwise two Deposits would be needlessly
                # commit-ordered for touching the same balance vertex.
                # (The integration suite verifies the commutativity
                # property for every unconditional ND cell of every
                # derived table; the shadow test below still runs.)
                stats.nd_fast_path_hits += 1
                continue
            entry = flat.entry(invocation.operation, executing)
            context = ConditionContext(
                first_invocation=earlier.invocation,
                second_invocation=invocation,
                pre_graph=pre_graph.get(),
                first_return=earlier.returned,
                second_return=returned,
            )
            if entry.is_conditional:
                stats.condition_evaluations += len(entry.pairs)
            resolved, held = entry.resolve_with_condition(context)
            from_locality = locality_dependency(earlier.trace, trace)
            pair_verdict = max(resolved, from_locality)
            if pair_verdict > verdict:
                verdict = pair_verdict
                evidence = _DepEvidence(
                    executing=executing,
                    entry=entry,
                    condition=held,
                    source="locality" if from_locality > resolved else "table",
                )
            if verdict is Dependency.AD:
                return Dependency.AD, evidence
        shadow = self._shadow.shadow_return(
            shared.name, shared, invocation, other_txn, skip
        )
        if shadow != returned:
            return Dependency.AD, _SHADOW_EVIDENCE
        return verdict, evidence

    def _pair_dependency_compiled(
        self,
        shared: SharedObject,
        matrix: ConflictMatrix,
        inv_id: int,
        invocation: Invocation,
        returned: ReturnValue,
        trace: LocalityTrace,
        pre_graph: _PreGraph,
        peer: _TxnEntries,
        other_txn: TxnId,
        skip: AppliedOperation | None,
    ) -> tuple[Dependency, _DepEvidence]:
        """:meth:`_pair_dependency` over the integer conflict matrix.

        Same three evidence sources, same verdicts, same counters — the
        parity suite holds the two paths bit-identical.  What changes is
        the cost model: the whole peer transaction is first tested
        against the requested operation's unconditional-ND row in one
        bitmask operation (settling the common no-conflict case with
        zero per-entry work), and the slow path indexes cells by integer
        id instead of hashing operation-name pairs.
        """
        stats = self.stats
        entries = peer.entries
        verdict = Dependency.ND
        evidence = _NO_EVIDENCE
        if matrix.all_nd(inv_id, peer.mask):
            # Every logged operation of the peer sits in an
            # unconditional-ND cell; account each entry's fast-path hit
            # exactly as the per-entry loop would.
            stats.nd_fast_path_hits += len(entries)
        else:
            codes = matrix.codes
            table_entries = matrix.entries
            row = inv_id * matrix.size
            nd_row = matrix.nd_rows[inv_id]
            conditional = ConflictMatrix.CONDITIONAL
            ids = peer.ids
            for position, earlier in enumerate(entries):
                oid = ids[position]
                if nd_row >> oid & 1:
                    stats.nd_fast_path_hits += 1
                    continue
                cell = row + oid
                entry = table_entries[cell]
                context = ConditionContext(
                    first_invocation=earlier.invocation,
                    second_invocation=invocation,
                    pre_graph=pre_graph.get(),
                    first_return=earlier.returned,
                    second_return=returned,
                )
                if codes[cell] == conditional:
                    stats.condition_evaluations += len(entry.pairs)
                resolved, held = entry.resolve_with_condition(context)
                from_locality = locality_dependency(earlier.trace, trace)
                pair_verdict = max(resolved, from_locality)
                if pair_verdict > verdict:
                    verdict = pair_verdict
                    evidence = _DepEvidence(
                        executing=earlier.invocation.operation,
                        entry=entry,
                        condition=held,
                        source="locality" if from_locality > resolved else "table",
                    )
                if verdict is Dependency.AD:
                    return Dependency.AD, evidence
        shadow = self._shadow.shadow_return(
            shared.name, shared, invocation, other_txn, skip
        )
        if shadow != returned:
            return Dependency.AD, _SHADOW_EVIDENCE
        return verdict, evidence

    def _record_dependencies(
        self,
        txn: TxnId,
        registered: _RegisteredObject,
        applied: AppliedOperation,
        pre_state: AbstractState,
        preview: _PreviewVerdicts | None,
    ) -> list[tuple[TxnId, Dependency]] | None:
        """Resolve and record dependencies against earlier active transactions.

        Returns the recorded (txn, dependency) pairs, or ``None`` when an
        edge would close a cycle (the caller aborts the requester).

        ``preview`` carries the blocking-policy admission verdicts of the
        same synchronous request: the preview state cannot have changed
        (admission and execution happen back to back, with no yield in
        between), so each verdict — and the condition-evaluation work it
        stands for — is reused rather than recomputed.
        """
        shared, flat = registered.shared, registered.flat
        conflict = self._conflict[shared.name]
        nd_fast_before = self.stats.nd_fast_path_hits
        compiled = self.compiled
        if compiled:
            by_txn = self._compiled_peers(registered, skip=applied)
            matrix = registered.matrix
            inv_id = matrix.op_id[applied.invocation.operation]
            others = sorted(t for t in by_txn if t != txn)
        else:
            by_txn = self._active_entries_by_txn(txn, shared, skip=applied)
            others = sorted(by_txn)
        pre_graph = (
            preview.pre_graph
            if preview is not None
            else _PreGraph(shared.adt, pre_state, self.stats)
        )
        recorded: list[tuple[TxnId, Dependency]] = []
        for other_txn in others:
            reused = preview.verdicts.get(other_txn) if preview else None
            if reused is not None:
                dependency, evidence, condition_evaluations = reused
                self.stats.preview_reuses += 1
                # Keep the seed counter exact: the seed re-evaluated the
                # conditions here; account the work the reuse displaced.
                self.stats.condition_evaluations += condition_evaluations
            elif compiled:
                dependency, evidence = self._pair_dependency_compiled(
                    shared,
                    matrix,
                    inv_id,
                    applied.invocation,
                    applied.returned,
                    applied.trace,
                    pre_graph,
                    by_txn[other_txn],
                    other_txn,
                    skip=applied,
                )
            else:
                dependency, evidence = self._pair_dependency(
                    shared,
                    flat,
                    applied.invocation,
                    applied.returned,
                    applied.trace,
                    pre_graph,
                    by_txn[other_txn],
                    other_txn,
                    skip=applied,
                )
            if dependency is Dependency.ND:
                self.stats.nd_pairs += 1
                conflict.note_dep("ND")
                continue
            try:
                self._deps.add(txn, other_txn, dependency)
            except DependencyCycleError:
                return None
            if dependency is Dependency.AD:
                self.stats.ad_edges += 1
            else:
                self.stats.cd_edges += 1
            conflict.note_dep(dependency.name)
            if self.tracer:
                self.tracer.emit(
                    DependencyRecorded(
                        time=self.now,
                        txn=txn,
                        other_txn=other_txn,
                        object_name=shared.name,
                        invoked=applied.invocation.operation,
                        executing=evidence.executing,
                        dependency=dependency.name,
                        entry=evidence.render_entry(),
                        condition=evidence.render_condition(),
                        source=evidence.source,
                    )
                )
            recorded.append((other_txn, dependency))
        conflict.add_nd_fast(self.stats.nd_fast_path_hits - nd_fast_before)
        return recorded

    def _blocking_conflicts(
        self,
        txn: TxnId,
        registered: _RegisteredObject,
        invocation: Invocation,
    ) -> tuple[set[TxnId], _PreviewVerdicts]:
        """Active transactions whose operations would form an AD with ours.

        Also returns every pair verdict computed along the way, keyed by
        transaction, for the grant path to reuse.
        """
        shared, flat = registered.shared, registered.flat
        nd_fast_before = self.stats.nd_fast_path_hits
        preview_returned, preview_trace = shared.preview_with_trace(invocation)
        pre_state = shared.state()
        compiled = self.compiled
        if compiled:
            by_txn = self._compiled_peers(registered, skip=None)
            matrix = registered.matrix
            inv_id = matrix.op_id[invocation.operation]
            others = sorted(t for t in by_txn if t != txn)
        else:
            by_txn = self._active_entries_by_txn(txn, shared, skip=None)
            others = sorted(by_txn)
        pre_graph = _PreGraph(shared.adt, pre_state, self.stats)
        blockers: set[TxnId] = set()
        verdicts: dict[TxnId, tuple[Dependency, _DepEvidence, int]] = {}
        for other_txn in others:
            evaluations_before = self.stats.condition_evaluations
            if compiled:
                dependency, evidence = self._pair_dependency_compiled(
                    shared,
                    matrix,
                    inv_id,
                    invocation,
                    preview_returned,
                    preview_trace,
                    pre_graph,
                    by_txn[other_txn],
                    other_txn,
                    skip=None,
                )
            else:
                dependency, evidence = self._pair_dependency(
                    shared,
                    flat,
                    invocation,
                    preview_returned,
                    preview_trace,
                    pre_graph,
                    by_txn[other_txn],
                    other_txn,
                    skip=None,
                )
            verdicts[other_txn] = (
                dependency,
                evidence,
                self.stats.condition_evaluations - evaluations_before,
            )
            if dependency is Dependency.AD:
                blockers.add(other_txn)
            elif dependency is Dependency.CD and self._deps.depends_transitively(
                other_txn, txn
            ):
                # The new commit-order edge would close a cycle (the other
                # transaction already depends on us).  Under the blocking
                # discipline we wait for it to resolve rather than abort.
                blockers.add(other_txn)
        self._conflict[shared.name].add_nd_fast(
            self.stats.nd_fast_path_hits - nd_fast_before
        )
        return blockers, _PreviewVerdicts(verdicts=verdicts, pre_graph=pre_graph)

    def _queued_conflicts(self, txn: TxnId, shared: SharedObject) -> set[TxnId]:
        """Every other *active* transaction holding operations on the object.

        The queued discipline serializes an object outright: a request
        waits until it is the only active transaction with executed
        operations there, regardless of what the compatibility table
        would allow.  No table entries are consulted and no preview is
        computed — once admitted, the requester records dependencies
        against an empty peer set, so queued access can never create an
        edge (or a cycle) on the object.  Wait-for bookkeeping and
        deadlock detection are shared with the blocking discipline.
        """
        return {
            other
            for other in shared.active_writers(txn)
            if self._txns[other].is_active
        }

    def _resolve_deadlock(self, start: TxnId) -> TxnId | None:
        """Break a wait-for cycle through ``start``, if there is one.

        The youngest member of the cycle (largest id) is aborted and
        returned; ``None`` means no cycle.
        """
        cycle = self._wait_cycle(start)
        if cycle is None:
            return None
        victim = max(cycle)  # the youngest transaction has the largest id
        self.stats.deadlock_victims += 1
        if self.tracer:
            self.tracer.emit(
                DeadlockResolved(
                    time=self.now, victim=victim, cycle=tuple(cycle)
                )
            )
        self.abort(victim, reason="deadlock-victim")
        return victim

    def _wait_cycle(self, start: TxnId) -> list[TxnId] | None:
        """Find a wait-for cycle through ``start``, as a list of members.

        Iterative depth-first traversal (the seed recursed, so wait-for
        chains longer than the interpreter's recursion limit would crash
        deadlock detection).  Visits blockers in the same order as the
        recursive formulation, so the cycle found — and therefore the
        victim chosen — is identical.
        """
        path: list[TxnId] = []
        on_path: set[TxnId] = set()
        #: Frame i is the pending-successor iterator whose yields become
        #: path depth i; exhausting it pops the node at depth i - 1.
        frames: list[Iterator[TxnId]] = [iter((start,))]
        while frames:
            node = next(frames[-1], None)
            if node is None:
                frames.pop()
                if path:
                    on_path.discard(path.pop())
                continue
            if node in on_path:
                return path[path.index(node):]
            path.append(node)
            on_path.add(node)
            frames.append(iter(self._wait_for.get(node, ())))
        return None

"""Discrete-event simulation of transactions over table-driven scheduling.

The paper argues (Section 4.4) that every refinement stage "produces a
compatibility table that offers more potential for concurrency among
operations".  The simulator makes that claim measurable: it replays a
fixed synthetic workload against a :class:`TableDrivenScheduler`
configured with a given compatibility table and reports
:class:`~repro.cc.metrics.RunMetrics`.

Determinism: the event loop is an ordinary heap-based discrete-event
simulation with seeded workload randomness and no wall-clock or OS-thread
dependence — deliberately so, because a Python thread demo would measure
the GIL rather than the table (see DESIGN.md §2 on this substitution).

Model:

* Each transaction is a scripted program (arrival time, operation steps
  with service times, commit or voluntary abort at the end).
* Infinitely many servers: the only source of waiting is conflict —
  blocked operations (blocking policy) and commit-order waits.
* Whenever any transaction resolves (commits or aborts), every stalled
  transaction retries its pending action.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.cc.metrics import RunMetrics
from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.transaction import TxnId
from repro.cc.workload import TransactionProgram, Workload
from repro.core.table import CompatibilityTable
from repro.errors import SchedulerError
from repro.obs.events import (
    CrashInduced,
    FaultInjected,
    RecoveryCompleted,
    RecoveryStarted,
    RestartsExhausted,
    RunCompleted,
    RunStarted,
)
from repro.obs.tracers import NULL_TRACER, Tracer
from repro.spec.adt import ADTSpec, AbstractState

__all__ = ["ObjectConfig", "SimulationConfig", "simulate", "simulate_with_scheduler"]


@dataclass(frozen=True)
class ObjectConfig:
    """One shared object of a simulated run."""

    adt: ADTSpec
    table: CompatibilityTable
    initial_state: AbstractState | None = None


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulated run.

    Single-object runs use ``adt``/``table``/``object_name``/
    ``initial_state`` directly; multi-object runs pass ``objects``, a
    mapping from object name to :class:`ObjectConfig`, and workload steps
    address objects by name.
    """

    adt: ADTSpec | None = None
    table: CompatibilityTable | None = None
    workload: Workload = None  # type: ignore[assignment]
    object_name: str = "shared"
    initial_state: AbstractState | None = None
    #: Multi-object mode: name -> ObjectConfig.  Mutually exclusive with
    #: the single-object fields above.
    objects: tuple[tuple[str, ObjectConfig], ...] = ()
    policy: str = "optimistic"
    #: Restart transactions aborted involuntarily (deadlock victims,
    #: cascades) as fresh transactions after a backoff, like a production
    #: scheduler would.  Voluntary aborts never restart.
    restart_aborted: bool = False
    #: Ceiling on restarts per program (prevents pathological livelock).
    max_restarts: int = 10
    #: Backoff before a restarted program re-arrives.
    restart_backoff: float = 0.5
    #: How the backoff grows with the restart count: ``"linear"``
    #: (``backoff * restarts``, the seed behaviour — default, preserving
    #: bit-parity with existing transcripts) or ``"exponential"``
    #: (``backoff * 2**(restarts-1)``, capped by ``max_restart_backoff``).
    restart_policy: str = "linear"
    #: Ceiling on one exponential backoff interval.
    max_restart_backoff: float = 30.0
    #: Safety valve: abort the run if the event loop exceeds this many
    #: events (a livelock would otherwise spin forever).
    max_events: int = 1_000_000
    #: Trace-event sink threaded through the scheduler; event timestamps
    #: are sim-clock times.  ``None`` means the zero-overhead NullTracer.
    tracer: Tracer | None = None
    #: Run the scheduler's compiled hot path (integer conflict matrices,
    #: codegen executors — :mod:`repro.perf.codegen`).  ``False`` selects
    #: the pure-Python reference structures; transcripts are bit-identical
    #: either way (``repro simulate --no-compiled`` flips this).
    compiled: bool = True
    #: Optional :class:`~repro.robust.faults.FaultPlan` (duck-typed, so
    #: ``repro.cc`` stays import-independent of ``repro.robust``)
    #: consulted at the named fault points.  ``None`` — and likewise an
    #: all-zero plan — leaves the run bit-identical to a fault-free one.
    fault_plan: object | None = None
    #: Optional wrapper applied to the freshly built scheduler before the
    #: run (e.g. ``LoggingScheduler``/``MonitoredScheduler``); crash
    #: faults require the wrapped scheduler to expose ``reincarnate()``.
    scheduler_wrapper: object | None = None


@dataclass(order=True)
class _Event:
    time: float
    tiebreak: int
    kind: str = field(compare=False)
    program_index: int = field(compare=False)
    #: Restart epoch the event belongs to; events from a previous life of
    #: a restarted program are ignored.
    epoch: int = field(compare=False, default=0)


@dataclass
class _ProgramState:
    program: TransactionProgram
    txn: TxnId | None = None
    next_step: int = 0
    blocked_since: float | None = None
    commit_wait_since: float | None = None
    stalled: bool = False  # waiting for some resolution to retry
    done: bool = False
    restarts: int = 0
    epoch: int = 0


def simulate(config: SimulationConfig) -> RunMetrics:
    """Run one workload under one table and return the metrics."""
    metrics, _ = simulate_with_scheduler(config)
    return metrics


def simulate_with_scheduler(
    config: SimulationConfig,
) -> tuple[RunMetrics, TableDrivenScheduler]:
    """Like :func:`simulate`, but also return the scheduler for inspection
    (serializability verification, dependency-graph examination)."""
    if config.restart_policy not in ("linear", "exponential"):
        raise SchedulerError(
            f"unknown restart policy {config.restart_policy!r}"
        )
    tracer = config.tracer if config.tracer is not None else NULL_TRACER
    scheduler = TableDrivenScheduler(
        policy=config.policy, tracer=tracer, compiled=config.compiled
    )
    if config.scheduler_wrapper is not None:
        scheduler = config.scheduler_wrapper(scheduler)
    plan = config.fault_plan
    if tracer:
        tracer.emit(RunStarted(time=0.0, policy=config.policy))
    if config.objects:
        if config.adt is not None or config.table is not None:
            raise SchedulerError(
                "pass either single-object fields or objects=, not both"
            )
        for name, object_config in config.objects:
            scheduler.register_object(
                name,
                object_config.adt,
                object_config.table,
                object_config.initial_state,
            )
    else:
        if config.adt is None or config.table is None:
            raise SchedulerError(
                "single-object runs need adt= and table= (or pass objects=)"
            )
        scheduler.register_object(
            config.object_name, config.adt, config.table, config.initial_state
        )
    metrics = RunMetrics()
    states = [_ProgramState(program=program) for program in config.workload.programs]
    counter = itertools.count()
    queue: list[_Event] = []
    clock = 0.0

    def push(time: float, kind: str, index: int) -> None:
        heapq.heappush(
            queue,
            _Event(time, next(counter), kind, index, states[index].epoch),
        )

    def restart_delay(restarts: int) -> float:
        if config.restart_policy == "exponential":
            return min(
                config.restart_backoff * (2 ** (restarts - 1)),
                config.max_restart_backoff,
            )
        return config.restart_backoff * restarts

    def emit_fault(now: float, kind: str, txn: TxnId = -1, detail: str = "") -> None:
        if tracer:
            tracer.emit(
                FaultInjected(time=now, kind=kind, txn=txn, detail=detail)
            )

    def inject_event_faults(now: float) -> None:
        """Between-event faults: cache poisoning and scheduler crashes."""
        nonlocal scheduler
        mode = plan.cache_poison()
        if mode:
            cache = getattr(scheduler, "execution_cache", None)
            if cache is not None:
                if mode == "evict":
                    cache.chaos_evict()
                else:
                    cache.chaos_corrupt()
            # The compiled transition memo fronts the cache with the same
            # class of derived record; drop it so the poison is reachable
            # (otherwise memo hits would shield every future read).
            shadow = getattr(scheduler, "shadow_index", None)
            if shadow is not None:
                shadow().chaos_drop_memo()
            emit_fault(now, "cache_poison", detail=mode)
        if plan.crash() and hasattr(scheduler, "reincarnate"):
            emit_fault(now, "crash")
            records = len(scheduler.log)
            if tracer:
                tracer.emit(CrashInduced(time=now, log_records=records))
                tracer.emit(RecoveryStarted(time=now, log_records=records))
            scheduler = scheduler.reincarnate()
            if tracer:
                tracer.emit(RecoveryCompleted(time=now, replayed=records))
            stats = getattr(plan, "stats", None)
            if stats is not None:
                stats.recoveries += 1

    def wake_stalled(now: float) -> None:
        """Retry every stalled program after a resolution."""
        for index, state in enumerate(states):
            if state.stalled and not state.done:
                state.stalled = False
                push(now, "retry", index)

    def credit_blocked(state: _ProgramState, now: float) -> None:
        """Close an open blocked interval and account its duration."""
        if state.blocked_since is not None:
            duration = now - state.blocked_since
            metrics.total_blocked_time += duration
            metrics.blocked_durations.append(duration)
            state.blocked_since = None

    def credit_commit_wait(state: _ProgramState, now: float) -> None:
        """Close an open commit-wait interval and account its duration."""
        if state.commit_wait_since is not None:
            duration = now - state.commit_wait_since
            metrics.total_commit_wait_time += duration
            metrics.commit_wait_durations.append(duration)
            state.commit_wait_since = None

    def finish(state: _ProgramState, now: float, committed: bool) -> None:
        if state.done:
            return
        state.done = True
        credit_blocked(state, now)
        credit_commit_wait(state, now)
        if committed:
            metrics.committed += 1
            metrics.total_response_time += now - state.program.arrival
            metrics.txn_latencies.append(now - state.program.arrival)
        else:
            metrics.aborted += 1
        wake_stalled(now)

    def resolve_abort(state: _ProgramState, now: float) -> None:
        """Handle an involuntary abort: restart when configured, else finish."""
        if state.done or state.txn is None:
            # txn is None when settle_collaterals already restarted this
            # program inside the current attempt; a second resolve here
            # would double-count the restart and re-bump the epoch.
            return
        if config.restart_aborted and not state.program.voluntary_abort:
            if state.restarts < config.max_restarts:
                state.restarts += 1
                state.epoch += 1
                metrics.restarts += 1
                credit_blocked(state, now)
                credit_commit_wait(state, now)
                state.txn = None
                state.next_step = 0
                state.stalled = False
                index = states.index(state)
                push(now + restart_delay(state.restarts), "arrive", index)
                wake_stalled(now)
                return
            # The restart ceiling: the program stops being retried.  Count
            # and trace it — a silently dropped program is a livelock
            # symptom no one can observe.
            metrics.restarts_exhausted += 1
            if tracer:
                tracer.emit(
                    RestartsExhausted(
                        time=now, txn=state.txn, restarts=state.restarts
                    )
                )
        finish(state, now, committed=False)

    def settle_collaterals(now: float) -> None:
        """Handle programs whose transactions were aborted by cascades."""
        for state in states:
            if state.done or state.txn is None:
                continue
            if scheduler.transaction(state.txn).is_aborted:
                resolve_abort(state, now)

    def attempt_step(index: int, now: float) -> None:
        state = states[index]
        if state.done:
            return
        assert state.txn is not None
        scheduler.now = now
        if scheduler.transaction(state.txn).is_aborted:
            resolve_abort(state, now)
            return
        if state.next_step >= len(state.program.steps):
            attempt_commit(index, now)
            return
        if plan and plan.spurious_abort(state.txn):
            emit_fault(now, "spurious_abort", txn=state.txn)
            scheduler.abort(state.txn, reason="fault-injected")
            credit_blocked(state, now)
            resolve_abort(state, now)
            settle_collaterals(now)
            return
        if plan and plan.op_failure(state.txn):
            # Transient execution failure: retry the same step after the
            # plan's retry delay.
            emit_fault(now, "op_failure", txn=state.txn)
            push(now + plan.spec.op_failure_retry_delay, "retry", index)
            return
        step = state.program.steps[state.next_step]
        decision = scheduler.request(state.txn, step.object_name, step.invocation)
        # A deadlock victim may have been aborted inside request(); settle
        # such programs now so they are woken and accounted for.
        settle_collaterals(now)
        if decision.aborted:
            credit_blocked(state, now)
            resolve_abort(state, now)
            settle_collaterals(now)
            return
        if not decision.executed:
            if state.blocked_since is None:
                state.blocked_since = now
            state.stalled = True
            return
        credit_blocked(state, now)
        state.next_step += 1
        metrics.total_service_time += step.service_time
        push(now + step.service_time, "step", index)

    def attempt_commit(index: int, now: float) -> None:
        state = states[index]
        assert state.txn is not None
        scheduler.now = now
        if state.program.voluntary_abort:
            scheduler.abort(state.txn, reason="requested")
            finish(state, now, committed=False)
            settle_collaterals(now)
            return
        if plan:
            delay = plan.commit_delay(state.txn)
            if delay is not None:
                emit_fault(now, "commit_delay", txn=state.txn)
                if state.commit_wait_since is None:
                    state.commit_wait_since = now
                push(now + delay, "retry", index)
                return
        decision = scheduler.try_commit(state.txn)
        # A commit-wait deadlock victim may have been aborted inside
        # try_commit regardless of the outcome; settle such programs so
        # they are woken and accounted for.
        settle_collaterals(now)
        if decision.committed:
            finish(state, now, committed=True)
        elif decision.must_abort:
            resolve_abort(state, now)
        else:
            if state.commit_wait_since is None:
                state.commit_wait_since = now
            state.stalled = True

    for index, state in enumerate(states):
        push(state.program.arrival, "arrive", index)

    events_processed = 0
    while queue:
        events_processed += 1
        if events_processed > config.max_events:
            raise SchedulerError(
                f"simulation exceeded {config.max_events} events (livelock?)"
            )
        event = heapq.heappop(queue)
        clock = max(clock, event.time)
        state = states[event.program_index]
        if state.done or event.epoch != state.epoch:
            continue
        if plan:
            inject_event_faults(event.time)
        if event.kind == "arrive":
            scheduler.now = event.time
            state.txn = scheduler.begin()
            attempt_step(event.program_index, event.time)
        elif event.kind in ("step", "retry"):
            attempt_step(event.program_index, event.time)

    # Any program still stalled at queue exhaustion is deadlocked-by-model;
    # a correct scheduler never leaves one (progress argument: dependency
    # edges point backwards in execution time).
    leftovers = [state for state in states if not state.done]
    if leftovers:
        raise SchedulerError(
            f"{len(leftovers)} transactions neither committed nor aborted"
        )

    metrics.makespan = clock
    metrics.scheduler = scheduler.stats
    # getattr: after a degraded crash recovery the live scheduler may be
    # the reference implementation, which has no execution cache.
    metrics.execution_cache = getattr(scheduler, "execution_cache", None)
    # getattr for the same reason: the reference scheduler used after a
    # degraded recovery tracks no conflict profiles.
    profiles = getattr(scheduler, "conflict_profiles", None)
    if callable(profiles):
        metrics.conflict_profiles = profiles()
    if plan is not None:
        metrics.robust = getattr(plan, "stats", None)
    else:
        metrics.robust = getattr(scheduler, "robust_stats", None)
    if tracer:
        tracer.emit(
            RunCompleted(
                time=clock,
                committed=metrics.committed,
                aborted=metrics.aborted,
                final_states=tuple(
                    (name, repr(scheduler.object(name).state()))
                    for name in scheduler.object_names()
                ),
            )
        )
    return metrics, scheduler

"""The seed-commit reference scheduler, retained verbatim as an oracle.

This module freezes the :class:`TableDrivenScheduler` exactly as it stood
before the hot-path optimization (incremental shadow states, per-request
context reuse, preview-verdict memoization, flattened table lookup — see
:mod:`repro.cc.scheduler` and ``docs/PERFORMANCE.md``).  It replays the
full operation log per certification, rebuilds the pre-state object graph
per pair, and recomputes blocking-policy verdicts after execution — the
O(active × log × replay) behaviour the optimized scheduler must reproduce
decision-for-decision while avoiding the work.

Two consumers:

* the parity property tests drive identical workloads through both
  schedulers and assert bit-identical decision sequences, dependency
  edges, final object states and (shared) counters;
* ``benchmarks/bench_scheduler_throughput.py`` measures the optimized
  scheduler's speedup against this implementation and records it in
  ``BENCH_scheduler.json``.

Do not "fix" or optimize this copy: its value is that it does not change.
The original module docstring follows.

----

The point of the paper's compatibility tables is to drive concurrency
control; this scheduler consumes a derived
:class:`~repro.core.table.CompatibilityTable` per shared object and
implements two classic disciplines over it:

* **optimistic** (recoverability-style, after [Badrinath & Ramamritham]):
  operations execute immediately; the entry resolved for each pair of
  operations by different active transactions is recorded as an AD/CD edge
  in the dependency graph.  Commit waits for predecessors; aborts cascade
  along AD edges.  A dependency that would close a cycle aborts the
  requesting transaction (the dynamic equivalent of a deadlock victim).
* **blocking** (pessimistic, lock-table style): before executing, the
  requesting operation is checked against every operation of every other
  active transaction on the object; an AD verdict blocks the requester
  until the holder resolves.  CD verdicts only record commit-order edges.
  Wait-for cycles are detected and broken by aborting the youngest
  transaction.

Conditional entries are resolved with exactly the dynamic information the
paper appeals to: the live object graph (for reference predicates such as
``f ≠ b``), the earlier operation's recorded return value, and — where the
entry is conditional on the requester's own outcome — a deterministic
preview of that outcome against the current state.

State-dependent conditions are validated at derivation time on *adjacent*
executions, which does not compose across intervening operations (see
DESIGN.md §4b.5), so every non-AD verdict is additionally **certified**
before being trusted: by the live locality intersection of the actual
traces (the paper's Section-4.3 general rule, Table 2 over stable vertex
ids) and by a shadow-replay return test.  Unconditional ND entries —
full-state-space commutativity, which is composable — skip the locality
escalation.  See :meth:`TableDrivenScheduler._pair_dependency`.

A third discipline, commit-time validation over intentions lists, lives
in :mod:`repro.cc.validation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.cc.dependencies import DependencyGraph
from repro.cc.objects import AppliedOperation, SharedObject
from repro.cc.transaction import (
    OperationRecord,
    Transaction,
    TransactionStatus,
    TxnId,
)
from repro.core.assertions import locality_dependency
from repro.core.conditions import ConditionContext
from repro.core.dependency import Dependency
from repro.core.table import CompatibilityTable
from repro.errors import DependencyCycleError, SchedulerError
from repro.graph.instrument import LocalityTrace
from repro.obs.events import (
    CascadeAborted,
    CommitWaited,
    DeadlockResolved,
    DependencyRecorded,
    ObjectRegistered,
    OpBlocked,
    OpGranted,
    OpRequested,
    TxnAborted,
    TxnBegun,
    TxnCommitted,
)
from repro.obs.tracers import NULL_TRACER, Tracer
from repro.spec.adt import ADTSpec, AbstractState
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ReturnValue

__all__ = ["ReferenceScheduler"]

# The decision and stats types are shared with the optimized scheduler so
# the parity tests compare transcripts by value.  The optimized
# scheduler's extra counters simply stay zero here.
from repro.cc.scheduler import (  # noqa: E402  (import after docstring block)
    CommitDecision,
    OpDecision,
    SchedulerStats,
)


class _DepEvidence(NamedTuple):
    """Provenance of one pair-dependency verdict, for the tracer.

    Carries the live ``Entry``/``Condition`` objects and renders only at
    emission time, so the un-traced path never builds strings.
    """

    executing: str
    entry: object | None
    condition: object | None
    source: str

    def render_entry(self) -> str:
        if self.entry is None:
            return ""
        return self.entry.render().replace("\n", "; ")

    def render_condition(self) -> str:
        if self.condition is None:
            return ""
        return self.condition.render()


_NO_EVIDENCE = _DepEvidence(executing="", entry=None, condition=None, source="table")


@dataclass
class _RegisteredObject:
    shared: SharedObject
    table: CompatibilityTable


class ReferenceScheduler:
    """The seed scheduler, byte-for-byte in behaviour (see module docstring)."""

    def __init__(
        self, policy: str = "optimistic", tracer: Tracer | None = None
    ) -> None:
        if policy not in ("optimistic", "blocking"):
            raise SchedulerError(f"unknown policy {policy!r}")
        self.policy = policy
        #: Falsy NullTracer by default: emissions are guarded with
        #: ``if self.tracer:`` so untraced runs never build an event.
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        #: Logical timestamp stamped onto emitted events; drivers with a
        #: clock (the discrete-event simulator) keep it current.
        self.now: float = 0.0
        self.stats = SchedulerStats()
        self._objects: dict[str, _RegisteredObject] = {}
        self._txns: dict[TxnId, Transaction] = {}
        self._deps = DependencyGraph()
        self._wait_for: dict[TxnId, set[TxnId]] = {}
        self._next_txn: TxnId = 0
        self._sequence = 0
        self._commit_counter = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def register_object(
        self,
        name: str,
        adt: ADTSpec,
        table: CompatibilityTable,
        initial_state: AbstractState | None = None,
    ) -> SharedObject:
        """Attach a shared object and the table governing it."""
        if name in self._objects:
            raise SchedulerError(f"object {name!r} already registered")
        shared = SharedObject(name, adt, initial_state)
        self._objects[name] = _RegisteredObject(shared=shared, table=table)
        if self.tracer:
            self.tracer.emit(
                ObjectRegistered(
                    time=self.now,
                    object_name=name,
                    adt=adt.name,
                    initial_state=repr(shared.initial_state),
                )
            )
        return shared

    def object_names(self) -> list[str]:
        """Names of all registered shared objects, in registration order."""
        return list(self._objects)

    def object(self, name: str) -> SharedObject:
        """Look up a registered shared object."""
        return self._required(name).shared

    def begin(self) -> TxnId:
        """Start a new transaction."""
        txn_id = self._next_txn
        self._next_txn += 1
        self._txns[txn_id] = Transaction(txn_id=txn_id)
        if self.tracer:
            self.tracer.emit(TxnBegun(time=self.now, txn=txn_id))
        return txn_id

    def transaction(self, txn: TxnId) -> Transaction:
        """Look up a transaction."""
        try:
            return self._txns[txn]
        except KeyError:
            raise SchedulerError(f"unknown transaction {txn}") from None

    def active_transactions(self) -> set[TxnId]:
        """Ids of all currently active transactions."""
        return {tid for tid, txn in self._txns.items() if txn.is_active}

    # ------------------------------------------------------------------
    # Operation requests
    # ------------------------------------------------------------------

    def request(
        self, txn: TxnId, object_name: str, invocation: Invocation
    ) -> OpDecision:
        """Ask to execute ``invocation`` on behalf of ``txn``.

        Returns an executed decision (with the return value and the
        dependencies recorded), a blocked decision (blocking policy, AD
        conflict), or an aborted decision (cycle/deadlock victim).
        """
        transaction = self.transaction(txn)
        transaction.require_active()
        registered = self._required(object_name)
        shared, table = registered.shared, registered.table
        if self.tracer:
            self.tracer.emit(
                OpRequested(
                    time=self.now,
                    txn=txn,
                    object_name=object_name,
                    operation=invocation.operation,
                    args=repr(invocation.args),
                )
            )

        if self.policy == "blocking":
            blockers = self._blocking_conflicts(txn, shared, table, invocation)
            if blockers:
                self.stats.operations_blocked += 1
                if txn not in self._wait_for:
                    self.stats.blocked_time_events += 1
                self._wait_for[txn] = set(blockers)
                victim = self._resolve_deadlock(txn)
                if victim is not None:
                    # The victim's abort may have cascaded to the
                    # requester itself (an AD edge from earlier work).
                    if victim == txn or not self.transaction(txn).is_active:
                        return OpDecision(executed=False, aborted=True)
                    # The blocker was the victim; fall through and retry
                    # the request now that it is gone.
                    return self.request(txn, object_name, invocation)
                if self.tracer:
                    self.tracer.emit(
                        OpBlocked(
                            time=self.now,
                            txn=txn,
                            object_name=object_name,
                            operation=invocation.operation,
                            args=repr(invocation.args),
                            blocked_on=tuple(sorted(blockers)),
                        )
                    )
                return OpDecision(executed=False, blocked_on=frozenset(blockers))
            self._wait_for.pop(txn, None)

        pre_state = shared.state()
        applied = shared.execute(txn, invocation)
        recorded = self._record_dependencies(
            txn, shared, table, applied, pre_state
        )
        if recorded is None:
            # A cycle: the requester becomes the victim.  Its executed
            # operation is rolled back with the rest of its effects.
            self.abort(txn, reason="dependency-cycle")
            return OpDecision(executed=False, aborted=True)
        self.stats.operations_executed += 1
        self._sequence += 1
        transaction.record(
            OperationRecord(
                object_name=object_name,
                invocation=invocation,
                returned=applied.returned,
                sequence=self._sequence,
            )
        )
        if self.tracer:
            self.tracer.emit(
                OpGranted(
                    time=self.now,
                    txn=txn,
                    object_name=object_name,
                    operation=invocation.operation,
                    args=repr(invocation.args),
                    outcome=applied.returned.outcome,
                    result=repr(applied.returned.result),
                    sequence=self._sequence,
                )
            )
        return OpDecision(
            executed=True, returned=applied.returned, dependencies=tuple(recorded)
        )

    # ------------------------------------------------------------------
    # Commit / abort
    # ------------------------------------------------------------------

    def try_commit(self, txn: TxnId) -> CommitDecision:
        """Attempt to commit ``txn`` under the dependency rules.

        AD/CD predecessors must be resolved first; an aborted AD
        predecessor forces this transaction to abort too (the caller sees
        ``must_abort`` and the abort has already been carried out).
        """
        transaction = self.transaction(txn)
        transaction.require_active()
        waiting = set()
        for earlier, dependency in self._deps.predecessors(txn).items():
            status = self.transaction(earlier).status
            if status is TransactionStatus.ACTIVE:
                waiting.add(earlier)
            elif status is TransactionStatus.ABORTED and dependency is Dependency.AD:
                self.abort(txn, reason="ad-predecessor-aborted")
                return CommitDecision(committed=False, must_abort=True)
        if waiting:
            self.stats.commit_waits += 1
            # Commit waits participate in deadlock detection: a blocked
            # operation waiting on us while we commit-wait on it is a
            # genuine cycle and must be broken.
            self._wait_for[txn] = set(waiting)
            victim = self._resolve_deadlock(txn)
            if victim is not None:
                if victim == txn or not self.transaction(txn).is_active:
                    return CommitDecision(committed=False, must_abort=True)
                return self.try_commit(txn)
            if self.tracer:
                self.tracer.emit(
                    CommitWaited(
                        time=self.now,
                        txn=txn,
                        waiting_on=tuple(sorted(waiting)),
                    )
                )
            return CommitDecision(committed=False, waiting_on=frozenset(waiting))
        transaction.status = TransactionStatus.COMMITTED
        self._commit_counter += 1
        transaction.commit_sequence = self._commit_counter
        self._wait_for.pop(txn, None)
        if self.tracer:
            self.tracer.emit(
                TxnCommitted(
                    time=self.now, txn=txn, commit_sequence=self._commit_counter
                )
            )
        return CommitDecision(committed=True)

    def abort(self, txn: TxnId, reason: str = "requested") -> set[TxnId]:
        """Abort ``txn``, cascading along AD edges.

        Returns the set of transactions aborted *in addition to* ``txn``.
        Replay recovery re-verifies surviving return values; invalidated
        survivors (impossible under a sound table) are aborted as well and
        included in the returned set.  ``reason`` labels the trigger in
        the emitted trace event.
        """
        transaction = self.transaction(txn)
        if transaction.is_aborted:
            return set()
        transaction.require_active()
        cascade = {
            t
            for t in self._deps.abort_cascade([txn])
            if self.transaction(t).is_active
        }
        all_aborting = {txn} | cascade
        for t in all_aborting:
            self._txns[t].status = TransactionStatus.ABORTED
            self._wait_for.pop(t, None)
        self.stats.aborts += len(all_aborting)
        self.stats.cascaded_aborts += len(cascade)
        if self.tracer:
            self.tracer.emit(TxnAborted(time=self.now, txn=txn, reason=reason))
            for t in sorted(cascade):
                self.tracer.emit(CascadeAborted(time=self.now, txn=t, root=txn))
        collateral: set[TxnId] = set()
        for registered in self._objects.values():
            invalidated = registered.shared.remove_transactions(all_aborting)
            collateral |= {
                t for t in invalidated if self.transaction(t).is_active
            }
        for t in collateral:
            cascade |= {t} | self.abort(t, reason="replay-invalidated")
        return cascade

    # ------------------------------------------------------------------
    # Introspection for drivers
    # ------------------------------------------------------------------

    def waiting_on(self, txn: TxnId) -> set[TxnId]:
        """Transactions ``txn`` is currently blocked on (blocking policy)."""
        return set(self._wait_for.get(txn, set()))

    def dependency_graph(self) -> DependencyGraph:
        """The live inter-transaction dependency graph."""
        return self._deps

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _required(self, name: str) -> _RegisteredObject:
        try:
            return self._objects[name]
        except KeyError:
            raise SchedulerError(f"object {name!r} is not registered") from None

    def _context(
        self,
        shared: SharedObject,
        earlier: AppliedOperation,
        invocation: Invocation,
        pre_state: AbstractState,
        second_return: ReturnValue | None,
    ) -> ConditionContext:
        """Runtime condition context for an (earlier, requested) pair.

        Reference predicates are evaluated on the object state just before
        the requested operation runs — the scheduler's dynamic reading of
        the paper's "before the operations are executed".
        """
        return ConditionContext(
            first_invocation=earlier.invocation,
            second_invocation=invocation,
            pre_graph=shared.adt.build_graph(pre_state),
            first_return=earlier.returned,
            second_return=second_return,
        )

    def _shadow_return(
        self,
        shared: SharedObject,
        invocation: Invocation,
        exclude_txn: TxnId,
        skip: AppliedOperation | None = None,
    ) -> ReturnValue:
        """The return value ``invocation`` would produce had ``exclude_txn``
        never run: replay the log without its entries, then execute.

        The certification step that makes the table-driven decisions sound
        under interleaving: a static ND/CD verdict is only trusted when the
        requested operation's return value is provably independent of the
        other transaction's presence — exactly the information-flow test
        that abort-dependencies exist to protect.
        """
        from repro.spec.adt import execute_invocation

        state = shared.initial_state
        for entry in shared.log():
            if entry is skip or entry.txn == exclude_txn:
                continue
            state = execute_invocation(
                shared.adt, state, entry.invocation
            ).post_state
        return execute_invocation(shared.adt, state, invocation).returned

    def _pair_dependency(
        self,
        shared: SharedObject,
        table: CompatibilityTable,
        invocation: Invocation,
        returned: ReturnValue,
        trace: LocalityTrace,
        pre_state: AbstractState,
        other_txn: TxnId,
        skip: AppliedOperation | None,
    ) -> tuple[Dependency, _DepEvidence]:
        """Dependency of the requested operation on one active transaction.

        Three sources of evidence, strongest verdict wins:

        1. the **static table** resolved with the runtime context — covers
           occupancy-level information flow (outcome conditions) that
           vertex localities cannot express;
        2. the **live locality intersection** — the paper's Section-4.3
           general rule applied at run time: the requested operation's
           trace against each of the other transaction's logged traces,
           mapped through Table 2.  Vertex ids are stable on the live
           graph, so this is provenance-exact (consuming a vertex another
           active transaction created is an AD even when the *value* would
           coincidentally be available elsewhere);
        3. the **shadow-return certification** — the requested operation is
           re-executed on a replay of the log without the other
           transaction; a differing return value escalates to AD.

        Returns the verdict together with its provenance — which earlier
        operation, table entry, condition and evidence source were
        decisive — for the ``DependencyRecorded`` trace event.
        """
        verdict = Dependency.ND
        evidence = _NO_EVIDENCE
        for earlier in shared.log():
            if earlier is skip or earlier.txn != other_txn:
                continue
            entry = table.entry(
                invocation.operation, earlier.invocation.operation
            )
            context = self._context(
                shared, earlier, invocation, pre_state, returned
            )
            is_conditional = entry.is_conditional
            if is_conditional:
                self.stats.condition_evaluations += len(entry.pairs)
            resolved, held = entry.resolve_with_condition(context)
            if resolved is Dependency.ND and not is_conditional:
                # An unconditional ND is full-state-space forward
                # commutativity: the operations can be swapped anywhere in
                # any history, so the (conservative) locality escalation is
                # skipped — otherwise two Deposits would be needlessly
                # commit-ordered for touching the same balance vertex.
                # (The integration suite verifies the commutativity
                # property for every unconditional ND cell of every
                # derived table; the shadow test below still runs.)
                continue
            from_locality = locality_dependency(earlier.trace, trace)
            pair_verdict = max(resolved, from_locality)
            if pair_verdict > verdict:
                verdict = pair_verdict
                evidence = _DepEvidence(
                    executing=earlier.invocation.operation,
                    entry=entry,
                    condition=held,
                    source="locality" if from_locality > resolved else "table",
                )
            if verdict is Dependency.AD:
                return Dependency.AD, evidence
        shadow = self._shadow_return(shared, invocation, other_txn, skip)
        if shadow != returned:
            return Dependency.AD, _DepEvidence(
                executing="*", entry=None, condition=None, source="shadow-return"
            )
        return verdict, evidence

    def _record_dependencies(
        self,
        txn: TxnId,
        shared: SharedObject,
        table: CompatibilityTable,
        applied: AppliedOperation,
        pre_state: AbstractState,
    ) -> list[tuple[TxnId, Dependency]] | None:
        """Resolve and record dependencies against earlier active transactions.

        Returns the recorded (txn, dependency) pairs, or ``None`` when an
        edge would close a cycle (the caller aborts the requester).
        """
        recorded: list[tuple[TxnId, Dependency]] = []
        others = sorted(
            other
            for other in shared.active_writers(exclude=txn)
            if self.transaction(other).is_active
        )
        for other_txn in others:
            dependency, evidence = self._pair_dependency(
                shared,
                table,
                applied.invocation,
                applied.returned,
                applied.trace,
                pre_state,
                other_txn,
                skip=applied,
            )
            if dependency is Dependency.ND:
                self.stats.nd_pairs += 1
                continue
            try:
                self._deps.add(txn, other_txn, dependency)
            except DependencyCycleError:
                return None
            if dependency is Dependency.AD:
                self.stats.ad_edges += 1
            else:
                self.stats.cd_edges += 1
            if self.tracer:
                self.tracer.emit(
                    DependencyRecorded(
                        time=self.now,
                        txn=txn,
                        other_txn=other_txn,
                        object_name=shared.name,
                        invoked=applied.invocation.operation,
                        executing=evidence.executing,
                        dependency=dependency.name,
                        entry=evidence.render_entry(),
                        condition=evidence.render_condition(),
                        source=evidence.source,
                    )
                )
            recorded.append((other_txn, dependency))
        return recorded

    def _blocking_conflicts(
        self,
        txn: TxnId,
        shared: SharedObject,
        table: CompatibilityTable,
        invocation: Invocation,
    ) -> set[TxnId]:
        """Active transactions whose operations would form an AD with ours."""
        preview, preview_trace = shared.preview_with_trace(invocation)
        pre_state = shared.state()
        blockers = set()
        others = sorted(
            other
            for other in shared.active_writers(exclude=txn)
            if self.transaction(other).is_active
        )
        for other_txn in others:
            dependency, _evidence = self._pair_dependency(
                shared,
                table,
                invocation,
                preview,
                preview_trace,
                pre_state,
                other_txn,
                skip=None,
            )
            if dependency is Dependency.AD:
                blockers.add(other_txn)
            elif dependency is Dependency.CD and self._deps.depends_transitively(
                other_txn, txn
            ):
                # The new commit-order edge would close a cycle (the other
                # transaction already depends on us).  Under the blocking
                # discipline we wait for it to resolve rather than abort.
                blockers.add(other_txn)
        return blockers

    def _resolve_deadlock(self, start: TxnId) -> TxnId | None:
        """Break a wait-for cycle through ``start``, if there is one.

        The youngest member of the cycle (largest id) is aborted and
        returned; ``None`` means no cycle.
        """
        cycle = self._wait_cycle(start)
        if cycle is None:
            return None
        victim = max(cycle)  # the youngest transaction has the largest id
        self.stats.deadlock_victims += 1
        if self.tracer:
            self.tracer.emit(
                DeadlockResolved(
                    time=self.now, victim=victim, cycle=tuple(cycle)
                )
            )
        self.abort(victim, reason="deadlock-victim")
        return victim

    def _wait_cycle(self, start: TxnId) -> list[TxnId] | None:
        """Find a wait-for cycle through ``start``, as a list of members."""
        path: list[TxnId] = []

        def visit(node: TxnId) -> list[TxnId] | None:
            if node in path:
                return path[path.index(node):]
            path.append(node)
            for blocker in self._wait_for.get(node, set()):
                cycle = visit(blocker)
                if cycle is not None:
                    return cycle
            path.pop()
            return None

        return visit(start)

"""Concurrency-control substrate: the tables put to work.

Transactions (:mod:`repro.cc.transaction`), the AD/CD dependency graph
(:mod:`repro.cc.dependencies`), shared objects with replay recovery
(:mod:`repro.cc.objects`), intentions-list and undo-log recovery
(:mod:`repro.cc.recovery`), the table-driven scheduler
(:mod:`repro.cc.scheduler`) and its frozen seed-behaviour oracle
(:mod:`repro.cc.reference`), the deterministic closed-loop driver
(:mod:`repro.cc.harness`), workload generation
(:mod:`repro.cc.workload`), the discrete-event simulator
(:mod:`repro.cc.simulator`) and serializability verification
(:mod:`repro.cc.serializability`).
"""

from repro.cc.conflict_graph import (
    conflict_edges,
    is_conflict_serializable,
    serialization_graph_order,
)
from repro.cc.dependencies import DependencyGraph
from repro.cc.harness import Transcript, drive
from repro.cc.metrics import RunMetrics
from repro.cc.reference import ReferenceScheduler
from repro.cc.objects import AppliedOperation, SharedObject
from repro.cc.recovery import IntentionsList, UndoLog
from repro.cc.scheduler import (
    CommitDecision,
    OpDecision,
    SchedulerStats,
    TableDrivenScheduler,
)
from repro.cc.serializability import find_serialization, is_serializable, replay_serial
from repro.cc.simulator import (
    ObjectConfig,
    SimulationConfig,
    simulate,
    simulate_with_scheduler,
)
from repro.cc.validation import ValidationScheduler, ValidationStats
from repro.cc.transaction import (
    OperationRecord,
    Transaction,
    TransactionStatus,
    TxnId,
)
from repro.cc.workload import (
    Step,
    TransactionProgram,
    Workload,
    WorkloadConfig,
    generate,
)

__all__ = [
    "TxnId",
    "Transaction",
    "TransactionStatus",
    "OperationRecord",
    "DependencyGraph",
    "conflict_edges",
    "serialization_graph_order",
    "is_conflict_serializable",
    "SharedObject",
    "AppliedOperation",
    "IntentionsList",
    "UndoLog",
    "TableDrivenScheduler",
    "ReferenceScheduler",
    "Transcript",
    "drive",
    "ValidationScheduler",
    "ValidationStats",
    "OpDecision",
    "CommitDecision",
    "SchedulerStats",
    "Workload",
    "WorkloadConfig",
    "TransactionProgram",
    "Step",
    "generate",
    "ObjectConfig",
    "SimulationConfig",
    "simulate",
    "simulate_with_scheduler",
    "RunMetrics",
    "replay_serial",
    "find_serialization",
    "is_serializable",
]

"""Conflict-graph serializability analysis of completed runs.

The classical theory-side checker, independent of the replay-based witness
search in :mod:`repro.cc.serializability`: build the serialization graph
whose nodes are committed transactions and whose edges follow the
execution order of *conflicting* operation instances (pairs that do not
commute in their executed context); acyclicity implies conflict
serializability, and any topological order is a witness.

Conflicts are decided semantically but *context-free* — two invocations
conflict unless they forward-commute in every state — which makes this the
ADT-aware generalisation of the read/write conflict graph and keeps the
certificate sound: an acyclic graph always implies a valid serial witness.
(The converse is not true for condition-refined scheduling: a run with a
cyclic conflict graph can still be serializable because the specific
states involved made the operations commute; the replay-based checker in
:mod:`repro.cc.serializability` decides those.)  The cross-validation
tests check the implication direction on every sweep run.
"""

from __future__ import annotations

from repro.cc.scheduler import TableDrivenScheduler
from repro.cc.transaction import TxnId
from repro.semantics.commutativity import forward_commute_invocations

__all__ = ["conflict_edges", "serialization_graph_order", "is_conflict_serializable"]


def conflict_edges(
    scheduler: TableDrivenScheduler,
) -> set[tuple[TxnId, TxnId]]:
    """Edges of the serialization graph over the committed transactions.

    For each shared object, the committed operations are walked in global
    execution order; each pair of operations by different transactions
    that does not forward-commute (in every state) adds an edge from the
    earlier executor to the later one.
    """
    committed: list[TxnId] = []
    index = 0
    while True:
        try:
            txn = scheduler.transaction(index)
        except Exception:
            break
        if txn.is_committed:
            committed.append(index)
        index += 1
    records = sorted(
        (
            (record.sequence, txn, record)
            for txn in committed
            for record in scheduler.transaction(txn).records
        ),
        key=lambda item: item[0],
    )
    by_object: dict[str, list[tuple[TxnId, object]]] = {}
    for _, txn, record in records:
        by_object.setdefault(record.object_name, []).append((txn, record))

    edges: set[tuple[TxnId, TxnId]] = set()
    commute_cache: dict[tuple[str, object, object], bool] = {}
    for object_name, entries in by_object.items():
        shared = scheduler.object(object_name)
        for i, (first_txn, first_record) in enumerate(entries):
            for j in range(i + 1, len(entries)):
                second_txn, second_record = entries[j]
                if first_txn == second_txn:
                    continue
                key = (
                    object_name,
                    first_record.invocation,
                    second_record.invocation,
                )
                if key not in commute_cache:
                    commute_cache[key] = forward_commute_invocations(
                        shared.adt,
                        first_record.invocation,
                        second_record.invocation,
                    )
                if not commute_cache[key]:
                    edges.add((first_txn, second_txn))
    return edges


def serialization_graph_order(
    scheduler: TableDrivenScheduler,
) -> list[TxnId] | None:
    """A topological order of the serialization graph, or ``None`` on a cycle."""
    edges = conflict_edges(scheduler)
    nodes = {txn for edge in edges for txn in edge}
    index = 0
    while True:
        try:
            txn = scheduler.transaction(index)
        except Exception:
            break
        if txn.is_committed:
            nodes.add(index)
        index += 1
    order: list[TxnId] = []
    remaining = set(nodes)
    while remaining:
        ready = sorted(
            node
            for node in remaining
            if not any(
                earlier in remaining
                for (earlier, later) in edges
                if later == node
            )
        )
        if not ready:
            return None
        order.append(ready[0])
        remaining.discard(ready[0])
    return order


def is_conflict_serializable(scheduler: TableDrivenScheduler) -> bool:
    """Whether the committed run's serialization graph is acyclic."""
    return serialization_graph_order(scheduler) is not None

"""Experiment X6 — the recovery-mechanism equivalence, on histories.

Section 3: serial dependency and recoverability "allow the same set of
valid histories given a particular recovery mechanism".  X2 compares the
conflict *relations*; this experiment compares the *valid history sets*
directly: every interleaving of two-transaction programs runs under both
the in-place/recoverability discipline and the intentions-list/serial-
dependency discipline, and the sets of committed serial histories must
coincide.  The disciplines differ in which interleavings realise those
histories (in place blocks early, intentions lists validate late) — the
counts are reported alongside.
"""

from __future__ import annotations

from itertools import product

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.experiments.base import ExperimentOutcome
from repro.semantics.disciplines import DisciplineReport, compare_disciplines

__all__ = ["derive", "run"]


def _program_pairs(adt, max_length: int = 2):
    """Every ordered pair of invocation programs up to ``max_length``."""
    invocations = adt.invocations()
    programs = [(invocation,) for invocation in invocations]
    if max_length >= 2:
        programs += [
            (first, second)
            for first in invocations
            for second in invocations
        ]
    return list(product(programs, repeat=2))


def derive() -> dict[str, DisciplineReport]:
    """Compare the disciplines on a small QStack and an Account."""
    qstack = QStackSpec(
        capacity=2, domain=("a",), operations=["Push", "Pop", "Deq", "Top"]
    )
    account = AccountSpec(max_balance=2, amounts=(1,))
    return {
        "QStack": compare_disciplines(
            qstack, ("a",), _program_pairs(qstack, max_length=2)
        ),
        "Account": compare_disciplines(
            account, 1, _program_pairs(account, max_length=2)
        ),
    }


def run() -> ExperimentOutcome:
    reports = derive()
    matches = all(report.same_valid_histories for report in reports.values())
    derived = "\n".join(
        f"{name}: {report.summary()}" for name, report in reports.items()
    )
    return ExperimentOutcome(
        exp_id="x6-disciplines",
        title="Both recovery disciplines admit the same valid histories",
        matches=matches,
        expected=(
            "over every interleaving of every two-transaction program "
            "pair, the in-place/recoverability discipline and the "
            "intentions-list/serial-dependency discipline commit exactly "
            "the same set of serial histories"
        ),
        derived=derived,
    )

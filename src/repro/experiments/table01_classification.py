"""Table 1 — state-independent O/M/MO classification of the QStack.

Derived mechanically from the executable QStack specification by the
bounded-enumeration classifier (Defs. 4-6), for all seven operations the
paper lists.
"""

from __future__ import annotations

from repro.adts.qstack import QStackSpec
from repro.core.classification import classify_all_operations
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome

__all__ = ["derive", "run"]


def derive() -> dict[str, str]:
    """Classify every QStack operation; returns name -> class string."""
    adt = QStackSpec()
    return {
        name: op_class.render()
        for name, op_class in classify_all_operations(adt).items()
    }


def run() -> ExperimentOutcome:
    derived = derive()
    expected = golden.TABLE1_CLASSES
    matches = all(derived[name] == expected[name] for name in expected)

    def render(table: dict[str, str]) -> str:
        return "\n".join(f"{name}: {table[name]}" for name in sorted(expected))

    return ExperimentOutcome(
        exp_id="table01",
        title="State-independent classification of QStack operations",
        matches=matches,
        expected=render(expected),
        derived=render(derived),
    )

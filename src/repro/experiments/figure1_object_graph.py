"""Figure 1 — the example object graph.

Object ``A`` is composed of primitive objects ``B`` and ``C`` and the
component object ``D``, which is itself composed of primitives ``E`` and
``F``.  The ordering edges of ``A`` are ``BC`` and ``CD``; ``EF`` and
``FE`` are ordering edges of ``D`` (and not of ``A``) — a legal cycle at
``D``'s level.  The experiment rebuilds the figure with the graph
substrate and checks every structural claim the paper makes about it.
"""

from __future__ import annotations

from repro.graph.analysis import has_ordering_cycle, hierarchy_depth
from repro.graph.builder import GraphBuilder
from repro.graph.object_graph import ObjectGraph
from repro.graph.render import render_ascii, render_dot
from repro.experiments.base import ExperimentOutcome

__all__ = ["build", "run"]


def build() -> ObjectGraph:
    """Construct Figure 1's object ``A``."""
    inner = (
        GraphBuilder("D")
        .component("E", value="e")
        .component("F", value="f")
        .order("E", "F")
        .order("F", "E")
        .build()
    )
    builder = GraphBuilder("A")
    builder.component("B", value="b").component("C", value="c")
    builder.component("D", value=inner)
    builder.order("B", "C").order("C", "D")
    return builder.build()


def run() -> ExperimentOutcome:
    graph = build()
    labels = {vertex.display_name() for vertex in graph.vertices()}
    checks = {
        "A composed of B, C, D": labels == {"B", "C", "D"},
        "composition graph has 3 composed-of edges": len(
            graph.composed_of_edges()
        )
        == 3,
        "ordering graph of A is {BC, CD}": {
            (
                graph.vertex(edge.source).display_name(),
                graph.vertex(edge.target).display_name(),
            )
            for edge in graph.ordering_edges()
        }
        == {("B", "C"), ("C", "D")},
        "A is a complex object (depth 2)": hierarchy_depth(graph) == 2,
        "A's own ordering graph is acyclic": not has_ordering_cycle(graph),
    }
    inner = next(v.value for v in graph.vertices() if v.is_complex())
    checks["D's ordering graph contains the EF/FE cycle"] = has_ordering_cycle(
        inner
    )
    checks["V_simple of A = {B, C, D.E, D.F}"] = (
        len(graph.simple_vertices()) == 4
    )
    matches = all(checks.values())
    derived = render_ascii(graph)
    expected = "\n".join(
        f"[{'ok' if value else 'FAIL'}] {claim}" for claim, value in checks.items()
    )
    return ExperimentOutcome(
        exp_id="figure1",
        title="Example object graph (complex object A)",
        matches=matches,
        expected=expected,
        derived=derived,
        notes=["DOT rendering available via render_dot()", render_dot(graph)[:200] + " ..."],
    )

"""Table 2 — the locality-intersection dependency template.

Derived from first principles rather than copied: the Section-2.1
interaction rules (an observer following a modifier forms an AD, a
modifier following anything forms a CD, observers form nothing) applied
within each locality dimension, plus the structure/content separation of
Assertion 1 (cross-dimension intersections form no dependency).
"""

from __future__ import annotations

from repro.core.dependency import Dependency
from repro.core.templates import LOCALITY_KINDS, TABLE2
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome, dependency_grid

__all__ = ["derive", "run"]

#: Section-2.1 role rules: dependency formed by y's role following x's role.
_ROLE_RULE = {
    ("o", "o"): Dependency.ND,
    ("o", "m"): Dependency.AD,
    ("m", "o"): Dependency.CD,
    ("m", "m"): Dependency.CD,
}


def derive() -> dict[tuple[str, str], Dependency]:
    """Rebuild Table 2 from the interaction rules and Assertion 1."""
    table: dict[tuple[str, str], Dependency] = {}
    for y_kind in LOCALITY_KINDS:
        for x_kind in LOCALITY_KINDS:
            y_dim, y_role = y_kind[0], y_kind[1]
            x_dim, x_role = x_kind[0], x_kind[1]
            if y_dim != x_dim:
                # Structure-restricted and content-restricted accesses do
                # not form dependencies with each other (Assertion 1).
                table[(y_kind, x_kind)] = Dependency.ND
            else:
                table[(y_kind, x_kind)] = _ROLE_RULE[(y_role, x_role)]
    return table


def run() -> ExperimentOutcome:
    derived = derive()
    expected = {
        key: Dependency[name] for key, name in golden.TABLE2_LOCALITY.items()
    }
    matches = derived == expected and derived == TABLE2

    def render(table: dict[tuple[str, str], Dependency]) -> str:
        kinds = list(LOCALITY_KINDS)
        return dependency_grid(
            kinds, kinds, lambda y, x: table[(y, x)].render(blank_nd=False)
        )

    return ExperimentOutcome(
        exp_id="table02",
        title="Locality-intersection dependency template",
        matches=matches,
        expected=render(expected),
        derived=render(derived),
        notes=["also checked identical to the template used by the pipeline"],
    )

"""Run every paper-reproduction experiment and render the report.

``python -m repro.experiments`` prints the full report;
:func:`render_markdown` produces the body of EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    assertions_experiment,
    beyond_commutativity,
    discipline_experiment,
    equivalence_experiment,
    figure1_object_graph,
    figure2_qstack_graph,
    refinement_concurrency,
    scheduler_soundness,
    table01_classification,
    table02_locality_template,
    table03_no_semantics,
    table04_omo_template,
    table05_om_template,
    table06_om_sc_template,
    table07_mm_sc_template,
    table08_mo_sc_template,
    table09_characterization,
    table10_stage3,
    table11_deq_push,
    table12_push_push,
    table13_push_push_input,
    table14_deq_push_locality,
)
from repro.experiments.base import ExperimentOutcome

__all__ = ["ALL_EXPERIMENTS", "run_all", "render_markdown"]

#: Every experiment, in paper order: one per table/figure, then the
#: prose-claim experiments (X1-X7; X4 is folded into the X3 module).
ALL_EXPERIMENTS: list[tuple[str, Callable[[], ExperimentOutcome]]] = [
    ("table01", table01_classification.run),
    ("table02", table02_locality_template.run),
    ("table03", table03_no_semantics.run),
    ("table04", table04_omo_template.run),
    ("table05", table05_om_template.run),
    ("table06", table06_om_sc_template.run),
    ("table07", table07_mm_sc_template.run),
    ("table08", table08_mo_sc_template.run),
    ("table09", table09_characterization.run),
    ("table10", table10_stage3.run),
    ("table11", table11_deq_push.run),
    ("table12", table12_push_push.run),
    ("table13", table13_push_push_input.run),
    ("table14", table14_deq_push_locality.run),
    ("figure1", figure1_object_graph.run),
    ("figure2", figure2_qstack_graph.run),
    ("x1", refinement_concurrency.run),
    ("x2", equivalence_experiment.run),
    ("x3", assertions_experiment.run),
    ("x5", scheduler_soundness.run),
    ("x6", discipline_experiment.run),
    ("x7", beyond_commutativity.run),
]


def run_all(
    only: set[str] | None = None,
) -> list[ExperimentOutcome]:
    """Run all (or a named subset of) experiments.

    The whole batch shares one execution cache: the experiments derive
    tables for overlapping ADTs, so later runs draw on earlier evidence.
    """
    from repro.perf.cache import ensure_execution_cache

    outcomes = []
    with ensure_execution_cache():
        for exp_id, runner in ALL_EXPERIMENTS:
            if only is not None and exp_id not in only:
                continue
            outcomes.append(runner())
    return outcomes


def render_markdown(outcomes: list[ExperimentOutcome]) -> str:
    """The EXPERIMENTS.md body for a list of outcomes."""
    lines = [
        "| Id | Artifact | Status |",
        "|---|---|---|",
    ]
    for outcome in outcomes:
        status = "match" if outcome.matches else "MISMATCH"
        lines.append(f"| {outcome.exp_id} | {outcome.title} | {status} |")
    lines.append("")
    for outcome in outcomes:
        lines.append(f"## {outcome.exp_id} — {outcome.title}")
        lines.append("")
        lines.append(f"**Status:** {'match' if outcome.matches else 'MISMATCH'}")
        lines.append("")
        lines.append("Paper:")
        lines.append("```")
        lines.append(outcome.expected)
        lines.append("```")
        lines.append("Derived:")
        lines.append("```")
        lines.append(outcome.derived)
        lines.append("```")
        for note in outcome.notes:
            lines.append(f"- {note}")
        lines.append("")
    return "\n".join(lines)


def render_text(outcomes: list[ExperimentOutcome]) -> str:
    """Console rendering used by ``python -m repro.experiments``."""
    lines = []
    for outcome in outcomes:
        lines.append(outcome.summary())
        if not outcome.matches:
            lines.append("  expected:")
            lines.extend("    " + line for line in outcome.expected.splitlines())
            lines.append("  derived:")
            lines.extend("    " + line for line in outcome.derived.splitlines())
    passed = sum(1 for outcome in outcomes if outcome.matches)
    lines.append(f"{passed}/{len(outcomes)} experiments match the paper")
    return "\n".join(lines)


__all__ += ["render_text"]

"""Table 13 — Table 12 plus the same-input commutativity condition.

"If two Push operations attempt to push the same item onto a stack they
commute."  The paper adds the bare pair ``(ND, Push_in^x = Push_in^y =
e)``; reproducing it literally requires ``validate_conditions=False``,
because the bare condition is unsound at the capacity boundary (from a
QStack with one free slot, two identical Pushes do not commute: whichever
runs second overflows).  The experiment also derives the validated
variant and reports the guard it acquires.
"""

from __future__ import annotations

from repro.adts.qstack import QStackSpec
from repro.core.entry import Entry
from repro.core.methodology import MethodologyOptions, derive as derive_tables
from repro.experiments import golden
from repro.experiments.base import (
    ExperimentOutcome,
    entry_signature,
    paper_condition,
)

__all__ = ["derive", "derive_validated", "run"]


def _entry(validate: bool) -> Entry:
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    options = MethodologyOptions(
        outcome_partition="joint",
        outcome_feasibility="any",
        refine_inputs=True,
        refine_localities=False,
        validate_conditions=validate,
    )
    return derive_tables(adt, options=options).stage4_table.entry("Push", "Push")


def derive() -> Entry:
    """The printed Table 13 (unvalidated same-input condition)."""
    return _entry(validate=False)


def derive_validated() -> Entry:
    """The validated variant: the same-input pair gains an outcome guard."""
    return _entry(validate=True)


def run() -> ExperimentOutcome:
    derived = entry_signature(derive())
    expected = golden.TABLE13_PUSH_PUSH_INPUT
    matches = derived == expected

    validated = entry_signature(derive_validated())
    guard_present = ("ND", "x_in = y_in ∧ x_out = y_out") in validated

    def pretty(signature) -> str:
        return "\n".join(
            sorted(
                f"({dep}, {paper_condition(cond, 'Push', 'Push')})"
                for dep, cond in signature
            )
        )

    return ExperimentOutcome(
        exp_id="table13",
        title="(Push, Push) input-parameter refinement",
        matches=matches,
        expected=pretty(expected),
        derived=pretty(derived),
        notes=[
            "the paper's bare same-input condition is unsound at the "
            "capacity boundary; the validated pipeline derives "
            "(ND, Push_in^x = Push_in^y ∧ Push_out^x = Push_out^y) instead: "
            + ("CONFIRMED" if guard_present else "NOT OBSERVED"),
        ],
    )

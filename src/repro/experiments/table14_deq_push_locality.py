"""Table 14 — the (Deq, Push) entry after Stage-5 locality refinement.

"The intersection between the localities of Push and Deq can be
determined by a predicate constructed from the references f and b":
``(CD, Push_out = nok)``, ``(AD, f = b)``, ``(ND, f ≠ b)``.

The printed entry resolves ND for an unsuccessful Push on a full QStack
with ``f ≠ b`` ("both conditions become true, and hence, ND should be
chosen") — which the validated pipeline rejects, because Push-then-Deq on
a full QStack does not commute (reversing the order makes the Push
succeed).  Reproducing the printed table therefore uses
``validate_conditions=False``; the validated variant, which guards the ND
condition with ``Push_out = ok``, is derived alongside and reported.
"""

from __future__ import annotations

from repro.adts.qstack import QStackSpec
from repro.core.entry import Entry
from repro.core.methodology import MethodologyOptions, derive as derive_tables
from repro.experiments import golden
from repro.experiments.base import (
    ExperimentOutcome,
    entry_signature,
    paper_condition,
)

__all__ = ["derive", "derive_validated", "run"]


def derive() -> Entry:
    """The printed Table 14 (paper-fidelity mode)."""
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    options = MethodologyOptions(
        outcome_partition="first",
        refine_inputs=False,
        validate_conditions=False,
    )
    return derive_tables(adt, options=options).stage5_table.entry("Deq", "Push")


def derive_validated() -> Entry:
    """The validated Stage-5 entry (outcome-guarded ND condition)."""
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    return derive_tables(adt).stage5_table.entry("Deq", "Push")


def run() -> ExperimentOutcome:
    derived = entry_signature(derive())
    expected = golden.TABLE14_DEQ_PUSH_LOCALITY
    matches = derived == expected

    validated = entry_signature(derive_validated())
    guarded = ("ND", "x_out = ok ∧ f ≠ b") in validated

    def pretty(signature) -> str:
        return "\n".join(
            sorted(
                f"({dep}, {paper_condition(cond, 'Push', 'Deq')})"
                for dep, cond in signature
            )
        )

    return ExperimentOutcome(
        exp_id="table14",
        title="(Deq, Push) locality-predicate refinement",
        matches=matches,
        expected=pretty(expected),
        derived=pretty(derived),
        notes=[
            "validated pipeline instead derives "
            "{(CD, Push_out = nok), (AD, Push_out = ok ∧ f = b), "
            "(ND, Push_out = ok ∧ f ≠ b)} — the ND condition gains the "
            "Push_out = ok guard needed at the capacity boundary: "
            + ("CONFIRMED" if guarded else "NOT OBSERVED"),
        ],
    )

"""The paper's published tables, as printed (the golden data).

Everything the experiments compare derived artifacts against.  Where the
paper is internally inconsistent the discrepancy is recorded here with
both readings (see ``TABLE9_AS_PRINTED`` vs ``TABLE9_CORRECTED`` and the
notes attached to the Stage-4/5 tables).

Orientation: compatibility tables are keyed ``(invoked y, executing x)``
— the paper's ``(o1, o2)`` with "o1 follows o2".
"""

from __future__ import annotations

__all__ = [
    "TABLE1_CLASSES",
    "TABLE2_LOCALITY",
    "TABLE4_OMO",
    "TABLE5_OM",
    "TABLE6_OM_SC",
    "TABLE7_MM_SC",
    "TABLE8_MO_SC",
    "TABLE9_AS_PRINTED",
    "TABLE9_CORRECTED",
    "TABLE10_STAGE3",
    "TABLE11_DEQ_PUSH",
    "TABLE12_PUSH_PUSH",
    "TABLE13_PUSH_PUSH_INPUT",
    "TABLE14_DEQ_PUSH_LOCALITY",
    "QSTACK_WORKED_OPERATIONS",
]

#: Operations the Section-5 worked example derives tables for.
QSTACK_WORKED_OPERATIONS = ["Push", "Pop", "Deq", "Top", "Size"]

#: Table 1 — state-independent classification of the QStack operations.
TABLE1_CLASSES = {
    "Pop": "MO",
    "Push": "MO",
    "Top": "O",
    "XTop": "MO",
    "Deq": "MO",
    "Size": "O",
    "Replace": "M",
}

#: Table 2 — locality-kind intersection template, (y_kind, x_kind) -> dep.
#: Blank cells of the paper are ND.
TABLE2_LOCALITY = {
    ("so", "so"): "ND", ("so", "co"): "ND", ("so", "sm"): "AD", ("so", "cm"): "ND",
    ("co", "so"): "ND", ("co", "co"): "ND", ("co", "sm"): "ND", ("co", "cm"): "AD",
    ("sm", "so"): "CD", ("sm", "co"): "ND", ("sm", "sm"): "CD", ("sm", "cm"): "ND",
    ("cm", "so"): "ND", ("cm", "co"): "CD", ("cm", "sm"): "ND", ("cm", "cm"): "CD",
}

#: Table 4 — (y_class, x_class) over O/M/MO.
TABLE4_OMO = {
    ("O", "O"): "ND", ("O", "M"): "AD", ("O", "MO"): "AD",
    ("M", "O"): "CD", ("M", "M"): "CD", ("M", "MO"): "CD",
    ("MO", "O"): "CD", ("MO", "M"): "AD", ("MO", "MO"): "AD",
}

#: Table 5 — the O/M core.
TABLE5_OM = {
    ("O", "O"): "ND", ("O", "M"): "AD",
    ("M", "O"): "CD", ("M", "M"): "CD",
}

#: Table 6 — (O, M): y observer rows, x modifier columns.
TABLE6_OM_SC = {
    ("SO", "SM"): "AD", ("SO", "CM"): "ND", ("SO", "CSM"): "AD",
    ("CO", "SM"): "ND", ("CO", "CM"): "AD", ("CO", "CSM"): "AD",
    ("CSO", "SM"): "AD", ("CSO", "CM"): "AD", ("CSO", "CSM"): "AD",
}

#: Table 7 — (M, M): y modifier rows, x modifier columns.
TABLE7_MM_SC = {
    ("SM", "SM"): "CD", ("SM", "CM"): "ND", ("SM", "CSM"): "CD",
    ("CM", "SM"): "ND", ("CM", "CM"): "CD", ("CM", "CSM"): "CD",
    ("CSM", "SM"): "CD", ("CSM", "CM"): "CD", ("CSM", "CSM"): "CD",
}

#: Table 8 — (M, O): y modifier rows, x observer columns.
TABLE8_MO_SC = {
    ("SM", "SO"): "CD", ("SM", "CO"): "ND", ("SM", "CSO"): "CD",
    ("CM", "SO"): "ND", ("CM", "CO"): "CD", ("CM", "CSO"): "CD",
    ("CSM", "SO"): "CD", ("CSM", "CO"): "CD", ("CSM", "CSO"): "CD",
}

#: Table 9 — D1-D5 characterisation, columns
#: (obs/mod, Cont/Str, return-value, Locality, Reference), **as printed**.
#: The reference column contradicts the paper's own text and Figure 2
#: (which say b is the stack pointer used by Push/Pop/Top and f the front
#: pointer used by Deq); the printed table swaps the two letters.
TABLE9_AS_PRINTED = {
    "Pop": ("MO", "CS", "result/nok", "L", "f"),
    "Push": ("MO", "CS", "ok/nok", "L", "f"),
    "Deq": ("MO", "CS", "result/nok", "L", "b"),
    "Size": ("O", "S", "result", "G", ""),
    "Top": ("O", "CS", "result/nok", "L", "f"),
}

#: Table 9 with the reference column following the paper's text/Figure 2.
TABLE9_CORRECTED = {
    "Pop": ("MO", "CS", "result/nok", "L", "b"),
    "Push": ("MO", "CS", "ok/nok", "L", "b"),
    "Deq": ("MO", "CS", "result/nok", "L", "f"),
    "Size": ("O", "S", "result", "G", ""),
    "Top": ("O", "CS", "result/nok", "L", "b"),
}

#: Table 10 — the Stage-3 compatibility table, (y, x) -> dep.
#: (The paper prints two redundant "ND" strings in otherwise-blank cells;
#: semantically every blank/ND cell is ND.)
TABLE10_STAGE3 = {
    ("Push", "Push"): "AD", ("Push", "Pop"): "AD", ("Push", "Deq"): "AD",
    ("Push", "Top"): "CD", ("Push", "Size"): "CD",
    ("Pop", "Push"): "AD", ("Pop", "Pop"): "AD", ("Pop", "Deq"): "AD",
    ("Pop", "Top"): "CD", ("Pop", "Size"): "CD",
    ("Deq", "Push"): "AD", ("Deq", "Pop"): "AD", ("Deq", "Deq"): "AD",
    ("Deq", "Top"): "CD", ("Deq", "Size"): "CD",
    ("Top", "Push"): "AD", ("Top", "Pop"): "AD", ("Top", "Deq"): "AD",
    ("Top", "Top"): "ND", ("Top", "Size"): "ND",
    ("Size", "Push"): "AD", ("Size", "Pop"): "AD", ("Size", "Deq"): "AD",
    ("Size", "Top"): "ND", ("Size", "Size"): "ND",
}

#: Table 11 — (Deq, Push) after Stage-4 outcome refinement.
#: Conditions in the library's x/y notation (x = Push, executing first).
TABLE11_DEQ_PUSH = frozenset(
    {
        ("CD", "x_out = nok"),
        ("AD", "x_out = ok"),
    }
)

#: Table 12 — (Push, Push) after Stage-4 outcome refinement, as printed.
#: Includes the (CD, nok-then-ok) cell even though that combination cannot
#: arise when the two Pushes run back to back with nothing in between.
TABLE12_PUSH_PUSH = frozenset(
    {
        ("ND", "x_out = nok ∧ y_out = nok"),
        ("CD", "x_out = nok ∧ y_out = ok"),
        ("CD", "x_out = ok ∧ y_out = ok"),
        ("AD", "x_out = ok ∧ y_out = nok"),
    }
)

#: Table 12 restricted to serially feasible outcome combinations.
TABLE12_SERIALLY_FEASIBLE = frozenset(
    {
        ("ND", "x_out = nok ∧ y_out = nok"),
        ("CD", "x_out = ok ∧ y_out = ok"),
        ("AD", "x_out = ok ∧ y_out = nok"),
    }
)

#: Table 13 — Table 12 plus the same-input commutativity pair, as printed.
#: The bare input-equality condition is unsound at the capacity boundary
#: (one Push succeeds, the identical one overflows); the validated
#: pipeline adds an outcome-equality guard.
TABLE13_PUSH_PUSH_INPUT = TABLE12_PUSH_PUSH | {("ND", "x_in = y_in")}

#: Table 14 — (Deq, Push) after Stage-5 locality refinement, as printed.
TABLE14_DEQ_PUSH_LOCALITY = frozenset(
    {
        ("CD", "x_out = nok"),
        ("AD", "f = b"),
        ("ND", "f ≠ b"),
    }
)

__all__ += ["TABLE12_SERIALLY_FEASIBLE"]

"""Table 5 — the O/M template.

The core template: derived from the Section-2.1 interaction analysis
(which of the eight interaction cases create abort- vs
commit-dependencies), exposed by :func:`repro.core.templates.d1_base_entry`.
"""

from __future__ import annotations

from repro.core.classification import OpClass
from repro.core.dependency import Dependency
from repro.core.templates import d1_base_entry
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome, dependency_grid

__all__ = ["derive", "run"]

_CLASSES = [OpClass.O, OpClass.M]


def derive() -> dict[tuple[str, str], Dependency]:
    return {
        (y.render(), x.render()): d1_base_entry(y, x)
        for y in _CLASSES
        for x in _CLASSES
    }


def run() -> ExperimentOutcome:
    derived = derive()
    expected = {key: Dependency[name] for key, name in golden.TABLE5_OM.items()}
    matches = derived == expected

    def render(table: dict[tuple[str, str], Dependency]) -> str:
        labels = [cls.render() for cls in _CLASSES]
        return dependency_grid(
            labels, labels, lambda y, x: table[(y, x)].render(blank_nd=False)
        )

    return ExperimentOutcome(
        exp_id="table05",
        title="O/M template",
        matches=matches,
        expected=render(expected),
        derived=render(derived),
    )

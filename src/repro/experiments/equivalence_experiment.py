"""Experiment X2 — serial dependency vs. recoverability (Section 3).

The paper claims the two notions "allow the same set of valid histories
given a particular recovery mechanism" and differ only in the assumed
recovery mechanism.  Checked empirically as a containment plus an
explained residual:

* every recoverability conflict must be witnessed by a serial-dependency
  invalidation (containment — must hold exactly), and
* serial dependency may flag extra pairs through its history windows
  (e.g. ``Deposit`` invalidates ``Deposit`` once a later ``Balance``
  observes the doubled effect) — exactly the intentions-list
  recovery-mechanism difference the paper describes.
"""

from __future__ import annotations

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.experiments.base import ExperimentOutcome
from repro.semantics.equivalence import EquivalenceReport, compare_relations
from repro.spec.adt import EnumerationBounds

__all__ = ["derive", "run"]


def derive() -> dict[str, EquivalenceReport]:
    """Invocation-level comparison for a small QStack and an Account."""
    qstack = QStackSpec(
        capacity=2, domain=("a",), operations=["Push", "Pop", "Deq", "Top", "Size"]
    )
    account = AccountSpec(max_balance=3, amounts=(1,))
    return {
        "QStack": compare_relations(
            qstack, max_h1=1, max_h2=1, bounds=EnumerationBounds(2, ("a",))
        ),
        "Account": compare_relations(account, max_h1=1, max_h2=1),
    }


def run() -> ExperimentOutcome:
    reports = derive()
    lines = [f"{name}: {report.summary()}" for name, report in reports.items()]
    for name, report in reports.items():
        for first, second in report.sd_only[:6]:
            lines.append(
                f"  {name} SD-only: {first.render()} invalidates "
                f"{second.render()} through a history window"
            )
        for first, second in report.rec_only[:6]:
            lines.append(
                f"  {name} REC-only (containment violation!): "
                f"{second.render()} after {first.render()}"
            )
    matches = all(report.containment_holds for report in reports.values())
    return ExperimentOutcome(
        exp_id="x2-equivalence",
        title="Serial dependency subsumes recoverability conflicts",
        matches=matches,
        expected=(
            "containment holds exactly (no REC-only pairs); SD-only pairs "
            "are history-window conflicts explained by the intentions-list "
            "recovery assumption"
        ),
        derived="\n".join(lines),
    )

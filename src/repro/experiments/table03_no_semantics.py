"""Table 3 — the single-entry table when no semantics are used.

"We begin with the case where no semantic information is used about the
object and its operations, i.e., corresponds to all operations being
modifier-observers.  This produces a single entry compatibility table
containing AD."  Derived by evaluating the D1 template at (MO, MO).
"""

from __future__ import annotations

from repro.core.classification import OpClass
from repro.core.dependency import Dependency
from repro.core.templates import d1_entry, no_information_entry
from repro.experiments.base import ExperimentOutcome

__all__ = ["derive", "run"]


def derive() -> Dependency:
    """The dependency when both operations are treated as MO."""
    return d1_entry(OpClass.MO, OpClass.MO)


def run() -> ExperimentOutcome:
    derived = derive()
    expected = Dependency.AD
    matches = derived is expected and no_information_entry() is expected
    return ExperimentOutcome(
        exp_id="table03",
        title="No-information compatibility table (single AD entry)",
        matches=matches,
        expected="(Y, X) = AD",
        derived=f"(Y, X) = {derived.render(blank_nd=False)}",
    )

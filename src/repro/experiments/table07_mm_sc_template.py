"""Table 7 — the (M, M) structure/content template.

Derived from Table 2 like Table 6; modifier kinds on both axes.
"""

from __future__ import annotations

from repro.core.dependency import Dependency
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome
from repro.experiments.table06_om_sc_template import derive_sc_grid, run_sc_experiment

__all__ = ["derive", "run"]


def derive() -> dict[tuple[str, str], Dependency]:
    return derive_sc_grid("m", "m")


def run() -> ExperimentOutcome:
    return run_sc_experiment(
        "table07",
        "(M, M) structure/content template",
        "m",
        "m",
        golden.TABLE7_MM_SC,
    )

"""Paper-reproduction experiments: one module per table/figure plus the
prose-claim experiments (X1 refinement, X2 equivalence, X3/X4 assertions,
X5 scheduler soundness, X6 recovery disciplines, X7 beyond
commutativity).  See DESIGN.md §4 for the per-experiment index
and ``python -m repro.experiments`` to run them all.
"""

from repro.experiments.base import ExperimentOutcome

__all__ = ["ExperimentOutcome"]

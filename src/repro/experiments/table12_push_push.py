"""Table 12 — the (Push, Push) entry after Stage-4 outcome refinement.

The paper's table enumerates all four outcome combinations, including
``(Push^x = nok, Push^y = ok)`` — a combination that cannot occur when
the two Pushes run back to back on the same QStack (a full QStack stays
full), but can under open concurrency with other transactions in between.
Reproducing the printed table therefore uses ``outcome_feasibility="any"``
with a joint partition; the serially-feasible three-cell variant is also
derived and compared as a secondary check.
"""

from __future__ import annotations

from repro.adts.qstack import QStackSpec
from repro.core.entry import Entry
from repro.core.methodology import MethodologyOptions, derive as derive_tables
from repro.experiments import golden
from repro.experiments.base import (
    ExperimentOutcome,
    entry_signature,
    paper_condition,
)

__all__ = ["derive", "derive_serial", "run"]


def _entry(feasibility: str) -> Entry:
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    options = MethodologyOptions(
        outcome_partition="joint",
        outcome_feasibility=feasibility,
        refine_inputs=False,
        refine_localities=False,
        # Paper-literal template cells (the validated pipeline derives the
        # serially-witnessed cells regardless of the feasibility option).
        validate_conditions=False,
    )
    return derive_tables(adt, options=options).stage4_table.entry("Push", "Push")


def derive() -> Entry:
    """The printed Table 12 (all four outcome combinations)."""
    return _entry("any")


def derive_serial() -> Entry:
    """The serially-feasible variant (three cells)."""
    return _entry("serial")


def run() -> ExperimentOutcome:
    derived = entry_signature(derive())
    expected = golden.TABLE12_PUSH_PUSH
    serial = entry_signature(derive_serial())
    serial_expected = golden.TABLE12_SERIALLY_FEASIBLE
    matches = derived == expected and serial == serial_expected

    def pretty(signature) -> str:
        return "\n".join(
            sorted(
                f"({dep}, {paper_condition(cond, 'Push', 'Push')})"
                for dep, cond in signature
            )
        )

    return ExperimentOutcome(
        exp_id="table12",
        title="(Push, Push) outcome refinement",
        matches=matches,
        expected=pretty(expected),
        derived=pretty(derived),
        notes=[
            "the (nok, ok) cell is serially infeasible; the serial-mode "
            "derivation drops it and was verified separately: "
            + ("MATCH" if serial == serial_expected else "MISMATCH"),
        ],
    )

"""Experiments X3/X4 — the locality assertions against ground truth.

X3 cross-validates Assertion 2 (locality-disjointness implies
commutativity) against the direct state-machine commutativity check, per
state and invocation pair, over several ADTs.  The assertion evaluates
localities *in the pre-state*; three well-defined phenomena escape that
granularity, and every observed contradiction must fall into one of them:

1. **nok boundaries** — a return value derived from occupancy (overflow /
   emptiness checks), which vertex localities cannot express;
2. **empty localities** — an operation that touched no vertex at all yet
   returned state-dependent information (same root cause);
3. **locality growth** — one operation *inserts* a vertex while the other
   is global over the pre-state (``Replace``, ``Size``): the global
   operation's locality would have included the inserted vertex had the
   orders been swapped, but pre-state analysis cannot see it.  This is the
   paper's own caveat that "finding the actual locality of an operation
   may require the execution of the operation" (Section 4.3).

X4 checks the paper's concrete Section-4.4 claim: "Replace and successful
XTop operations commute" (structure/content separation, Assertion 1 with
the corrected third term — see ``repro.core.assertions``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adts.account import AccountSpec
from repro.adts.qstack import QStackSpec
from repro.adts.set_adt import SetSpec
from repro.core.assertions import assertion1_no_dependency, assertion2_commute
from repro.experiments.base import ExperimentOutcome
from repro.semantics.commutativity import commute_in_state, forward_commute_invocations
from repro.spec.adt import ADTSpec, Execution, execute_invocation
from repro.spec.operation import Invocation

__all__ = ["AgreementReport", "derive", "check_replace_xtop", "run"]


@dataclass(frozen=True)
class AgreementReport:
    """Per-ADT agreement between Assertion 2 and actual commutativity."""

    adt_name: str
    cases: int
    assertion_claims: int  #: cases where Assertion 2 claims commutativity
    violations: int  #: claims contradicted by the state-machine check
    explained: int  #: violations falling into the three known classes

    @property
    def all_explained(self) -> bool:
        return self.violations == self.explained

    def render(self) -> str:
        return (
            f"{self.adt_name}: {self.cases} (state, pair) cases, "
            f"{self.assertion_claims} locality-disjoint, "
            f"{self.violations} contradicted, {self.explained} explained by "
            "the three known locality-granularity gaps"
        )


def _pre_vertices(execution: Execution) -> set[int]:
    return {path[0] for path in execution.pre_simple_vertices}


def _explains(first: Execution, second: Execution, outcomes: set) -> bool:
    """Whether a violation falls into one of the three known classes."""
    if "nok" in outcomes:
        return True
    if not first.trace.locality or not second.trace.locality:
        return True
    pre = _pre_vertices(first)  # both executions share the pre-state

    def inserts(execution: Execution) -> bool:
        return bool(execution.trace.structure_modified - pre)

    def global_over_pre(execution: Execution) -> bool:
        return bool(pre) and pre <= execution.trace.locality

    return (inserts(first) and global_over_pre(second)) or (
        inserts(second) and global_over_pre(first)
    )


def _agreement(adt: ADTSpec) -> AgreementReport:
    invocations = adt.invocations()
    states = adt.state_list()
    cases = claims = violations = explained = 0
    for state in states:
        executions = {
            invocation: execute_invocation(adt, state, invocation)
            for invocation in invocations
        }
        for first in invocations:
            for second in invocations:
                cases += 1
                if not assertion2_commute(
                    executions[first].trace, executions[second].trace
                ):
                    continue
                claims += 1
                if commute_in_state(adt, state, first, second):
                    continue
                violations += 1
                outcomes = {
                    executions[first].returned.outcome,
                    executions[second].returned.outcome,
                    execute_invocation(
                        adt, executions[first].post_state, second
                    ).returned.outcome,
                    execute_invocation(
                        adt, executions[second].post_state, first
                    ).returned.outcome,
                }
                if _explains(executions[first], executions[second], outcomes):
                    explained += 1
    return AgreementReport(
        adt_name=adt.name,
        cases=cases,
        assertion_claims=claims,
        violations=violations,
        explained=explained,
    )


def derive() -> list[AgreementReport]:
    """Agreement reports for a representative ADT selection."""
    return [
        _agreement(QStackSpec(capacity=2, domain=("a", "b"))),
        _agreement(SetSpec(domain=("a", "b"))),
        _agreement(AccountSpec(max_balance=3, amounts=(1, 2))),
    ]


def check_replace_xtop() -> dict[str, bool]:
    """X4: Replace and XTop commute; their localities never intersect."""
    adt = QStackSpec()
    replace_invs = adt.invocations_of("Replace")
    xtop = Invocation("XTop")
    commute = all(
        forward_commute_invocations(adt, replace, xtop)
        and forward_commute_invocations(adt, xtop, replace)
        for replace in replace_invs
    )
    separated = all(
        assertion1_no_dependency(
            execute_invocation(adt, state, replace).trace,
            execute_invocation(adt, state, xtop).trace,
        )
        for state in adt.state_list()
        for replace in replace_invs
    )
    return {"commute": commute, "assertion1_separation": separated}


def run() -> ExperimentOutcome:
    reports = derive()
    replace_xtop = check_replace_xtop()
    matches = all(report.all_explained for report in reports) and all(
        replace_xtop.values()
    )
    derived_lines = [report.render() for report in reports]
    derived_lines.append(
        "Replace/XTop commute: "
        f"{replace_xtop['commute']}, structure/content separation: "
        f"{replace_xtop['assertion1_separation']}"
    )
    return ExperimentOutcome(
        exp_id="x3-assertions",
        title="Locality assertions vs. state-machine ground truth",
        matches=matches,
        expected=(
            "every Assertion-2 claim contradicted by the state machine "
            "falls into one of the three locality-granularity gaps "
            "(nok boundary, empty locality, insertion vs. global); "
            "Replace and XTop commute with disjoint localities"
        ),
        derived="\n".join(derived_lines),
    )

"""Table 10 — the Stage-3 initial compatibility table for the QStack.

Derived by the full Stage 1-3 pipeline: object-graph construction,
D1-D5 characterisation, template-table lookup with the
least-restrictive-across-dimensions rule.
"""

from __future__ import annotations

from repro.adts.qstack import QStackSpec
from repro.core.methodology import derive as derive_tables
from repro.core.table import CompatibilityTable
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome, dependency_grid

__all__ = ["derive", "run"]


def derive() -> CompatibilityTable:
    """The Stage-3 table for the worked-example operations."""
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    return derive_tables(adt).stage3_table


def run() -> ExperimentOutcome:
    table = derive()
    operations = golden.QSTACK_WORKED_OPERATIONS
    derived = {
        (invoked, executing): table.dependency(invoked, executing).name
        for invoked in operations
        for executing in operations
    }
    expected = golden.TABLE10_STAGE3
    matches = derived == expected

    def render(cells: dict[tuple[str, str], str]) -> str:
        return dependency_grid(
            operations,
            operations,
            lambda y, x: "" if cells[(y, x)] == "ND" else cells[(y, x)],
        )

    return ExperimentOutcome(
        exp_id="table10",
        title="Stage-3 initial compatibility table for the QStack",
        matches=matches,
        expected=render(expected),
        derived=render(derived),
    )

"""Experiment X5 — tables derived by the methodology schedule soundly.

Random workloads run under the fully refined (validated) Stage-5 table
with both scheduling policies and voluntary aborts injected; every run
must end with the committed transactions serializable and the replay
recovery never invalidating a surviving transaction beyond the recorded
AD cascades.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adts.qstack import QStackSpec
from repro.cc.serializability import is_serializable
from repro.cc.simulator import SimulationConfig, simulate_with_scheduler
from repro.cc.workload import WorkloadConfig, generate
from repro.core.methodology import derive as derive_tables
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome

__all__ = ["SoundnessReport", "derive", "run"]


@dataclass(frozen=True)
class SoundnessReport:
    """Aggregate of one policy's runs."""

    policy: str
    runs: int
    serializable_runs: int
    committed: int
    aborted: int

    def render(self) -> str:
        return (
            f"{self.policy:10s}: {self.serializable_runs}/{self.runs} runs "
            f"serializable, {self.committed} committed / "
            f"{self.aborted} aborted transactions"
        )


def derive(
    seeds: tuple[int, ...] = tuple(range(10)),
    transactions: int = 6,
    abort_probability: float = 0.2,
) -> list[SoundnessReport]:
    """Run the soundness sweep for both policies."""
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    table = derive_tables(adt).final_table
    reports = []
    for policy in ("optimistic", "blocking"):
        serializable = committed = aborted = 0
        for seed in seeds:
            workload = generate(
                adt,
                "shared",
                WorkloadConfig(
                    transactions=transactions,
                    operations_per_transaction=3,
                    abort_probability=abort_probability,
                    seed=seed,
                ),
            )
            metrics, scheduler = simulate_with_scheduler(
                SimulationConfig(
                    adt=adt, table=table, workload=workload, policy=policy
                )
            )
            committed += metrics.committed
            aborted += metrics.aborted
            if is_serializable(scheduler):
                serializable += 1
        reports.append(
            SoundnessReport(
                policy=policy,
                runs=len(seeds),
                serializable_runs=serializable,
                committed=committed,
                aborted=aborted,
            )
        )
    return reports


def run() -> ExperimentOutcome:
    reports = derive()
    matches = all(
        report.serializable_runs == report.runs for report in reports
    )
    return ExperimentOutcome(
        exp_id="x5-soundness",
        title="Scheduling with derived tables preserves serializability",
        matches=matches,
        expected="every run serializable under both policies",
        derived="\n".join(report.render() for report in reports),
    )

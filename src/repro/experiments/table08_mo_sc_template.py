"""Table 8 — the (M, O) structure/content template.

Derived from Table 2 like Table 6; modifier kinds of the invoked
operation against observer kinds of the executing one.
"""

from __future__ import annotations

from repro.core.dependency import Dependency
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome
from repro.experiments.table06_om_sc_template import derive_sc_grid, run_sc_experiment

__all__ = ["derive", "run"]


def derive() -> dict[tuple[str, str], Dependency]:
    return derive_sc_grid("m", "o")


def run() -> ExperimentOutcome:
    return run_sc_experiment(
        "table08",
        "(M, O) structure/content template",
        "m",
        "o",
        golden.TABLE8_MO_SC,
    )

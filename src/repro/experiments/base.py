"""Shared infrastructure of the paper-reproduction experiments.

Every experiment module exposes ``run() -> ExperimentOutcome``; the
outcome records what the paper prints, what the library derived, and
whether they match.  ``repro.experiments.report`` aggregates the outcomes
into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.entry import Entry

__all__ = [
    "ExperimentOutcome",
    "entry_signature",
    "render_signature",
    "paper_condition",
    "dependency_grid",
]


@dataclass
class ExperimentOutcome:
    """Result of reproducing one paper artifact."""

    exp_id: str  #: e.g. ``"table10"`` or ``"figure2"``
    title: str
    matches: bool
    expected: str  #: rendering of the paper's artifact
    derived: str  #: rendering of what the library produced
    notes: list[str] = field(default_factory=list)

    def summary(self) -> str:
        status = "MATCH" if self.matches else "MISMATCH"
        return f"[{status}] {self.exp_id}: {self.title}"


def entry_signature(entry: Entry) -> frozenset[tuple[str, str]]:
    """Canonical, order-free signature of an entry's pairs.

    Each pair becomes ``(dependency_name, condition_rendering)``; golden
    data stores the same form, so comparison is structural rather than
    string-formatting-sensitive.
    """
    return frozenset(
        (pair.dependency.name, pair.condition.render()) for pair in entry.pairs
    )


def render_signature(signature: frozenset[tuple[str, str]]) -> str:
    """Human-readable multi-line rendering of a signature."""
    lines = sorted(f"({dep}, {cond})" for dep, cond in signature)
    return "\n".join(lines)


def paper_condition(condition: str, first_name: str, second_name: str) -> str:
    """Translate the library's x/y condition notation to the paper's.

    ``x_out = nok`` becomes ``Push_out = nok`` (or ``Push_out^x = nok``
    when both operations share a name, as in the paper's Table 12).
    """
    same = first_name == second_name
    first_marker = f"{first_name}_out^x" if same else f"{first_name}_out"
    second_marker = f"{second_name}_out^y" if same else f"{second_name}_out"
    translated = condition.replace("x_out", first_marker)
    translated = translated.replace("y_out", second_marker)
    translated = translated.replace("x_in", f"{first_name}_in^x")
    translated = translated.replace("y_in", f"{second_name}_in^y")
    return translated


def dependency_grid(
    rows: list[str],
    columns: list[str],
    lookup,
) -> str:
    """Render a dependency grid (rows = invoked y, columns = executing x)."""
    widths = [max(len(r) for r in rows + ["(y,x)"])]
    widths += [max(3, len(c)) for c in columns]
    header = " | ".join(
        ["(y,x)".ljust(widths[0])]
        + [c.ljust(widths[i + 1]) for i, c in enumerate(columns)]
    )
    lines = [header, "-+-".join("-" * w for w in widths)]
    for row in rows:
        cells = [row.ljust(widths[0])]
        for i, column in enumerate(columns):
            cells.append(str(lookup(row, column)).ljust(widths[i + 1]))
        lines.append(" | ".join(cells).rstrip())
    return "\n".join(lines)

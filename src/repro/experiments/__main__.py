"""CLI entry point: ``python -m repro.experiments [exp_id ...]``.

Runs the paper-reproduction experiments (all of them by default, or the
named subset) and prints a summary; exits non-zero on any mismatch.
"""

from __future__ import annotations

import sys

from repro.experiments.report import render_text, run_all


def main(argv: list[str]) -> int:
    only = set(argv) if argv else None
    outcomes = run_all(only)
    if not outcomes:
        print(f"no experiments matched: {sorted(only or set())}")
        return 2
    print(render_text(outcomes))
    return 0 if all(outcome.matches for outcome in outcomes) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

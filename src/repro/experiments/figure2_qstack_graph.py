"""Figure 2 — the QStack object graph.

A chain of component vertices with ordering edges pointing towards the
front and the two implicit references: ``f`` on the front element's
composed-of edge and ``b`` on the back element's.  The experiment builds
the graph through the QStack specification (Stage 1 of the methodology)
and checks the figure's structural claims, including how the references
move under Push/Pop/Deq.
"""

from __future__ import annotations

from repro.adts.qstack import QStackSpec
from repro.graph.analysis import is_linear_chain, ordering_walk
from repro.graph.instrument import InstrumentedGraph
from repro.graph.object_graph import ObjectGraph
from repro.graph.render import render_chain
from repro.experiments.base import ExperimentOutcome

__all__ = ["build", "run"]


def build(elements: tuple = ("e1", "e2", "e3", "e4")) -> ObjectGraph:
    """The Figure-2 QStack graph holding ``elements`` (front first)."""
    adt = QStackSpec(capacity=max(4, len(elements)))
    return adt.build_graph(elements)


def run() -> ExperimentOutcome:
    elements = ("e1", "e2", "e3", "e4")
    adt = QStackSpec(capacity=6)
    graph = adt.build_graph(elements)
    front = graph.reference("f")
    back = graph.reference("b")
    assert front is not None and back is not None
    walk = list(ordering_walk(graph, back))
    checks = {
        "object graph is a linear chain": is_linear_chain(graph),
        "f designates the front element": graph.vertex(front).value == "e1",
        "b designates the back element": graph.vertex(back).value == "e4",
        "ordering edges point towards the front": [
            graph.vertex(vid).value for vid in walk
        ]
        == ["e4", "e3", "e2", "e1"],
        "one composed-of edge per element": len(graph.composed_of_edges()) == 4,
    }
    # Reference motion under the operations (Section 4.3's discussion).
    view = InstrumentedGraph(graph)
    adt.operation("Push").execute(view, "e5")
    checks["Push selects the new composed-of edge as b"] = (
        graph.vertex(graph.reference("b")).value == "e5"
    )
    adt.operation("Pop").execute(view)
    checks["Pop moves b along the ordering edge"] = (
        graph.vertex(graph.reference("b")).value == "e4"
    )
    adt.operation("Deq").execute(view)
    checks["Deq moves f to the element behind the front"] = (
        graph.vertex(graph.reference("f")).value == "e2"
    )
    matches = all(checks.values())
    expected = "\n".join(
        f"[{'ok' if value else 'FAIL'}] {claim}" for claim, value in checks.items()
    )
    return ExperimentOutcome(
        exp_id="figure2",
        title="QStack object graph with f/b references",
        matches=matches,
        expected=expected,
        derived=render_chain(build(elements)),
    )

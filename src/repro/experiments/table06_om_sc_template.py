"""Table 6 — the (O, M) structure/content template.

Rows are observer kinds (SO/CO/CSO) of the invoked operation ``y``,
columns modifier kinds (SM/CM/CSM) of the executing operation ``x``.
Derived from Table 2 by decomposing CS kinds and composing with
``stronger`` (:func:`repro.core.templates.d2_base_entry`).
"""

from __future__ import annotations

from repro.core.dependency import Dependency
from repro.core.templates import d2_base_entry
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome, dependency_grid

__all__ = ["derive", "run", "derive_sc_grid", "run_sc_experiment"]


def derive_sc_grid(
    y_role: str, x_role: str
) -> dict[tuple[str, str], Dependency]:
    """The full 3x3 structure/content grid for a role pair.

    Shared by the Table-6/7/8 experiments: role 'o' uses SO/CO/CSO labels,
    role 'm' uses SM/CM/CSM labels.
    """
    suffix = {"o": "O", "m": "M"}
    rows = [f"S{suffix[y_role]}", f"C{suffix[y_role]}", f"CS{suffix[y_role]}"]
    columns = [f"S{suffix[x_role]}", f"C{suffix[x_role]}", f"CS{suffix[x_role]}"]
    grid = {}
    for row in rows:
        for column in columns:
            y_kind = row[: -1]  # strip the role letter -> S / C / CS
            x_kind = column[: -1]
            grid[(row, column)] = d2_base_entry(y_role, y_kind, x_role, x_kind)
    return grid


def run_sc_experiment(
    exp_id: str,
    title: str,
    y_role: str,
    x_role: str,
    expected_names: dict[tuple[str, str], str],
) -> ExperimentOutcome:
    """Compare one structure/content template grid against golden data."""
    derived = derive_sc_grid(y_role, x_role)
    expected = {key: Dependency[name] for key, name in expected_names.items()}
    matches = derived == expected
    rows = sorted({key[0] for key in expected}, key=len)
    columns = sorted({key[1] for key in expected}, key=len)

    def render(table: dict[tuple[str, str], Dependency]) -> str:
        return dependency_grid(
            rows, columns, lambda y, x: table[(y, x)].render(blank_nd=False)
        )

    return ExperimentOutcome(
        exp_id=exp_id,
        title=title,
        matches=matches,
        expected=render(expected),
        derived=render(derived),
    )


def derive() -> dict[tuple[str, str], Dependency]:
    return derive_sc_grid("o", "m")


def run() -> ExperimentOutcome:
    return run_sc_experiment(
        "table06",
        "(O, M) structure/content template",
        "o",
        "m",
        golden.TABLE6_OM_SC,
    )

"""Table 4 — the O/M/MO template.

Derived by expanding Table 5 with the paper's ``stronger`` rule: "the
entries associated with a modifier-observer can be considered as a
function that returns the stronger dependency between the corresponding
modifier and observer entries."  This is also "exactly the semantics that
is captured by recoverability [and serial dependency]".
"""

from __future__ import annotations

from repro.core.classification import OpClass
from repro.core.dependency import Dependency
from repro.core.templates import d1_entry
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome, dependency_grid

__all__ = ["derive", "run"]

_CLASSES = [OpClass.O, OpClass.M, OpClass.MO]


def derive() -> dict[tuple[str, str], Dependency]:
    """Expand Table 5 over all three classes."""
    return {
        (y.render(), x.render()): d1_entry(y, x)
        for y in _CLASSES
        for x in _CLASSES
    }


def run() -> ExperimentOutcome:
    derived = derive()
    expected = {key: Dependency[name] for key, name in golden.TABLE4_OMO.items()}
    matches = derived == expected

    def render(table: dict[tuple[str, str], Dependency]) -> str:
        labels = [cls.render() for cls in _CLASSES]
        return dependency_grid(
            labels, labels, lambda y, x: table[(y, x)].render(blank_nd=False)
        )

    return ExperimentOutcome(
        exp_id="table04",
        title="O/M/MO template (stronger-expansion of Table 5)",
        matches=matches,
        expected=render(expected),
        derived=render(derived),
    )

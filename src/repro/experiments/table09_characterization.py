"""Table 9 — the Stage-2 D1-D5 characterisation of the QStack operations.

Derived by running Stage 2 of the methodology over the executable QStack
specification: classification, locality kinds, return-value summary,
globality and declared references for Push/Pop/Deq/Size/Top.

The comparison target is ``TABLE9_CORRECTED``: the paper's printed
reference column contradicts its own text ("the back pointer or stack
pointer (denoted by b) ... is used by Enq, Push, Pop and Top ... the
front pointer (denoted by f) ... is used by the Deq operation") and its
own Figure 2 and Table 14 derivation, which only work with the text's
assignment.  The mismatch against the literal printing is reported as a
note rather than a failure.
"""

from __future__ import annotations

from repro.adts.qstack import QStackSpec
from repro.core.profile import characterize_all
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome

__all__ = ["derive", "run"]

_COLUMNS = ("Op", "obs/mod", "Cont/Str", "return-value", "Locality", "Reference")


def derive() -> dict[str, tuple[str, str, str, str, str]]:
    """Stage-2 rows for the worked-example operations."""
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    profiles = characterize_all(adt)
    return {
        name: profile.table9_row()[1:]  # drop the leading name column
        for name, profile in profiles.items()
    }


def _render(rows: dict[str, tuple[str, str, str, str, str]]) -> str:
    lines = [" | ".join(_COLUMNS)]
    for name in golden.QSTACK_WORKED_OPERATIONS:
        lines.append(" | ".join([name, *rows[name]]))
    return "\n".join(lines)


def run() -> ExperimentOutcome:
    derived = derive()
    corrected = golden.TABLE9_CORRECTED
    printed = golden.TABLE9_AS_PRINTED
    matches = all(derived[name] == corrected[name] for name in corrected)
    notes = [
        "compared against the text/Figure-2 reference assignment; the "
        "paper's printed Table 9 swaps f and b in the Reference column"
    ]
    printed_diffs = [
        name for name in printed if derived[name] != printed[name]
    ]
    notes.append(
        f"cells differing from the literal printing: {sorted(printed_diffs)} "
        "(reference column only)"
    )
    return ExperimentOutcome(
        exp_id="table09",
        title="Stage-2 characterisation of Push/Pop/Deq/Size/Top",
        matches=matches,
        expected=_render(corrected),
        derived=_render(derived),
        notes=notes,
    )

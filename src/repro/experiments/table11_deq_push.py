"""Table 11 — the (Deq, Push) entry after Stage-4 outcome refinement.

"Only the outcome of the Push operation helps in refining the existing
dependency": conditioned on ``Push_out = nok`` the Push acts as an
observer (CD), conditioned on ``Push_out = ok`` as a modifier-observer
(AD).  The default (auto) partition derives exactly this shape: the joint
outcome cells collapse to Push-only conditions because Deq's outcome is
determined by Push's when the two run back to back.
"""

from __future__ import annotations

from repro.adts.qstack import QStackSpec
from repro.core.entry import Entry
from repro.core.methodology import derive as derive_tables
from repro.experiments import golden
from repro.experiments.base import (
    ExperimentOutcome,
    entry_signature,
    paper_condition,
    render_signature,
)

__all__ = ["derive", "run"]


def derive() -> Entry:
    """The Stage-4 (Deq, Push) entry under default (validated) options."""
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    return derive_tables(adt).stage4_table.entry("Deq", "Push")


def run() -> ExperimentOutcome:
    entry = derive()
    derived = entry_signature(entry)
    expected = golden.TABLE11_DEQ_PUSH
    matches = derived == expected

    def pretty(signature) -> str:
        return "\n".join(
            sorted(
                f"({dep}, {paper_condition(cond, 'Push', 'Deq')})"
                for dep, cond in signature
            )
        )

    return ExperimentOutcome(
        exp_id="table11",
        title="(Deq, Push) outcome refinement",
        matches=matches,
        expected=pretty(expected),
        derived=pretty(derived),
        notes=[f"raw signature: {render_signature(derived)}"],
    )

"""Experiment X7 — the derived tables go beyond commutativity.

The paper positions its methodology against the classical
commutativity-only view (its reference [3] is literally titled "Beyond
Commutativity"): commutativity can only say *yes* (interleave freely) or
*no* (exclude), while dependency-typed, condition-refined entries grade
the *no* into CD/AD and carve conditional ND out of statically
conflicting pairs.

For every built-in ADT the experiment checks two claims:

* **Conservative containment** — wherever operation-level commutativity
  holds (every invocation pair commutes in every state), the derived
  table's entry is unconditionally ND: the methodology never *loses*
  classical concurrency.
* **Strict gain** — among the pairs commutativity must exclude, the
  derived table weakens a non-trivial number: to CD (commit ordering
  instead of exclusion) or to conditional ND (state/outcome-dependent
  interleaving).  The per-ADT gains are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adts.registry import builtin_names, make_adt
from repro.core.dependency import Dependency
from repro.core.methodology import derive as derive_tables
from repro.experiments.base import ExperimentOutcome
from repro.semantics.commutativity import commutativity_table

__all__ = ["BeyondReport", "derive", "run"]


@dataclass(frozen=True)
class BeyondReport:
    """Per-ADT comparison of the derived table against commutativity."""

    adt_name: str
    pairs: int
    commuting: int
    containment_violations: int  #: commuting pairs not unconditionally ND
    conflicting: int
    weakened_to_cd: int  #: conflicting pairs needing only commit order
    conditional_nd: int  #: conflicting pairs with conditional interleaving

    @property
    def gains(self) -> int:
        return self.weakened_to_cd + self.conditional_nd

    def render(self) -> str:
        return (
            f"{self.adt_name:13s} {self.pairs:3d} pairs: {self.commuting} "
            f"commute (containment violations: "
            f"{self.containment_violations}); of {self.conflicting} "
            f"conflicting, {self.weakened_to_cd} weakened to CD, "
            f"{self.conditional_nd} gained conditional ND"
        )


def _report(adt_name: str) -> BeyondReport:
    adt = make_adt(adt_name)
    commutes = commutativity_table(adt)
    table = derive_tables(adt).final_table
    pairs = commuting = violations = conflicting = to_cd = conditional = 0
    for invoked in table.operations:
        for executing in table.operations:
            pairs += 1
            entry = table.entry(invoked, executing)
            if commutes[(invoked, executing)]:
                commuting += 1
                if entry.is_conditional or entry.strongest() is not Dependency.ND:
                    violations += 1
                continue
            conflicting += 1
            if entry.strongest() is Dependency.CD and not entry.is_conditional:
                to_cd += 1
            elif entry.weakest() is Dependency.ND:
                conditional += 1
            elif entry.strongest() is Dependency.CD:
                to_cd += 1
    return BeyondReport(
        adt_name=adt_name,
        pairs=pairs,
        commuting=commuting,
        containment_violations=violations,
        conflicting=conflicting,
        weakened_to_cd=to_cd,
        conditional_nd=conditional,
    )


def derive() -> list[BeyondReport]:
    """Reports for every built-in ADT."""
    return [_report(name) for name in builtin_names()]


def run() -> ExperimentOutcome:
    reports = derive()
    containment = all(report.containment_violations == 0 for report in reports)
    gains = all(report.gains > 0 for report in reports)
    matches = containment and gains
    return ExperimentOutcome(
        exp_id="x7-beyond-commutativity",
        title="Derived tables strictly extend commutativity-based tables",
        matches=matches,
        expected=(
            "every commuting pair stays unconditionally ND; every ADT has "
            "conflicting pairs weakened to commit ordering or conditional "
            "interleaving"
        ),
        derived="\n".join(report.render() for report in reports),
        notes=[
            f"containment holds: {containment}",
            f"strict gains everywhere: {gains}",
        ],
    )

"""Experiment X1 — refinement increases the potential for concurrency.

Section 4.4: "Each step uses more semantic information to produce a
compatibility table that offers more potential for concurrency among
operations."  Two measurements:

* **Static**: the mean best-case restrictiveness of the table (ND=0,
  CD=1, AD=2 per cell) must be non-increasing along
  no-semantics -> Stage 3 -> Stage 4 -> Stage 5.
* **Dynamic**: the same synthetic workloads simulated under each table
  (blocking policy, averaged over seeds) — committed-transaction
  throughput rises and blocked time falls as the table weakens.

A classical commutativity-only table (conflict = AD) is reported
alongside as the traditional baseline the paper positions itself against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adts.qstack import QStackSpec
from repro.cc.simulator import SimulationConfig, simulate
from repro.cc.workload import WorkloadConfig, generate
from repro.core.dependency import Dependency
from repro.core.entry import Entry
from repro.core.methodology import derive as derive_tables
from repro.core.table import CompatibilityTable
from repro.experiments import golden
from repro.experiments.base import ExperimentOutcome
from repro.semantics.commutativity import commutativity_table

__all__ = ["StageMeasurement", "derive", "run"]


@dataclass(frozen=True)
class StageMeasurement:
    """Static and dynamic observables of one table."""

    label: str
    restrictiveness: float
    mean_throughput: float
    mean_blocked_time: float
    mean_committed: float

    def render(self) -> str:
        return (
            f"{self.label:13s} restrictiveness={self.restrictiveness:.2f} "
            f"throughput={self.mean_throughput:.3f} "
            f"blocked={self.mean_blocked_time:.1f} "
            f"committed={self.mean_committed:.1f}"
        )


def _all_ad_table(operations: list[str]) -> CompatibilityTable:
    table = CompatibilityTable(operations, name="no-semantics")
    for invoked in operations:
        for executing in operations:
            table.set_entry(invoked, executing, Entry.unconditional(Dependency.AD))
    return table


def _commutativity_table(adt: QStackSpec) -> CompatibilityTable:
    commutes = commutativity_table(adt)
    operations = adt.operation_names()
    table = CompatibilityTable(operations, name="commutativity")
    for invoked in operations:
        for executing in operations:
            dependency = (
                Dependency.ND if commutes[(invoked, executing)] else Dependency.AD
            )
            table.set_entry(invoked, executing, Entry.unconditional(dependency))
    return table


def derive(
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    transactions: int = 8,
    operations_per_transaction: int = 3,
) -> list[StageMeasurement]:
    """Measure every refinement level over the same workloads."""
    adt = QStackSpec(operations=golden.QSTACK_WORKED_OPERATIONS)
    result = derive_tables(adt)
    tables = [
        ("no-semantics", _all_ad_table(result.operations)),
        ("commutativity", _commutativity_table(adt)),
        ("stage3", result.stage3_table),
        ("stage4", result.stage4_table),
        ("stage5", result.stage5_table),
    ]
    measurements = []
    for label, table in tables:
        throughputs, blocked, committed = [], [], []
        for seed in seeds:
            workload = generate(
                adt,
                "shared",
                WorkloadConfig(
                    transactions=transactions,
                    operations_per_transaction=operations_per_transaction,
                    seed=seed,
                ),
            )
            metrics = simulate(
                SimulationConfig(
                    adt=adt,
                    table=table,
                    workload=workload,
                    policy="blocking",
                    restart_aborted=True,
                )
            )
            throughputs.append(metrics.throughput)
            blocked.append(metrics.total_blocked_time)
            committed.append(metrics.committed)
        measurements.append(
            StageMeasurement(
                label=label,
                restrictiveness=table.restrictiveness(),
                mean_throughput=sum(throughputs) / len(throughputs),
                mean_blocked_time=sum(blocked) / len(blocked),
                mean_committed=sum(committed) / len(committed),
            )
        )
    return measurements


def run() -> ExperimentOutcome:
    measurements = derive()
    by_label = {m.label: m for m in measurements}
    stage_order = ["no-semantics", "stage3", "stage4", "stage5"]
    restrictiveness = [by_label[label].restrictiveness for label in stage_order]
    static_monotone = all(
        earlier >= later
        for earlier, later in zip(restrictiveness, restrictiveness[1:])
    )
    dynamic_improves = (
        by_label["stage5"].mean_throughput > by_label["no-semantics"].mean_throughput
        and by_label["stage5"].mean_blocked_time
        < by_label["no-semantics"].mean_blocked_time
    )
    matches = static_monotone and dynamic_improves
    derived = "\n".join(m.render() for m in measurements)
    expected = (
        "restrictiveness non-increasing along "
        "no-semantics -> stage3 -> stage4 -> stage5;\n"
        "stage5 throughput above and blocked time below the no-semantics "
        "baseline"
    )
    return ExperimentOutcome(
        exp_id="x1-refinement",
        title="Each refinement stage offers more potential for concurrency",
        matches=matches,
        expected=expected,
        derived=derived,
        notes=[
            f"static monotonicity: {static_monotone}",
            f"dynamic improvement: {dynamic_improves}",
        ],
    )

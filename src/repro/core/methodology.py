"""The five-stage compatibility-table derivation (Section 5).

Given an executable ADT specification, :func:`derive` runs the paper's
methodology end to end:

* **Stage 1** — construct the object graph and identify the references.
* **Stage 2** — characterise each operation along D1-D5
  (:mod:`repro.core.profile`; the QStack result is the paper's Table 9).
* **Stage 3** — build the initial compatibility table from the template
  tables: the D1 lookup (Table 5 with MO expansion) and the D2 lookup
  (Tables 6-8 via Table 2), combined with the *least restrictive across
  dimensions* rule (the QStack result is Table 10).
* **Stage 4** — refine entries with input/output semantics: outcome
  partitioning ("when the outcome is nok, Push acts as an observer") and
  input-equality conditions (Tables 11-13).
* **Stage 5** — refine entries of non-global operation pairs with
  locality predicates built from their references or key arguments
  (Table 14's ``f ≠ b``).

Every Stage-4/5 condition the pipeline emits is, by default, *validated*
against the bounded state space: a no-dependency condition is only added
if the two operations provably commute in every state (and for every
argument pair) satisfying it.  ``paper_fidelity`` options disable the
validation guards where the paper's printed tables are themselves
unguarded (see EXPERIMENTS.md for the two affected cells).
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.classification import OpClass, outcome_label
from repro.core.conditions import (
    And,
    ArgsDistinct,
    Condition,
    ConditionContext,
    InputsEqual,
    OutcomeIs,
    OutcomesEqual,
    ReferencesDistinct,
    ReferencesEqual,
)
from repro.core.dependency import Dependency, weaker
from repro.core.entry import ConditionalDependency, Entry
from repro.core.profile import OperationProfile, characterize_all
from repro.core.table import CompatibilityTable
from repro.core.templates import d1_entry, d2_entry
from repro.graph.instrument import EdgeAttribution
from repro.graph.object_graph import ObjectGraph
from repro.obs.profiling import DerivationProfile, StageProfiler
from repro.obs.tracers import Tracer
from repro.perf.cache import (
    DEFAULT_CACHE_MAXSIZE,
    ExecutionCache,
    install_execution_cache,
)
from repro.perf.evidence import EvidenceBase
from repro.perf.parallel import resolve_jobs, worker_pool
from repro.spec.adt import ADTSpec, EnumerationBounds
from repro.spec.operation import Invocation

__all__ = [
    "MethodologyOptions",
    "DerivationResult",
    "derive",
    "stage3_dependency",
]


@dataclass(frozen=True)
class MethodologyOptions:
    """Tuning knobs of the derivation pipeline.

    Attributes:
        bounds: Enumeration bounds (default: the ADT's own).
        attribution: Ordering-edge locality attribution (DESIGN.md §5.2).
        outcome_partition: Stage-4 outcome partition shape — ``"auto"``
            (joint, collapsed to one-sided where the other outcome doesn't
            matter), ``"first"``, ``"second"``, ``"joint"`` or ``"none"``.
        outcome_feasibility: ``"serial"`` keeps only outcome combinations
            observable when the two operations run back to back;
            ``"any"`` keeps the full cross product (the paper's Table 12
            includes a serially-infeasible cell, so its reproduction uses
            ``"any"``).
        refine_inputs: Add Stage-4 input-equality conditions (Table 13).
        refine_localities: Run Stage 5 at all.
        use_annotations: Take the Stage-2 characterisation from the
            operations' ``declared_profile`` annotations instead of
            deriving it by enumeration (the DESIGN.md §5 ablation).
            Stages 4-5 still use execution evidence.
        validate_conditions: Empirically validate every emitted ND
            condition by exhaustive commutativity checking.  Disabling
            this reproduces the paper's literal Table 13 (whose unguarded
            same-input condition is unsound at the capacity boundary).
        use_cache: Install a shared execution cache for the derivation
            (see ``docs/PERFORMANCE.md``); results are bit-identical
            either way.
        cache_maxsize: Entry bound of that cache.
        jobs: Worker processes for the Stage-4/5 pair fan-out
            (``1`` = sequential, ``0`` = one per CPU).
    """

    bounds: EnumerationBounds | None = None
    attribution: EdgeAttribution = EdgeAttribution.BOTH
    outcome_partition: str = "auto"
    outcome_feasibility: str = "serial"
    refine_inputs: bool = True
    refine_localities: bool = True
    validate_conditions: bool = True
    use_annotations: bool = False
    #: Memoize every execution behind one shared
    #: :class:`~repro.perf.cache.ExecutionCache` for the duration of the
    #: derivation.  Deterministic specs make the cached and uncached
    #: paths bit-identical; disabling exists for benchmarking and audit.
    use_cache: bool = True
    #: Entry bound of the per-derivation execution cache.
    cache_maxsize: int = DEFAULT_CACHE_MAXSIZE
    #: Worker processes for the pair-level Stage-4/5 fan-out.  ``1`` is
    #: fully sequential (no pool); ``0`` means one worker per CPU.
    jobs: int = 1


@dataclass
class DerivationResult:
    """Everything the five stages produce for one ADT."""

    adt_name: str
    operations: list[str]
    #: Stage 1 — a sample object graph (built from the initial state).
    object_graph: ObjectGraph
    #: Stage 1 — the reference names declared by the object.
    references: list[str]
    #: Stage 2 — D1-D5 characterisation per operation (Table 9).
    profiles: dict[str, OperationProfile]
    #: Stage 3 — the initial compatibility table (Table 10).
    stage3_table: CompatibilityTable
    #: Stage 4 — after outcome/input refinement (Tables 11-13 live here).
    stage4_table: CompatibilityTable
    #: Stage 5 — after locality-predicate refinement (Table 14).
    stage5_table: CompatibilityTable
    #: Free-form derivation notes (validation outcomes, skipped candidates).
    notes: list[str] = field(default_factory=list)
    #: Per-stage wall-time and table-entry-count profile of the run.
    profile: DerivationProfile | None = None

    @property
    def final_table(self) -> CompatibilityTable:
        """The fully refined table (output of Stage 5)."""
        return self.stage5_table

    def stage_tables(self) -> list[tuple[str, CompatibilityTable]]:
        """The three tables in stage order, labelled."""
        return [
            ("stage3", self.stage3_table),
            ("stage4", self.stage4_table),
            ("stage5", self.stage5_table),
        ]


# ---------------------------------------------------------------------------
# Stage 3
# ---------------------------------------------------------------------------

def stage3_dependency(
    invoked: OperationProfile, executing: OperationProfile
) -> Dependency:
    """The Stage-3 entry for one operation pair.

    D1: the Table-5 lookup with MO expansion.  D2: the Tables-6/7/8 lookup
    over the operations' locality components.  "The final dependency ...
    is taken to be the least restrictive dependency of the dependencies
    specified by the appropriate template tables in each dimension."
    """
    from_d1 = d1_entry(invoked.op_class, executing.op_class)
    from_d2 = d2_entry(
        invoked.locality.components(), executing.locality.components()
    )
    if from_d2 is None:
        return from_d1
    return weaker(from_d1, from_d2)


def _stage3_table(
    operations: Sequence[str], profiles: Mapping[str, OperationProfile]
) -> CompatibilityTable:
    table = CompatibilityTable(operations, name="stage3")
    for invoked in operations:
        for executing in operations:
            dependency = stage3_dependency(profiles[invoked], profiles[executing])
            table.set_entry(invoked, executing, Entry.unconditional(dependency))
    return table


# ---------------------------------------------------------------------------
# Stage 4 — outcome and input refinement
# ---------------------------------------------------------------------------

def _cell_dependency(
    evidence: EvidenceBase,
    profiles: Mapping[str, OperationProfile],
    invoked: str,
    executing: str,
    invoked_label: str | None,
    executing_label: str | None,
    cap: Dependency,
) -> Dependency | None:
    """Template-derived dependency of one outcome cell (paper-literal path).

    The restricted classes feed the D1 template; the cap keeps a cell from
    ever being stronger than what Stage 3 already established through D2.
    Returns ``None`` when a label never occurs for the operation.

    The paper's own derivations use this reasoning, and for its QStack
    examples it is sound; in general, conditioning the *invoked*
    operation's class on its outcome can hide a dependency (a Push whose
    ``ok`` exists only because a preceding Pop made room is not a pure
    modifier relative to that Pop), which is why the validated pipeline
    uses :func:`_empirical_cells` instead.
    """
    if executing_label is None:
        executing_class: OpClass | None = profiles[executing].op_class
    else:
        executing_class = evidence.class_given_label(executing, executing_label)
    if invoked_label is None:
        invoked_class: OpClass | None = profiles[invoked].op_class
    else:
        invoked_class = evidence.class_given_label(invoked, invoked_label)
    if executing_class is None or invoked_class is None:
        return None
    return weaker(d1_entry(invoked_class, executing_class), cap)


def _empirical_cells(
    evidence: EvidenceBase,
    invoked: str,
    executing: str,
    cap: Dependency,
) -> dict[tuple[str, str], Dependency]:
    """Required dependency per serially-feasible outcome combination.

    For every invocation pair and every state, executing the pair back to
    back yields the outcome-label cell it witnesses; the dependency the
    cell *requires* is

    * ND when the pair commutes in that state,
    * CD when it does not commute but the follower's return value is
      unaffected by the first operation (recoverable: commit ordering
      suffices), and
    * AD otherwise (the follower observed the first operation's effect).

    Each cell takes the strongest requirement over its witnesses, capped
    at the Stage-3 verdict.  Soundness over the enumerated fragment is by
    construction.
    """
    cells: dict[tuple[str, str], Dependency] = {}
    for first, second in evidence.invocation_pairs(executing, invoked):
        for state in evidence.states():
            first_execution = evidence.execute(state, first)
            second_execution = evidence.execute(
                first_execution.post_state, second
            )
            key = (outcome_label(first_execution), outcome_label(second_execution))
            if evidence.commute_in_state(state, first, second):
                required = Dependency.ND
            else:
                alone = evidence.execute(state, second).returned
                if alone == second_execution.returned:
                    required = Dependency.CD
                else:
                    required = Dependency.AD
            cells[key] = max(cells.get(key, Dependency.ND), required)
    return {key: weaker(value, cap) for key, value in cells.items()}


def _joint_cell_map(
    evidence: EvidenceBase,
    profiles: Mapping[str, OperationProfile],
    invoked: str,
    executing: str,
    current: Dependency,
    options: MethodologyOptions,
) -> dict[tuple[str, str], Dependency]:
    """The (x_label, y_label) -> dependency map all partitions derive from.

    Validated mode computes the empirically *required* dependency per
    serially-witnessed cell; paper-literal mode looks up the D1 template
    with outcome-restricted classes, over serially feasible combinations
    or the full label cross product per ``outcome_feasibility``.
    """
    if options.validate_conditions:
        return _empirical_cells(evidence, invoked, executing, current)
    if options.outcome_feasibility == "serial":
        combos = sorted(evidence.serial_label_pairs(executing, invoked))
    else:
        combos = [
            (x_label, y_label)
            for x_label in sorted(evidence.labels(executing))
            for y_label in sorted(evidence.labels(invoked))
        ]
    cells = {}
    for x_label, y_label in combos:
        dep = _cell_dependency(
            evidence, profiles, invoked, executing, y_label, x_label, current
        )
        if dep is not None:
            cells[(x_label, y_label)] = dep
    return cells


def _outcome_cells(
    evidence: EvidenceBase,
    profiles: Mapping[str, OperationProfile],
    invoked: str,
    executing: str,
    current: Dependency,
    options: MethodologyOptions,
) -> list[tuple[Dependency, Condition]] | None:
    """Stage-4 outcome partition for one pair, or ``None`` if unrefinable."""
    partition = options.outcome_partition
    if partition == "none":
        return None
    joint_map = _joint_cell_map(
        evidence, profiles, invoked, executing, current, options
    )
    if not joint_map:
        return None
    # When every outcome combination requires the same dependency, no
    # condition is needed: the entry weakens *unconditionally*.  This is
    # how two Deposits — pure modifiers whose D1/D2 templates top out at
    # CD — are recognised as commuting by the validated pipeline.
    distinct = set(joint_map.values())
    if len(distinct) == 1:
        (dep,) = distinct
        if dep < current:
            from repro.core.conditions import Always

            return [(dep, Always())]
        return None
    by_first: dict[str, Dependency] = {}
    by_second: dict[str, Dependency] = {}
    for (x_label, y_label), dep in joint_map.items():
        by_first[x_label] = max(by_first.get(x_label, Dependency.ND), dep)
        by_second[y_label] = max(by_second.get(y_label, Dependency.ND), dep)

    def first_only() -> list[tuple[Dependency, Condition]] | None:
        if len(by_first) < 2:
            return None
        return [
            (dep, OutcomeIs("first", label))
            for label, dep in sorted(by_first.items())
        ]

    def second_only() -> list[tuple[Dependency, Condition]] | None:
        if len(by_second) < 2:
            return None
        return [
            (dep, OutcomeIs("second", label))
            for label, dep in sorted(by_second.items())
        ]

    def joint() -> list[tuple[Dependency, Condition]]:
        return [
            (dep, And(OutcomeIs("first", x_label), OutcomeIs("second", y_label)))
            for (x_label, y_label), dep in sorted(joint_map.items())
        ]

    if partition == "first":
        return first_only()
    if partition == "second":
        return second_only()
    if partition == "joint":
        return joint()

    # "auto": use the joint cells, collapsed to a one-sided partition when
    # the other side's outcome never changes the verdict.
    first_determined = all(
        joint_map[(x_label, y_label)] == by_first[x_label]
        for (x_label, y_label) in joint_map
    )
    second_determined = all(
        joint_map[(x_label, y_label)] == by_second[y_label]
        for (x_label, y_label) in joint_map
    )
    if first_determined and len(by_first) > 1:
        return first_only()
    if second_determined and len(by_second) > 1:
        return second_only()
    return joint()


def _validated_inputs_condition(
    evidence: EvidenceBase,
    invoked: str,
    executing: str,
    options: MethodologyOptions,
    notes: list[str],
) -> Condition | None:
    """The Stage-4 input-equality refinement (Table 13), guarded if needed.

    Candidate: equal inputs ⇒ no dependency.  Validation checks
    commutativity in every state for every equal-argument invocation pair;
    when the bare condition fails only at outcome boundaries, the guarded
    ``inputs-equal ∧ outcomes-equal`` variant is tried.
    """
    first_ops = evidence.by_operation[executing]
    second_ops = evidence.by_operation[invoked]
    equal_pairs = [
        (first, second)
        for first in first_ops
        for second in second_ops
        if first.args and first.args == second.args
    ]
    if not equal_pairs:
        return None
    if not options.validate_conditions:
        return InputsEqual()

    def commutes_under(guarded: bool) -> bool:
        for first, second in equal_pairs:
            for state in evidence.states():
                if guarded:
                    first_execution = evidence.execute(state, first)
                    second_execution = evidence.execute(
                        first_execution.post_state, second
                    )
                    if outcome_label(first_execution) != outcome_label(
                        second_execution
                    ):
                        continue
                if not evidence.commute_in_state(state, first, second):
                    return False
        return True

    if commutes_under(guarded=False):
        return InputsEqual()
    if commutes_under(guarded=True):
        notes.append(
            f"({invoked}, {executing}): bare inputs-equal condition fails at an "
            "outcome boundary; emitted the outcome-guarded variant instead"
        )
        return And(InputsEqual(), OutcomesEqual())
    notes.append(
        f"({invoked}, {executing}): inputs-equal condition rejected by "
        "commutativity validation"
    )
    return None


def _stage4_pair_entry(
    evidence: EvidenceBase,
    profiles: Mapping[str, OperationProfile],
    invoked: str,
    executing: str,
    entry: Entry,
    options: MethodologyOptions,
) -> tuple[Entry, list[str]]:
    """The Stage-4 entry for one operation pair (plus its derivation notes).

    A pure function of the evidence base — the unit of the pair-level
    parallel fan-out.
    """
    notes: list[str] = []
    current = entry.strongest()
    pairs: list[ConditionalDependency] = []
    if current is not Dependency.ND:
        cells = _outcome_cells(
            evidence, profiles, invoked, executing, current, options
        )
        if cells and any(dep < current for dep, _ in cells):
            pairs = [
                ConditionalDependency(dep, condition) for dep, condition in cells
            ]
    if not pairs:
        pairs = list(entry.pairs)
    strongest_so_far = max(pair.dependency for pair in pairs)
    if options.refine_inputs and strongest_so_far is not Dependency.ND:
        inputs_condition = _validated_inputs_condition(
            evidence, invoked, executing, options, notes
        )
        if inputs_condition is not None:
            pairs.append(
                ConditionalDependency(Dependency.ND, inputs_condition)
            )
    return Entry(pairs), notes


def _stage4_table(
    evidence: EvidenceBase,
    profiles: Mapping[str, OperationProfile],
    stage3: CompatibilityTable,
    options: MethodologyOptions,
    notes: list[str],
    pair_map=None,
) -> CompatibilityTable:
    table = CompatibilityTable(stage3.operations, name="stage4")
    cells = list(stage3.cells())
    if pair_map is not None:
        results = pair_map(
            _pair_task,
            [("stage4", invoked, executing, entry) for invoked, executing, entry in cells],
        )
    else:
        results = [
            _stage4_pair_entry(evidence, profiles, invoked, executing, entry, options)
            for invoked, executing, entry in cells
        ]
    for (invoked, executing, _entry), (new_entry, pair_notes) in zip(cells, results):
        table.set_entry(invoked, executing, new_entry)
        notes.extend(pair_notes)
    return table


# ---------------------------------------------------------------------------
# Stage 5 — locality-predicate refinement
# ---------------------------------------------------------------------------

def _stage5_candidate(
    invoked_profile: OperationProfile, executing_profile: OperationProfile
) -> tuple[Condition, Condition] | None:
    """The (no-dependency condition, complement) pair for a non-global pair.

    * Implicit/implicit referencing with disjoint declared reference sets:
      references-distinct predicates, the paper's ``f ≠ b``.
    * Explicit/explicit referencing: distinct key arguments.
    """
    if invoked_profile.locality.is_global or executing_profile.locality.is_global:
        return None
    invoked_refs = sorted(invoked_profile.declared_references)
    executing_refs = sorted(executing_profile.declared_references)
    if (
        invoked_profile.referencing == "implicit"
        and executing_profile.referencing == "implicit"
        and invoked_refs
        and executing_refs
        and not set(invoked_refs) & set(executing_refs)
    ):
        distinct = [
            ReferencesDistinct(second_ref, first_ref)
            for second_ref in invoked_refs
            for first_ref in executing_refs
        ]
        equal = [
            ReferencesEqual(second_ref, first_ref)
            for second_ref in invoked_refs
            for first_ref in executing_refs
        ]
        condition = distinct[0] if len(distinct) == 1 else And(*distinct)
        # The complement of "all pairs distinct" is "some pair equal";
        # for the single-pair case this is the paper's plain ``f = b``.
        if len(equal) == 1:
            complement: Condition = equal[0]
        else:
            from repro.core.conditions import Not

            complement = Not(condition)
        return condition, complement
    if (
        invoked_profile.referencing == "explicit"
        and executing_profile.referencing == "explicit"
        and invoked_profile.has_inputs
        and executing_profile.has_inputs
    ):
        from repro.core.conditions import Not

        condition = ArgsDistinct(0)
        return condition, Not(condition)
    return None


def _validate_stage5(
    evidence: EvidenceBase,
    invoked: str,
    executing: str,
    condition: Condition,
) -> bool:
    """Check a candidate ND condition: wherever it holds, the pair commutes.

    The context carries the return values of executing the pair back to
    back, so conditions conjoined with Stage-4 outcome predicates are
    evaluable; commutativity of the pair then guarantees the condition
    holds identically in the reversed order.
    """
    for first, second in evidence.invocation_pairs(executing, invoked):
        for state in evidence.states():
            first_execution = evidence.execute(state, first)
            second_execution = evidence.execute(
                first_execution.post_state, second
            )
            context = ConditionContext(
                first_invocation=first,
                second_invocation=second,
                pre_graph=evidence.adt.build_graph(state),
                first_return=first_execution.returned,
                second_return=second_execution.returned,
            )
            if condition.evaluate(context) is not True:
                continue
            if not evidence.commute_in_state(state, first, second):
                return False
    return True


def _conjoin(outcome_condition: Condition, locality_condition: Condition) -> Condition:
    """``outcome ∧ locality``, dropping a vacuous outcome condition."""
    from repro.core.conditions import Always

    if isinstance(outcome_condition, Always):
        return locality_condition
    return And(outcome_condition, locality_condition)


def _stage5_entry_validated(
    evidence: EvidenceBase,
    invoked: str,
    executing: str,
    entry: Entry,
    condition: Condition,
    complement: Condition,
    notes: list[str],
) -> Entry:
    """Per-pair Stage-5 refinement with empirical validation.

    Each restrictive pair ``(dep, cond)`` is split into
    ``(ND, cond ∧ L)`` + ``(dep, cond ∧ ¬L)`` when the conjunction
    validates (the pair commutes in every state satisfying it); pairs whose
    conjunction fails validation are kept untouched.  This is how the
    soundness gap of the paper's bare ``f ≠ b`` at the capacity boundary
    is repaired: the ND condition acquires the ``Push_out = ok`` guard.
    """
    new_pairs: list[ConditionalDependency] = []
    refined_any = False
    for pair in entry.pairs:
        if pair.dependency is Dependency.ND:
            new_pairs.append(pair)
            continue
        nd_condition = _conjoin(pair.condition, condition)
        if _validate_stage5(evidence, invoked, executing, nd_condition):
            refined_any = True
            new_pairs.append(
                ConditionalDependency(
                    pair.dependency, _conjoin(pair.condition, complement)
                )
            )
            new_pairs.append(ConditionalDependency(Dependency.ND, nd_condition))
        else:
            notes.append(
                f"({invoked}, {executing}): locality predicate "
                f"{nd_condition.render()} rejected by commutativity validation"
            )
            new_pairs.append(pair)
    if not refined_any:
        return entry
    return Entry(new_pairs)


def _stage5_entry_paper(
    entry: Entry, condition: Condition, complement: Condition
) -> Entry:
    """Paper-literal Stage-5 shape (Table 14).

    The pairs carrying the entry's strongest dependency are collapsed into
    a single ``(strongest, ¬L)`` pair, weaker pairs are kept, and
    ``(ND, L)`` is added — reproducing
    ``{(CD, Push_out = nok), (AD, f = b), (ND, f ≠ b)}`` exactly.
    """
    strongest = entry.strongest()
    new_pairs: list[ConditionalDependency] = []
    replaced = False
    for pair in entry.pairs:
        if pair.dependency == strongest:
            replaced = True
            continue  # collapsed into the single complement pair below
        new_pairs.append(pair)
    if replaced:
        new_pairs.append(ConditionalDependency(strongest, complement))
    new_pairs.append(ConditionalDependency(Dependency.ND, condition))
    return Entry(new_pairs)


def _stage5_pair_entry(
    evidence: EvidenceBase,
    profiles: Mapping[str, OperationProfile],
    invoked: str,
    executing: str,
    entry: Entry,
    options: MethodologyOptions,
) -> tuple[Entry, list[str]]:
    """The Stage-5 entry for one operation pair (plus its derivation notes).

    Like :func:`_stage4_pair_entry`, a pure function of the evidence base
    and the unit of the pair-level parallel fan-out.
    """
    notes: list[str] = []
    if entry.strongest() is Dependency.ND:
        return entry, notes
    candidate = _stage5_candidate(profiles[invoked], profiles[executing])
    if candidate is None:
        return entry, notes
    condition, complement = candidate
    if options.validate_conditions:
        refined = _stage5_entry_validated(
            evidence, invoked, executing, entry, condition, complement, notes
        )
    else:
        refined = _stage5_entry_paper(entry, condition, complement)
    return refined, notes


def _stage5_table(
    evidence: EvidenceBase,
    profiles: Mapping[str, OperationProfile],
    stage4: CompatibilityTable,
    options: MethodologyOptions,
    notes: list[str],
    pair_map=None,
) -> CompatibilityTable:
    table = CompatibilityTable(stage4.operations, name="stage5")
    cells = list(stage4.cells())
    if pair_map is not None:
        results = pair_map(
            _pair_task,
            [("stage5", invoked, executing, entry) for invoked, executing, entry in cells],
        )
    else:
        results = [
            _stage5_pair_entry(evidence, profiles, invoked, executing, entry, options)
            for invoked, executing, entry in cells
        ]
    for (invoked, executing, _entry), (new_entry, pair_notes) in zip(cells, results):
        table.set_entry(invoked, executing, new_entry)
        notes.extend(pair_notes)
    return table


# ---------------------------------------------------------------------------
# Parallel fan-out plumbing
# ---------------------------------------------------------------------------

#: Per-process worker state: ``(evidence, profiles, options)``.  Populated
#: by the parent before forking (inherited for free under ``fork``) or by
#: :func:`_init_stage_worker` under ``spawn``; cleared by :func:`derive`.
_WORKER_STATE: dict[str, object] = {}


def _init_stage_worker(adt, names, bounds, attribution, options, profiles) -> None:
    """Pool initializer: ensure the worker holds a full evidence base.

    Under ``fork`` the parent's ``_WORKER_STATE`` (and its installed
    execution cache) arrive with the process image, so this is a no-op;
    under ``spawn`` the worker rebuilds the state from the pickled
    arguments, behind its own fresh cache.
    """
    if _WORKER_STATE:
        return
    if options.use_cache:
        install_execution_cache(ExecutionCache(maxsize=options.cache_maxsize))
    _WORKER_STATE["evidence"] = EvidenceBase(adt, names, bounds, attribution)
    _WORKER_STATE["profiles"] = profiles
    _WORKER_STATE["options"] = options


def _pair_task(task: tuple[str, str, str, Entry]) -> tuple[Entry, list[str]]:
    """One fan-out unit: dispatch a ``(stage, invoked, executing, entry)``
    tuple against the worker's evidence base."""
    stage, invoked, executing, entry = task
    evidence = _WORKER_STATE["evidence"]
    profiles = _WORKER_STATE["profiles"]
    options = _WORKER_STATE["options"]
    if stage == "stage4":
        return _stage4_pair_entry(
            evidence, profiles, invoked, executing, entry, options
        )
    return _stage5_pair_entry(
        evidence, profiles, invoked, executing, entry, options
    )


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------

def derive(
    adt: ADTSpec,
    operations: Sequence[str] | None = None,
    options: MethodologyOptions | None = None,
    tracer: Tracer | None = None,
) -> DerivationResult:
    """Run the five-stage methodology for an ADT.

    Args:
        adt: The executable specification.
        operations: Optional subset of operations to derive the table for
            (the paper's worked example uses Push/Pop/Deq/Top/Size).
        options: Pipeline knobs; defaults are the validated, automatic
            settings described in :class:`MethodologyOptions`.
        tracer: Optional trace-event sink; each pipeline stage emits a
            ``StageTimed`` event (wall time + table-entry counts).  The
            profile itself is always attached to the result.

    Returns:
        The :class:`DerivationResult` bundling the Stage-1 graph, the
        Stage-2 profiles, the Stage-3/4/5 tables and the stage profile.
    """
    options = options or MethodologyOptions()
    bounds = options.bounds or adt.default_bounds
    names = list(operations) if operations is not None else adt.operation_names()
    jobs = resolve_jobs(options.jobs)
    notes: list[str] = []

    # The shared execution cache: installed for the whole run so Stage 2
    # characterisation, the evidence base and the Stage-4/5 validators all
    # draw from one memoized pool.  Restored (not just removed) on exit so
    # nested derivations compose.
    cache = ExecutionCache(maxsize=options.cache_maxsize) if options.use_cache else None
    previous = install_execution_cache(cache) if cache is not None else None
    profiler = StageProfiler(adt.name, tracer, cache=cache)
    try:
        # Stage 1: the object graph and its references.
        with profiler.stage("stage1"):
            sample_graph = adt.build_graph(adt.initial_state())
            references = sorted(sample_graph.reference_names())

        # Stage 2: D1-D5 characterisation — derived by enumeration, or
        # taken from the operations' own declarations in annotation mode.
        with profiler.stage("stage2"):
            if options.use_annotations:
                from repro.core.profile import characterize_from_annotations

                profiles = characterize_from_annotations(adt, names)
            else:
                profiles = characterize_all(adt, names, bounds, options.attribution)

        # Stage 3: template-table lookup.
        with profiler.stage("stage3") as stage:
            stage3 = _stage3_table(names, profiles)
            stage.count_table(stage3)

        # Stages 4 and 5: conditional refinement over the evidence base,
        # fanned out per pair across worker processes when jobs > 1.
        with profiler.stage("evidence"):
            evidence = EvidenceBase(adt, names, bounds, options.attribution)
        with ExitStack() as stack:
            pair_map = None
            if jobs > 1:
                # Populate the worker state *before* the pool exists so
                # fork-started workers inherit the built evidence base;
                # spawn-started ones rebuild it from the initargs.
                _WORKER_STATE["evidence"] = evidence
                _WORKER_STATE["profiles"] = profiles
                _WORKER_STATE["options"] = options
                stack.callback(_WORKER_STATE.clear)
                pair_map = stack.enter_context(
                    worker_pool(
                        jobs,
                        _init_stage_worker,
                        (adt, names, bounds, options.attribution, options, profiles),
                    )
                )
            with profiler.stage("stage4") as stage:
                stage4 = _stage4_table(
                    evidence, profiles, stage3, options, notes, pair_map
                )
                stage.count_table(stage4)
            with profiler.stage("stage5") as stage:
                if options.refine_localities:
                    stage5 = _stage5_table(
                        evidence, profiles, stage4, options, notes, pair_map
                    )
                else:
                    stage5 = stage4.map_entries(
                        lambda *_args: _args[2], name="stage5"
                    )
                stage.count_table(stage5)
    finally:
        if cache is not None:
            install_execution_cache(previous)

    profile = profiler.profile
    profile.parallel_jobs = jobs
    if cache is not None:
        stats = cache.stats()
        profile.cache_hits = stats.hits
        profile.cache_misses = stats.misses
        profile.cache_evictions = stats.evictions

    return DerivationResult(
        adt_name=adt.name,
        operations=names,
        object_graph=sample_graph,
        references=references,
        profiles=profiles,
        stage3_table=stage3,
        stage4_table=stage4,
        stage5_table=stage5,
        notes=notes,
        profile=profile,
    )

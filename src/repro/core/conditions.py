"""Condition algebra for conditional compatibility entries (Stages 4-5).

From Stage 4 onward, a compatibility-table entry is no longer a single
dependency but a set of *(dependency, condition)* pairs; the condition is
"dependent on the predicate that describes the locality of the operation"
or on outcomes and input parameters (Section 4.4).  Conditions here form a
small AST that can be

* **evaluated** against a :class:`ConditionContext` — a concrete pre-state
  plus the two invocations and (once known) their return values.  The
  scheduler uses this to resolve conditional entries at run time with
  exactly the dynamic information the paper appeals to; and
* **rendered** in the paper's notation (``Push_out = nok``, ``f ≠ b``,
  ``Push_in^x = Push_in^y``) for the table-reproduction experiments.

Conditions over outcomes evaluate to ``None`` ("not yet decidable") while
the relevant return value is unknown; the entry-resolution logic treats an
undecidable condition as not holding, which errs towards the stronger
dependency and is therefore safe.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.graph.object_graph import ObjectGraph
from repro.spec.operation import Invocation
from repro.spec.returnvalue import ReturnValue

__all__ = [
    "ConditionContext",
    "Condition",
    "Always",
    "OutcomeIs",
    "OutcomesEqual",
    "InputsEqual",
    "ReferencesDistinct",
    "ReferencesEqual",
    "ArgsDistinct",
    "And",
    "Not",
]


@dataclass(frozen=True)
class ConditionContext:
    """Everything a condition may consult.

    ``first`` is the operation in execution (the paper's ``x``), ``second``
    the operation that follows (``y``).  ``pre_graph`` is the object graph
    *before either operation runs* — the paper evaluates reference
    predicates "before the operations are executed".  Return values may be
    ``None`` while not yet known.
    """

    first_invocation: Invocation
    second_invocation: Invocation
    pre_graph: ObjectGraph | None = None
    first_return: ReturnValue | None = None
    second_return: ReturnValue | None = None

    def returned(self, role: str) -> ReturnValue | None:
        """Return value of ``'first'`` or ``'second'``."""
        return self.first_return if role == "first" else self.second_return

    def invocation(self, role: str) -> Invocation:
        """Invocation of ``'first'`` or ``'second'``."""
        return self.first_invocation if role == "first" else self.second_invocation


class Condition(abc.ABC):
    """A predicate attached to a compatibility-table dependency."""

    @abc.abstractmethod
    def evaluate(self, context: ConditionContext) -> Optional[bool]:
        """Truth value in ``context``; ``None`` when not yet decidable."""

    @abc.abstractmethod
    def render(self) -> str:
        """The paper-style notation of the condition."""

    #: Number of semantic dimensions the condition exploits; used by the
    #: mutual-consistency check (a condition exploiting more semantics must
    #: carry a weaker dependency).  Composite conditions sum their parts.
    specificity: int = 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.render()


def _label_of(returned: ReturnValue) -> str:
    """Outcome label of a return value (outcome, or ``"result"``)."""
    return returned.outcome if returned.has_outcome else "result"


@dataclass(frozen=True, repr=False)
class Always(Condition):
    """The vacuous condition of an unconditional entry."""

    specificity: int = 0

    def evaluate(self, context: ConditionContext) -> Optional[bool]:
        return True

    def render(self) -> str:
        return "true"


@dataclass(frozen=True, repr=False)
class OutcomeIs(Condition):
    """``<Op>_out = <label>`` for the first or second operation (Stage 4)."""

    role: str  #: ``'first'`` (x, in execution) or ``'second'`` (y, invoked)
    label: str  #: ``"ok"``, ``"nok"`` or ``"result"``

    def evaluate(self, context: ConditionContext) -> Optional[bool]:
        returned = context.returned(self.role)
        if returned is None:
            return None
        return _label_of(returned) == self.label

    def render(self) -> str:
        marker = "x" if self.role == "first" else "y"
        return f"{marker}_out = {self.label}"

    def render_for(self, context_names: tuple[str, str]) -> str:
        """Render with actual operation names, e.g. ``Push_out = nok``."""
        first_name, second_name = context_names
        name = first_name if self.role == "first" else second_name
        suffix = "^x" if self.role == "first" else "^y"
        if first_name != second_name:
            suffix = ""
        return f"{name}_out{suffix} = {self.label}"


@dataclass(frozen=True, repr=False)
class InputsEqual(Condition):
    """``<Op>_in^x = <Op>_in^y`` — both invocations got equal arguments."""

    def evaluate(self, context: ConditionContext) -> Optional[bool]:
        return context.first_invocation.args == context.second_invocation.args

    def render(self) -> str:
        return "x_in = y_in"


@dataclass(frozen=True, repr=False)
class OutcomesEqual(Condition):
    """Both operations produced the same outcome label.

    The guard the validated pipeline adds to the paper's Table-13
    same-input condition: two equal-input executions commute except where
    one succeeds and the other hits the capacity boundary.
    """

    def evaluate(self, context: ConditionContext) -> Optional[bool]:
        if context.first_return is None or context.second_return is None:
            return None
        return _label_of(context.first_return) == _label_of(context.second_return)

    def render(self) -> str:
        return "x_out = y_out"


@dataclass(frozen=True, repr=False)
class ArgsDistinct(Condition):
    """First arguments differ — explicit-referencing disjointness (Stage 5).

    For explicitly referencing operations the input parameter determines
    the reference (Section 4.3's ``search(x)`` example); distinct key
    arguments therefore mean disjoint localities.
    """

    position: int = 0  #: argument position carrying the key

    def evaluate(self, context: ConditionContext) -> Optional[bool]:
        first_args = context.first_invocation.args
        second_args = context.second_invocation.args
        if len(first_args) <= self.position or len(second_args) <= self.position:
            return False
        return first_args[self.position] != second_args[self.position]

    def render(self) -> str:
        return f"x_in[{self.position}] ≠ y_in[{self.position}]"


@dataclass(frozen=True, repr=False)
class ReferencesDistinct(Condition):
    """``r1 ≠ r2`` — two references designate distinct composed-of edges.

    Evaluated on the pre-state graph, before either operation executes
    (Section 5: "before the operations are executed f and b refer to the
    same composed-of edge").  Dangling references compare equal to other
    dangling references (an empty object offers no disjointness), which is
    the conservative choice.
    """

    first_reference: str
    second_reference: str

    def evaluate(self, context: ConditionContext) -> Optional[bool]:
        if context.pre_graph is None:
            return None
        first = context.pre_graph.reference(self.first_reference)
        second = context.pre_graph.reference(self.second_reference)
        if first is None or second is None:
            return False
        return first != second

    def render(self) -> str:
        return f"{self.first_reference} ≠ {self.second_reference}"


@dataclass(frozen=True, repr=False)
class ReferencesEqual(Condition):
    """``r1 = r2`` — the complement of :class:`ReferencesDistinct`."""

    first_reference: str
    second_reference: str

    def evaluate(self, context: ConditionContext) -> Optional[bool]:
        distinct = ReferencesDistinct(
            self.first_reference, self.second_reference
        ).evaluate(context)
        return None if distinct is None else not distinct

    def render(self) -> str:
        return f"{self.first_reference} = {self.second_reference}"


@dataclass(frozen=True, repr=False)
class And(Condition):
    """Conjunction of conditions."""

    parts: tuple[Condition, ...]

    def __init__(self, *parts: Condition) -> None:
        # Flatten nested conjunctions for canonical rendering.
        flattened: list[Condition] = []
        for part in parts:
            if isinstance(part, And):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        object.__setattr__(self, "parts", tuple(flattened))

    @property
    def specificity(self) -> int:  # type: ignore[override]
        return sum(part.specificity for part in self.parts)

    def evaluate(self, context: ConditionContext) -> Optional[bool]:
        undecided = False
        for part in self.parts:
            value = part.evaluate(context)
            if value is False:
                return False
            if value is None:
                undecided = True
        return None if undecided else True

    def render(self) -> str:
        return " ∧ ".join(part.render() for part in self.parts)


@dataclass(frozen=True, repr=False)
class Not(Condition):
    """Negation of a condition."""

    part: Condition

    @property
    def specificity(self) -> int:  # type: ignore[override]
        return self.part.specificity

    def evaluate(self, context: ConditionContext) -> Optional[bool]:
        value = self.part.evaluate(context)
        return None if value is None else not value

    def render(self) -> str:
        return f"¬({self.part.render()})"

"""Locality analysis: structure/content kinds and globality (Defs. 11-19).

From the locality traces produced by executing an operation over the
bounded state space, this module derives the dimension-D2 and D4 answers
of the Stage-2 questionnaire:

* *D2* — does the operation observe/modify content, structure, or both?
  An operation's **observer kind** is ``S``, ``C`` or ``CS`` according to
  which of ``L^so`` / ``L^co`` are ever non-empty, and likewise its
  **modifier kind** from ``L^sm`` / ``L^cm``.
* *D4* — is the operation *global* (Def. 19: its locality always contains
  every primitive vertex, ``L_o ⊇ V_simple``) or non-global?

The per-kind globality flags implement the refined classes of Section 4.2
("global-content-observer", etc.); QStack's ``Size`` is a global structure
observer, ``Replace`` a global content observer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graph.instrument import EdgeAttribution
from repro.spec.adt import ADTSpec, EnumerationBounds, Execution
from repro.spec.enumeration import executions_of

__all__ = [
    "SCKind",
    "LocalityProfile",
    "profile_executions",
    "profile_invocation",
    "profile_operation",
]

#: A structure/content kind: "S", "C", "CS" or None (no such component).
SCKind = str | None


def _combine_kind(has_structure: bool, has_content: bool) -> SCKind:
    if has_structure and has_content:
        return "CS"
    if has_structure:
        return "S"
    if has_content:
        return "C"
    return None


def _kind_components(kind: SCKind) -> tuple[str, ...]:
    """Decompose a kind into its dimension letters ('s', 'c')."""
    if kind is None:
        return ()
    return tuple(letter.lower() for letter in kind)


@dataclass(frozen=True)
class LocalityProfile:
    """Aggregated locality characterisation of an invocation or operation.

    Attributes:
        observer_kind: ``S``/``C``/``CS``/None — which locality dimensions
            the operation ever *observes*.
        modifier_kind: ``S``/``C``/``CS``/None — which it ever *modifies*.
        is_global: Def. 19 over every enumerated state.
        global_kinds: The locality kinds (``"so"``, ``"sm"``, ``"co"``,
            ``"cm"``) that individually cover ``V_simple`` in every state —
            the refined global classes of Section 4.2.
        references_read: Names of references the operation ever read (D5).
        references_written: Names of references it ever retargeted.
    """

    observer_kind: SCKind
    modifier_kind: SCKind
    is_global: bool
    global_kinds: frozenset[str]
    references_read: frozenset[str]
    references_written: frozenset[str]

    @property
    def combined_kind(self) -> SCKind:
        """Single Cont/Str answer for Table 9 (union of both roles)."""
        obs = set(_kind_components(self.observer_kind))
        mod = set(_kind_components(self.modifier_kind))
        both = obs | mod
        return _combine_kind("s" in both, "c" in both)

    @property
    def locality_symbol(self) -> str:
        """``"G"`` or ``"L"`` — the D4 column of Table 9."""
        return "G" if self.is_global else "L"

    def components(self) -> tuple[tuple[str, str], ...]:
        """Role/kind components for template-table lookups.

        Returns pairs ``(role, kind)`` with role ``'o'`` or ``'m'``; a role
        is present only when the operation has that locality component
        somewhere.  Used by Stage 3's D2 lookup, which decomposes each
        operation into its observer and modifier components.
        """
        found = []
        if self.observer_kind is not None:
            found.append(("o", self.observer_kind))
        if self.modifier_kind is not None:
            found.append(("m", self.modifier_kind))
        return tuple(found)

    def merge(self, other: "LocalityProfile") -> "LocalityProfile":
        """Aggregate two profiles (e.g. across a operation's invocations)."""
        obs = set(_kind_components(self.observer_kind)) | set(
            _kind_components(other.observer_kind)
        )
        mod = set(_kind_components(self.modifier_kind)) | set(
            _kind_components(other.modifier_kind)
        )
        return LocalityProfile(
            observer_kind=_combine_kind("s" in obs, "c" in obs),
            modifier_kind=_combine_kind("s" in mod, "c" in mod),
            is_global=self.is_global and other.is_global,
            global_kinds=self.global_kinds & other.global_kinds,
            references_read=self.references_read | other.references_read,
            references_written=self.references_written | other.references_written,
        )


_KIND_NAMES = ("so", "sm", "co", "cm")


def profile_executions(executions: Sequence[Execution]) -> LocalityProfile:
    """Build a :class:`LocalityProfile` from a full set of executions."""
    if not executions:
        raise ValueError("cannot profile from an empty execution set")
    observes_s = any(e.trace.structure_observed for e in executions)
    observes_c = any(e.trace.content_observed for e in executions)
    modifies_s = any(e.trace.structure_modified for e in executions)
    modifies_c = any(e.trace.content_modified for e in executions)

    def covers(vertex_ids: set[int], simple: frozenset) -> bool:
        """Whether a flat locality set covers ``V_simple`` (Def. 18 paths)."""
        return {(vid,) for vid in vertex_ids} >= set(simple)

    is_global = all(
        covers(e.trace.locality, e.pre_simple_vertices) for e in executions
    )
    global_kinds = frozenset(
        kind
        for kind in _KIND_NAMES
        if all(covers(e.trace.kind(kind), e.pre_simple_vertices) for e in executions)
    )
    return LocalityProfile(
        observer_kind=_combine_kind(observes_s, observes_c),
        modifier_kind=_combine_kind(modifies_s, modifies_c),
        is_global=is_global,
        global_kinds=global_kinds,
        references_read=frozenset().union(
            *(e.trace.references_read for e in executions)
        ),
        references_written=frozenset().union(
            *(e.trace.references_written for e in executions)
        ),
    )


def profile_invocation(
    adt: ADTSpec,
    invocation,
    bounds: EnumerationBounds | None = None,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
) -> LocalityProfile:
    """Profile one invocation over every state within ``bounds``."""
    executions = list(executions_of(adt, invocation, bounds, attribution))
    return profile_executions(executions)


def profile_operation(
    adt: ADTSpec,
    operation: str,
    bounds: EnumerationBounds | None = None,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
) -> LocalityProfile:
    """Profile an operation: the merge of its invocation profiles."""
    profiles = [
        profile_invocation(adt, invocation, bounds, attribution)
        for invocation in adt.invocations_of(operation, bounds)
    ]
    merged = profiles[0]
    for profile in profiles[1:]:
        merged = merged.merge(profile)
    return merged

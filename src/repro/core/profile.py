"""Stage-2 operation characterisation — the D1-D5 questionnaire (Section 5).

For each operation the methodology asks:

* **D1** — observer, modifier or modifier-observer?
* **D2** — does it observe/modify content, structure, or both?
* **D3** — does it have an outcome, a result, or both?  Input parameters?
* **D4** — is its locality global or not?
* **D5** — explicit or implicit referencing; which references?

The answers for the QStack are the paper's Table 9.  D1 and D2 are
state-independent semantics, D3 input/output semantics, D4 and D5 state
dependent semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classification import (
    OpClass,
    classify_executions,
    outcome_labels_of,
)
from repro.core.locality import LocalityProfile, profile_executions
from repro.graph.instrument import EdgeAttribution
from repro.spec.adt import ADTSpec, EnumerationBounds
from repro.spec.enumeration import executions_of

__all__ = ["OperationProfile", "characterize_operation", "characterize_all"]


@dataclass(frozen=True)
class OperationProfile:
    """The full Stage-2 record for one operation (a row of Table 9)."""

    name: str
    #: D1 — state-independent class.
    op_class: OpClass
    #: D2 and D4 — locality characterisation.
    locality: LocalityProfile
    #: D3 — the outcome labels observed over all executions.
    outcome_labels: frozenset[str]
    #: D3 — whether any execution returns a data result.
    has_result: bool
    #: D3 — whether the operation takes input parameters.
    has_inputs: bool
    #: D5 — referencing style declared by the specification.
    referencing: str
    #: D5 — the named references the specification declares.
    declared_references: frozenset[str]

    # -- Table 9 column renderings --------------------------------------

    @property
    def return_value_summary(self) -> str:
        """``result/nok`` style summary of the return value (Table 9)."""
        labels = []
        if self.has_result:
            labels.append("result")
        # "ok" before "nok", then anything else, matching the paper's order.
        order = {"ok": 0, "nok": 1}
        labels.extend(
            sorted(
                (label for label in self.outcome_labels if label != "result"),
                key=lambda label: (order.get(label, 2), label),
            )
        )
        return "/".join(labels) if labels else "-"

    @property
    def reference_summary(self) -> str:
        """Comma-separated declared references, or blank for none."""
        return ",".join(sorted(self.declared_references))

    def table9_row(self) -> tuple[str, str, str, str, str, str]:
        """``(Op, obs/mod, Cont/Str, return-value, Locality, Reference)``."""
        return (
            self.name,
            self.op_class.render(),
            self.locality.combined_kind or "-",
            self.return_value_summary,
            self.locality.locality_symbol,
            self.reference_summary,
        )


def characterize_operation(
    adt: ADTSpec,
    operation: str,
    bounds: EnumerationBounds | None = None,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
) -> OperationProfile:
    """Run Stage 2 for a single operation by bounded enumeration."""
    bounds = bounds or adt.default_bounds
    spec = adt.operation(operation)
    invocations = adt.invocations_of(operation, bounds)
    all_executions = []
    classes = []
    locality_profiles = []
    for invocation in invocations:
        executions = list(executions_of(adt, invocation, bounds, attribution))
        all_executions.extend(executions)
        classes.append(classify_executions(executions))
        locality_profiles.append(profile_executions(executions))
    merged_locality = locality_profiles[0]
    for profile in locality_profiles[1:]:
        merged_locality = merged_locality.merge(profile)
    return OperationProfile(
        name=operation,
        op_class=max(classes),
        locality=merged_locality,
        outcome_labels=frozenset(outcome_labels_of(all_executions)),
        has_result=any(e.returned.has_result for e in all_executions),
        has_inputs=any(invocation.args for invocation in invocations),
        referencing=spec.referencing,
        declared_references=frozenset(spec.references_used),
    )


def characterize_all(
    adt: ADTSpec,
    operations: list[str] | None = None,
    bounds: EnumerationBounds | None = None,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
) -> dict[str, OperationProfile]:
    """Stage 2 for every (selected) operation of an ADT."""
    names = operations if operations is not None else adt.operation_names()
    return {
        name: characterize_operation(adt, name, bounds, attribution)
        for name in names
    }


def characterize_from_annotations(
    adt: ADTSpec, operations: list[str] | None = None
) -> dict[str, OperationProfile]:
    """Stage 2 from self-declared answers instead of enumeration.

    The ablation counterpart of :func:`characterize_all`: the operation's
    ``declared_profile`` (the paper's questionnaire filled in by its
    author) is trusted verbatim.  Raises when an operation lacks a
    declaration — half-annotated types would silently mix provenances.
    The annotation-vs-derivation agreement is itself checked by tests and
    the annotation ablation benchmark.
    """
    from repro.core.classification import OpClass
    from repro.errors import SpecError

    names = operations if operations is not None else adt.operation_names()
    profiles = {}
    for name in names:
        spec = adt.operation(name)
        declared = spec.declared_profile
        if declared is None:
            raise SpecError(
                f"operation {name!r} of {adt.name!r} has no declared_profile"
            )
        locality = LocalityProfile(
            observer_kind=declared.get("observer_kind"),
            modifier_kind=declared.get("modifier_kind"),
            is_global=bool(declared.get("is_global", False)),
            global_kinds=frozenset(declared.get("global_kinds", ())),
            references_read=frozenset(spec.references_used),
            references_written=frozenset(),
        )
        invocations = adt.invocations_of(name)
        profiles[name] = OperationProfile(
            name=name,
            op_class=OpClass[declared["class"]],
            locality=locality,
            outcome_labels=frozenset(declared.get("outcomes", ())),
            has_result=bool(declared.get("has_result", False)),
            has_inputs=any(invocation.args for invocation in invocations),
            referencing=spec.referencing,
            declared_references=frozenset(spec.references_used),
        )
    return profiles

"""The paper's primary contribution: the compatibility-table methodology.

Layered exactly as Section 4-5 present it:

* dependency lattice (:mod:`repro.core.dependency`),
* O/M/MO classification by enumeration (:mod:`repro.core.classification`),
* locality analysis (:mod:`repro.core.locality`),
* template tables 2-8 (:mod:`repro.core.templates`),
* conditions, entries and tables (:mod:`repro.core.conditions`,
  :mod:`repro.core.entry`, :mod:`repro.core.table`),
* Assertions 1-3 (:mod:`repro.core.assertions`),
* the Stage-2 questionnaire (:mod:`repro.core.profile`) and
* the five-stage pipeline (:mod:`repro.core.methodology`).
"""

from repro.core.assertions import (
    assertion1_no_dependency,
    assertion2_commute,
    assertion3_recoverable,
    locality_dependency,
)
from repro.core.classification import (
    OpClass,
    classify_all_operations,
    classify_invocation,
    classify_operation,
    classify_with_outcome,
    outcome_label,
)
from repro.core.conditions import (
    Always,
    And,
    ArgsDistinct,
    Condition,
    ConditionContext,
    InputsEqual,
    Not,
    OutcomeIs,
    OutcomesEqual,
    ReferencesDistinct,
    ReferencesEqual,
)
from repro.core.dependency import Dependency, stronger, strongest, weaker, weakest
from repro.core.entry import ConditionalDependency, Entry
from repro.core.locality import LocalityProfile, profile_invocation, profile_operation
from repro.core.methodology import (
    DerivationResult,
    MethodologyOptions,
    derive,
    stage3_dependency,
)
from repro.core.profile import (
    OperationProfile,
    characterize_all,
    characterize_from_annotations,
    characterize_operation,
)
from repro.core.table import CompatibilityTable
from repro.core.templates import (
    LOCALITY_KINDS,
    TABLE2,
    d1_base_entry,
    d1_entry,
    d2_base_entry,
    d2_entry,
    no_information_entry,
    table2_entry,
)

__all__ = [
    "Dependency",
    "stronger",
    "weaker",
    "strongest",
    "weakest",
    "OpClass",
    "classify_operation",
    "classify_invocation",
    "classify_all_operations",
    "classify_with_outcome",
    "outcome_label",
    "LocalityProfile",
    "profile_invocation",
    "profile_operation",
    "TABLE2",
    "LOCALITY_KINDS",
    "table2_entry",
    "no_information_entry",
    "d1_base_entry",
    "d1_entry",
    "d2_base_entry",
    "d2_entry",
    "Condition",
    "ConditionContext",
    "Always",
    "OutcomeIs",
    "OutcomesEqual",
    "InputsEqual",
    "ArgsDistinct",
    "ReferencesDistinct",
    "ReferencesEqual",
    "And",
    "Not",
    "ConditionalDependency",
    "Entry",
    "CompatibilityTable",
    "OperationProfile",
    "characterize_operation",
    "characterize_all",
    "characterize_from_annotations",
    "assertion1_no_dependency",
    "assertion2_commute",
    "assertion3_recoverable",
    "locality_dependency",
    "MethodologyOptions",
    "DerivationResult",
    "derive",
    "stage3_dependency",
]

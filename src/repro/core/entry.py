"""Compatibility-table entries: sets of (dependency, condition) pairs.

"The single dependency in an entry is replaced with a set of
mutually-consistent (dependency/condition) pairs ... the dependency chosen
from the set ... is the least restrictive (weakest) dependency among the
dependencies whose associated conditions hold." — Section 4.4.

An :class:`Entry` holds such a set.  Resolution picks the weakest
dependency whose condition evaluates to true in a given
:class:`~repro.core.conditions.ConditionContext`; when no condition is
(yet) decidably true the entry falls back to its strongest dependency,
which is always safe.

Mutual consistency is enforced syntactically for the refinement shapes the
pipeline produces: a pair whose condition is a conjunction extending
another pair's condition (i.e. exploits strictly more semantics) must not
carry a *stronger* dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.conditions import Always, And, Condition, ConditionContext
from repro.core.dependency import Dependency
from repro.errors import InconsistentEntryError

__all__ = ["ConditionalDependency", "Entry"]


@dataclass(frozen=True)
class ConditionalDependency:
    """One (dependency, condition) pair of an entry."""

    dependency: Dependency
    condition: Condition

    def render(self) -> str:
        """Paper-style ``(CD, Push_out = nok)`` rendering."""
        if isinstance(self.condition, Always):
            return self.dependency.render(blank_nd=False)
        return f"({self.dependency.render(blank_nd=False)}, {self.condition.render()})"


def _syntactically_refines(narrow: Condition, broad: Condition) -> bool:
    """Whether ``narrow`` is a conjunction extending ``broad``.

    The conservative syntactic implication used by the consistency check:
    ``A ∧ B`` refines ``A``; everything refines ``Always``.
    """
    if isinstance(broad, Always):
        return not isinstance(narrow, Always)
    if isinstance(narrow, And):
        narrow_parts = set(narrow.parts)
        broad_parts = set(broad.parts) if isinstance(broad, And) else {broad}
        return broad_parts < narrow_parts
    return False


class Entry:
    """A compatibility-table entry: one or more (dependency, condition) pairs."""

    def __init__(self, pairs: Iterable[ConditionalDependency]) -> None:
        self.pairs: tuple[ConditionalDependency, ...] = tuple(pairs)
        if not self.pairs:
            raise InconsistentEntryError("an entry needs at least one pair")
        self._check_consistency()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def unconditional(cls, dependency: Dependency) -> "Entry":
        """A classic single-dependency entry (Stages 1-3)."""
        return cls([ConditionalDependency(dependency, Always())])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_conditional(self) -> bool:
        """Whether any pair carries a non-vacuous condition."""
        return any(not isinstance(pair.condition, Always) for pair in self.pairs)

    def strongest(self) -> Dependency:
        """Most restrictive dependency over all pairs."""
        return max(pair.dependency for pair in self.pairs)

    def weakest(self) -> Dependency:
        """Least restrictive dependency over all pairs."""
        return min(pair.dependency for pair in self.pairs)

    def dependencies(self) -> set[Dependency]:
        """The set of dependencies appearing in the entry."""
        return {pair.dependency for pair in self.pairs}

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve(self, context: ConditionContext) -> Dependency:
        """The paper's resolution rule.

        Weakest dependency among the pairs whose conditions hold in
        ``context``; the strongest dependency of the entry when nothing is
        decidably true (conservative fallback — an undecidable condition
        must not weaken the verdict).
        """
        return self.resolve_with_condition(context)[0]

    def resolve_with_condition(
        self, context: ConditionContext
    ) -> tuple[Dependency, Condition | None]:
        """Like :meth:`resolve`, but also report *which* condition won.

        Returns the resolved dependency together with the condition of the
        winning pair, or ``None`` when the entry fell back to its
        strongest dependency because no condition was decidably true —
        the provenance the observability layer records per decision.
        """
        best: Dependency | None = None
        best_condition: Condition | None = None
        for pair in self.pairs:
            if pair.condition.evaluate(context) is True:
                if best is None or pair.dependency < best:
                    best = pair.dependency
                    best_condition = pair.condition
        if best is None:
            return self.strongest(), None
        return best, best_condition

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, blank_nd: bool = True) -> str:
        """Single-cell rendering.

        An unconditional entry renders as its dependency (ND blank by
        default, as in the paper); a conditional entry renders its pairs
        separated by newlines, Tables 11-14 style.
        """
        if not self.is_conditional and len(self.pairs) == 1:
            return self.pairs[0].dependency.render(blank_nd=blank_nd)
        return "\n".join(pair.render() for pair in self.pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        return set(self.pairs) == set(other.pairs)

    def __hash__(self) -> int:
        return hash(frozenset(self.pairs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Entry[{'; '.join(pair.render() for pair in self.pairs)}]"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_consistency(self) -> None:
        """Reject pairs where a more specific condition strengthens the dep.

        Section 4.4: "if the conditions associated with two pairs involve
        the same type of localities where the condition of the first pair
        exploits more semantics than the one of the second pair, the
        dependency specified in the first pair must be weaker than the one
        specified in the second pair."
        """
        for narrow in self.pairs:
            for broad in self.pairs:
                if narrow is broad:
                    continue
                refines = _syntactically_refines(narrow.condition, broad.condition)
                if refines and narrow.dependency > broad.dependency:
                    raise InconsistentEntryError(
                        f"pair {narrow.render()} exploits more semantics than "
                        f"{broad.render()} but carries a stronger dependency"
                    )

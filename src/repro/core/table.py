"""Compatibility tables (Section 4.4).

An ``n x n`` table over the operations of an object.  Rows are indexed by
the *invoked* (following) operation ``y`` and columns by the operation *in
execution* ``x`` — the paper's convention: "the (Deq, Push) entry
corresponds to the situation that a Deq operation follows a Push operation
on the QStack".

Besides storage and rendering, the table offers the metrics used by the
refinement-monotonicity experiment (X1 in DESIGN.md): each methodology
stage must produce a table whose *potential for concurrency* is at least
that of the previous stage.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.core.conditions import ConditionContext
from repro.core.dependency import Dependency
from repro.core.entry import Entry
from repro.errors import MethodologyError

__all__ = ["CompatibilityTable"]


class CompatibilityTable:
    """Square table of :class:`~repro.core.entry.Entry` values."""

    def __init__(
        self,
        operations: Iterable[str],
        entries: Mapping[tuple[str, str], Entry] | None = None,
        name: str = "compatibility",
    ) -> None:
        self.operations = list(operations)
        self.name = name
        self._entries: dict[tuple[str, str], Entry] = {}
        if entries:
            for key, entry in entries.items():
                self.set_entry(key[0], key[1], entry)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def set_entry(self, invoked: str, executing: str, entry: Entry) -> None:
        """Set the entry for ``invoked`` (y, row) following ``executing`` (x)."""
        self._validate(invoked, executing)
        self._entries[(invoked, executing)] = entry

    def entry(self, invoked: str, executing: str) -> Entry:
        """The entry for operation ``invoked`` following ``executing``."""
        self._validate(invoked, executing)
        try:
            return self._entries[(invoked, executing)]
        except KeyError:
            raise MethodologyError(
                f"no entry derived for ({invoked}, {executing})"
            ) from None

    def dependency(self, invoked: str, executing: str) -> Dependency:
        """Strongest (unconditional projection) dependency of a cell."""
        return self.entry(invoked, executing).strongest()

    def __eq__(self, other: object) -> bool:
        """Structural equality: same operations (in order), same entries.

        The table ``name`` is presentation metadata and does not
        participate — stage outputs are compared across derivation modes
        (cached vs uncached, parallel vs sequential) by content.
        """
        if not isinstance(other, CompatibilityTable):
            return NotImplemented
        return (
            self.operations == other.operations
            and self._entries == other._entries
        )

    __hash__ = None  # mutable container

    def resolve(
        self, invoked: str, executing: str, context: ConditionContext
    ) -> Dependency:
        """Resolve a cell's conditional entry against runtime information."""
        return self.entry(invoked, executing).resolve(context)

    def is_complete(self) -> bool:
        """Whether every (row, column) cell has an entry."""
        return len(self._entries) == len(self.operations) ** 2

    def cells(self) -> Iterable[tuple[str, str, Entry]]:
        """Iterate ``(invoked, executing, entry)`` in row-major order."""
        for invoked in self.operations:
            for executing in self.operations:
                yield invoked, executing, self.entry(invoked, executing)

    # ------------------------------------------------------------------
    # Derived tables and comparisons
    # ------------------------------------------------------------------

    def simple(self) -> dict[tuple[str, str], Dependency]:
        """Unconditional projection: strongest dependency per cell."""
        return {
            (invoked, executing): entry.strongest()
            for invoked, executing, entry in self.cells()
        }

    def map_entries(
        self, transform: Callable[[str, str, Entry], Entry], name: str | None = None
    ) -> "CompatibilityTable":
        """A new table with every entry transformed."""
        result = CompatibilityTable(self.operations, name=name or self.name)
        for invoked, executing, entry in self.cells():
            result.set_entry(invoked, executing, transform(invoked, executing, entry))
        return result

    def diff(self, other: "CompatibilityTable") -> list[tuple[str, str, Entry, Entry]]:
        """Cells whose entries differ from ``other`` (same operations)."""
        if set(self.operations) != set(other.operations):
            raise MethodologyError("cannot diff tables over different operations")
        return [
            (invoked, executing, entry, other.entry(invoked, executing))
            for invoked, executing, entry in self.cells()
            if entry != other.entry(invoked, executing)
        ]

    def refines(self, other: "CompatibilityTable") -> bool:
        """Whether this table is everywhere at most as restrictive as ``other``.

        Compared on the *weakest* dependency of each cell: a refinement
        stage adds weaker conditional alternatives without ever introducing
        a possibility stronger than the unrefined entry.
        """
        if set(self.operations) != set(other.operations):
            raise MethodologyError("cannot compare tables over different operations")
        return all(
            self.entry(invoked, executing).weakest()
            <= other.entry(invoked, executing).weakest()
            and self.entry(invoked, executing).strongest()
            <= other.entry(invoked, executing).strongest()
            for invoked in self.operations
            for executing in self.operations
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def dependency_counts(self) -> dict[Dependency, int]:
        """Cells per dependency, on the unconditional projection."""
        counts = {Dependency.ND: 0, Dependency.CD: 0, Dependency.AD: 0}
        for dependency in self.simple().values():
            counts[dependency] += 1
        return counts

    def conditional_cell_count(self) -> int:
        """Number of cells carrying conditional pairs."""
        return sum(1 for _, _, entry in self.cells() if entry.is_conditional)

    def restrictiveness(self) -> float:
        """Mean restrictiveness over cells: ND=0, CD=1, AD=2.

        Uses the *best-case* (weakest) dependency of each cell — a
        conditional cell's potential for concurrency is its weakest pair.
        Lower is better; the stages of the methodology must not increase
        this number (experiment X1).
        """
        total = sum(
            int(entry.weakest()) for _, _, entry in self.cells()
        )
        return total / max(1, len(self.operations) ** 2)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_markdown(self, blank_nd: bool = True) -> str:
        """GitHub-style markdown rendering with rows = invoked operation."""
        header = "| (o1, o2) | " + " | ".join(self.operations) + " |"
        divider = "|" + "---|" * (len(self.operations) + 1)
        rows = []
        for invoked in self.operations:
            cells = []
            for executing in self.operations:
                rendered = self.entry(invoked, executing).render(blank_nd=blank_nd)
                cells.append(rendered.replace("\n", "; "))
            rows.append(f"| {invoked} | " + " | ".join(cells) + " |")
        return "\n".join([header, divider, *rows])

    def render_ascii(self, blank_nd: bool = True) -> str:
        """Fixed-width text rendering."""
        rendered: dict[tuple[str, str], str] = {}
        for invoked, executing, entry in self.cells():
            rendered[(invoked, executing)] = entry.render(blank_nd=blank_nd).replace(
                "\n", "; "
            )
        widths = [len("(o1,o2)")] + [len(op) for op in self.operations]
        for column, executing in enumerate(self.operations):
            for invoked in self.operations:
                widths[column + 1] = max(
                    widths[column + 1], len(rendered[(invoked, executing)])
                )
        widths[0] = max([widths[0]] + [len(op) for op in self.operations])

        def fmt_row(label: str, values: list[str]) -> str:
            cells = [label.ljust(widths[0])]
            cells += [value.ljust(widths[i + 1]) for i, value in enumerate(values)]
            return " | ".join(cells).rstrip()

        lines = [fmt_row("(o1,o2)", list(self.operations))]
        lines.append("-+-".join("-" * width for width in widths))
        for invoked in self.operations:
            lines.append(
                fmt_row(
                    invoked,
                    [rendered[(invoked, executing)] for executing in self.operations],
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompatibilityTable {self.name!r} ops={self.operations}>"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _validate(self, invoked: str, executing: str) -> None:
        for op in (invoked, executing):
            if op not in self.operations:
                raise MethodologyError(
                    f"operation {op!r} is not part of this table "
                    f"(operations: {self.operations})"
                )

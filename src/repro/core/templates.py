"""The paper's template tables (Tables 2-8, Section 4.4).

Template tables map characterisations of an *executing* operation ``x``
and a *following* operation ``y`` to a dependency.  Throughout the module
(and the library) the first index is always ``y`` (the invoked/following
operation) and the second ``x`` (the operation in execution), matching the
paper's reading of its tables ("x is the operation in execution and y is
the invoked operation"; the ``(Deq, Push)`` entry corresponds to a Deq
*following* a Push).

* :data:`TABLE2` — locality-kind intersections to dependencies (Table 2).
* :func:`d1_entry` — the O/M template (Table 5) with the ``stronger``
  expansion for modifier-observers (Table 4) and the no-information table
  (Table 3) as degenerate cases.
* :func:`d2_entry` — the structure/content templates (Tables 6, 7, 8),
  derived from Table 2 by decomposing ``CS`` kinds and composing with
  ``stronger`` — including the cross-dimension no-dependency rule of
  Assertion 1 ("operations restricted to the structure of an object do not
  form dependencies with operations restricted to the content").
"""

from __future__ import annotations

from repro.core.classification import OpClass
from repro.core.dependency import Dependency, strongest
from repro.errors import TemplateError

__all__ = [
    "TABLE2",
    "table2_entry",
    "d1_base_entry",
    "d1_entry",
    "d2_base_entry",
    "d2_entry",
    "no_information_entry",
    "LOCALITY_KINDS",
]

#: The four locality kinds of Defs. 14-17, in the paper's Table-2 order.
LOCALITY_KINDS = ("so", "co", "sm", "cm")

#: Table 2 — dependency formed when ``L_y^row ∩ L_x^col != ∅``.
#: Keys are ``(y_kind, x_kind)``; every combination not listed is ND.
TABLE2: dict[tuple[str, str], Dependency] = {
    ("so", "so"): Dependency.ND,
    ("so", "co"): Dependency.ND,
    ("so", "sm"): Dependency.AD,
    ("so", "cm"): Dependency.ND,
    ("co", "so"): Dependency.ND,
    ("co", "co"): Dependency.ND,
    ("co", "sm"): Dependency.ND,
    ("co", "cm"): Dependency.AD,
    ("sm", "so"): Dependency.CD,
    ("sm", "co"): Dependency.ND,
    ("sm", "sm"): Dependency.CD,
    ("sm", "cm"): Dependency.ND,
    ("cm", "so"): Dependency.ND,
    ("cm", "co"): Dependency.CD,
    ("cm", "sm"): Dependency.ND,
    ("cm", "cm"): Dependency.CD,
}


def table2_entry(y_kind: str, x_kind: str) -> Dependency:
    """Dependency for a non-empty ``L_y^{y_kind} ∩ L_x^{x_kind}`` (Table 2)."""
    try:
        return TABLE2[(y_kind, x_kind)]
    except KeyError:
        raise TemplateError(
            f"unknown locality kinds ({y_kind!r}, {x_kind!r}); "
            f"expected kinds from {LOCALITY_KINDS}"
        ) from None


def no_information_entry() -> Dependency:
    """Table 3 — with no semantic information every entry is AD."""
    return Dependency.AD


#: Table 5 — the O/M template.  Keys are ``(y_class, x_class)``.
_TABLE5: dict[tuple[OpClass, OpClass], Dependency] = {
    (OpClass.O, OpClass.O): Dependency.ND,
    (OpClass.O, OpClass.M): Dependency.AD,
    (OpClass.M, OpClass.O): Dependency.CD,
    (OpClass.M, OpClass.M): Dependency.CD,
}


def d1_base_entry(y_class: OpClass, x_class: OpClass) -> Dependency:
    """Table-5 lookup for pure observer/modifier classes."""
    try:
        return _TABLE5[(y_class, x_class)]
    except KeyError:
        raise TemplateError(
            f"Table 5 covers only O and M classes, got ({y_class}, {x_class}); "
            "use d1_entry for modifier-observers"
        ) from None


def d1_entry(y_class: OpClass, x_class: OpClass) -> Dependency:
    """The D1 template with MO expansion — equivalently, Table 4.

    "The entries associated with a modifier-observer can be considered as a
    function that returns the stronger dependency between the corresponding
    modifier and observer entries."
    """
    return strongest(
        d1_base_entry(y_component, x_component)
        for y_component in y_class.components()
        for x_component in x_class.components()
    )


def d2_base_entry(y_role: str, y_kind: str, x_role: str, x_kind: str) -> Dependency:
    """Structure/content template entry for elementary role/kind pairs.

    ``role`` is ``'o'`` (observer component) or ``'m'`` (modifier
    component); ``kind`` is ``'S'``, ``'C'`` or ``'CS'``.  The entry is
    computed from Table 2 by decomposing a ``CS`` kind into its ``S`` and
    ``C`` parts and taking the strongest resulting dependency — this
    reproduces Tables 6 (roles o, m), 7 (m, m) and 8 (m, o) exactly, and
    yields ND for every observer/observer pair (the case the paper omits
    because it is uniformly blank).
    """
    if y_role not in ("o", "m") or x_role not in ("o", "m"):
        raise TemplateError(f"roles must be 'o' or 'm', got {y_role!r}, {x_role!r}")
    y_parts = [letter.lower() for letter in y_kind]
    x_parts = [letter.lower() for letter in x_kind]
    if not set(y_parts) <= {"s", "c"} or not set(x_parts) <= {"s", "c"}:
        raise TemplateError(f"kinds must be S/C/CS, got {y_kind!r}, {x_kind!r}")
    return strongest(
        table2_entry(y_part + y_role, x_part + x_role)
        for y_part in y_parts
        for x_part in x_parts
    )


def d2_entry(
    y_components: tuple[tuple[str, str], ...],
    x_components: tuple[tuple[str, str], ...],
) -> Dependency | None:
    """D2 dependency for two operations given their role/kind components.

    ``components`` come from
    :meth:`repro.core.locality.LocalityProfile.components`: the observer
    and/or modifier components an operation actually has.  The operations'
    dependency is the strongest over the cross product of their components
    (the MO-expansion rule applied in the D2 dimension).  Returns ``None``
    when either operation has no locality components at all, meaning the
    D2 dimension cannot characterise the pair.
    """
    if not y_components or not x_components:
        return None
    return strongest(
        d2_base_entry(y_role, y_kind, x_role, x_kind)
        for (y_role, y_kind) in y_components
        for (x_role, x_kind) in x_components
    )

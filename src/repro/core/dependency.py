"""The dependency lattice ND < CD < AD (Sections 2.1 and 4.4).

Interactions between concurrent operations create *dependencies* between
the invoking transactions:

* **AD** (abort-dependency): the second transaction observed the effects of
  the first and must abort if the first aborts.
* **CD** (commit-dependency): the second transaction must commit after the
  first (or after its abort), but can never be forced to abort by it.
* **ND** (no dependency): the operations may interleave freely.

"An AD entry is more restrictive (stronger) than a CD entry, and a CD
entry is more restrictive than a ND entry (AD > CD > ND)" — Section 4.4.
The ``stronger``/``weaker`` combinators below implement the paper's
``stronger`` function used to expand modifier-observer entries, and the
"least restrictive across dimensions" rule of Stage 3.
"""

from __future__ import annotations

import enum
from typing import Iterable

__all__ = ["Dependency", "stronger", "weaker", "strongest", "weakest"]


class Dependency(enum.IntEnum):
    """A compatibility-table dependency, ordered by restrictiveness."""

    ND = 0  #: no dependency ("yes" in a traditional table)
    CD = 1  #: commit-dependency
    AD = 2  #: abort-dependency

    def render(self, blank_nd: bool = True) -> str:
        """Table-cell rendering; ND prints blank by default, as in the paper
        ("for better readability, an ND is indicated by a blank entry")."""
        if self is Dependency.ND and blank_nd:
            return ""
        return self.name

    @property
    def is_restrictive(self) -> bool:
        """Whether the dependency constrains scheduling at all."""
        return self is not Dependency.ND


def stronger(first: Dependency, second: Dependency) -> Dependency:
    """The more restrictive of two dependencies (the paper's ``stronger``)."""
    return max(first, second)


def weaker(first: Dependency, second: Dependency) -> Dependency:
    """The less restrictive of two dependencies."""
    return min(first, second)


def strongest(dependencies: Iterable[Dependency]) -> Dependency:
    """Most restrictive of a non-empty collection."""
    return max(dependencies)


def weakest(dependencies: Iterable[Dependency]) -> Dependency:
    """Least restrictive of a non-empty collection."""
    return min(dependencies)

"""Executable forms of the paper's Assertions 1-3 (Section 4.3).

The assertions relate *per-state* locality intersections of two operations
to dependency formation, commutativity and recoverability:

* **Assertion 1** — the six intersections whose Table-2 entries are
  non-ND are all empty ⇒ no dependency forms.
* **Assertion 2** — the operations commute iff every same-dimension
  intersection involving at least one modifier is empty.
* **Assertion 3** — ``y`` is recoverable relative to ``x`` iff every such
  non-empty intersection lands on an ND or CD entry of Table 2 (i.e. no
  AD-producing intersection exists).

These are *locality-based* predicates; experiment X3 cross-validates them
against the direct state-machine definitions of commutativity and
recoverability from :mod:`repro.semantics`.
"""

from __future__ import annotations

from repro.core.dependency import Dependency
from repro.core.templates import TABLE2, table2_entry
from repro.graph.instrument import LocalityTrace

__all__ = [
    "assertion1_no_dependency",
    "assertion2_commute",
    "assertion3_recoverable",
    "locality_dependency",
]

#: The (y_kind, x_kind) combinations quantified over by Assertions 1-3:
#: all same-dimension pairs involving at least one modifier — exactly the
#: six non-ND cells of Table 2.
#:
#: Note on Assertion 1 as printed: the paper lists ``L_x^cm ∩ L_y^sm`` as
#: its third term, which is an ND cell of Table 2 (structure-modification
#: never conflicts with content-modification) and would wrongly flag the
#: paper's own Replace/XTop commuting example.  Matching the six non-ND
#: cells of Table 2 — and the paper's corollary that structure-restricted
#: and content-restricted operations never conflict — requires
#: ``L_x^cm ∩ L_y^cm`` instead; that reading is implemented here and the
#: discrepancy is recorded in EXPERIMENTS.md.
_MODIFYING_PAIRS = tuple(
    pair for pair, dep in TABLE2.items() if dep is not Dependency.ND
)

_ASSERTION1_PAIRS = _MODIFYING_PAIRS


def _intersects(trace_y: LocalityTrace, y_kind: str, trace_x: LocalityTrace,
                x_kind: str) -> bool:
    return bool(trace_y.kind(y_kind) & trace_x.kind(x_kind))


def assertion1_no_dependency(trace_x: LocalityTrace, trace_y: LocalityTrace) -> bool:
    """Assertion 1: the listed intersections are all empty ⇒ no dependency.

    Note the corollary the paper draws: "operations restricted to the
    structure of an object do not form dependencies with operations
    restricted to the content of the object".
    """
    return not any(
        _intersects(trace_y, y_kind, trace_x, x_kind)
        for (y_kind, x_kind) in _ASSERTION1_PAIRS
    )


def assertion2_commute(trace_x: LocalityTrace, trace_y: LocalityTrace) -> bool:
    """Assertion 2: ``x`` and ``y`` commute iff every same-dimension
    modifier-involving locality intersection is empty."""
    return not any(
        _intersects(trace_y, y_kind, trace_x, x_kind)
        for (y_kind, x_kind) in _MODIFYING_PAIRS
    )


def assertion3_recoverable(trace_x: LocalityTrace, trace_y: LocalityTrace) -> bool:
    """Assertion 3: ``y`` recoverable relative to ``x`` iff every non-empty
    modifier-involving intersection maps to ND or CD in Table 2."""
    for (y_kind, x_kind) in _MODIFYING_PAIRS:
        if _intersects(trace_y, y_kind, trace_x, x_kind):
            if table2_entry(y_kind, x_kind) is Dependency.AD:
                return False
    return True


def locality_dependency(
    trace_x: LocalityTrace, trace_y: LocalityTrace
) -> Dependency:
    """Strongest Table-2 dependency induced by the actual intersections.

    The "most general case" of Section 4.3: two operations conflict if the
    intersection of their localities is non-empty; the dependency formed is
    read off Table 2 per intersecting kind pair, strongest first.
    """
    strongest_found = Dependency.ND
    for y_kind in ("so", "co", "sm", "cm"):
        for x_kind in ("so", "co", "sm", "cm"):
            if _intersects(trace_y, y_kind, trace_x, x_kind):
                strongest_found = max(
                    strongest_found, table2_entry(y_kind, x_kind)
                )
    return strongest_found

"""Observer / modifier / modifier-observer classification (Defs. 1-6).

Section 2.1 of the paper classifies an operation per state:

* *observer* in ``s``:  ``state(s, o) = s`` (Def. 1);
* *modifier* in ``s``:  ``state(s, o) != s`` and the return value is the
  same in every state (Def. 2);
* *modifier-observer* in ``s``: ``state(s, o) != s`` and some other state
  yields a different return value (Def. 3) — the return value leaks state
  information, which is what makes abort-dependencies possible.

and state-independently (Defs. 4-6): MO if modifier-observer somewhere, M
if modifier somewhere but modifier-observer nowhere, O otherwise.

All quantifiers are decided by exhaustive execution over the bounded state
space (see :mod:`repro.spec.enumeration`).  Classification happens per
*invocation* (operation + concrete arguments) — return values that vary
only with the arguments, never with the state, carry no state information
and must not promote a modifier to a modifier-observer — and is then
aggregated to the operation level with the strength order MO > M > O.

For Stage 4 of the methodology the same machinery runs on the *subset* of
executions with a given outcome: "when the outcome is nok, Push acts as an
observer and not as a modifier-observer" (Section 5).
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

from repro.graph.instrument import EdgeAttribution
from repro.spec.adt import ADTSpec, AbstractState, EnumerationBounds, Execution
from repro.spec.enumeration import executions_of
from repro.spec.operation import Invocation

__all__ = [
    "OpClass",
    "OUTCOME_RESULT",
    "outcome_label",
    "classify_executions",
    "classify_invocation",
    "classify_in_state",
    "classify_operation",
    "classify_all_operations",
    "outcome_labels_of",
    "classify_with_outcome",
]

#: Label used for executions whose return value is a pure result (no
#: outcome component), e.g. a successful ``Pop``.  The paper's Stage-4
#: tables use the same word ("result/nok" in Table 9).
OUTCOME_RESULT = "result"


class OpClass(enum.IntEnum):
    """State-independent operation class, ordered by strength (Defs. 4-6)."""

    O = 0  #: observer
    M = 1  #: modifier
    MO = 2  #: modifier-observer

    def components(self) -> tuple["OpClass", ...]:
        """Decomposition used by the ``stronger`` expansion of Section 4.4.

        "Modifier-observer operations are considered to be a composition of
        modifier and observer operations."
        """
        if self is OpClass.MO:
            return (OpClass.M, OpClass.O)
        return (self,)

    def render(self) -> str:
        return self.name


def outcome_label(execution: Execution) -> str:
    """The Stage-4 outcome label of one execution.

    The outcome component when present (``"ok"``, ``"nok"``), otherwise the
    literal label ``"result"`` — matching the paper's Table 9 and the
    condition cells of Tables 11-13.
    """
    if execution.returned.has_outcome:
        return execution.returned.outcome  # type: ignore[return-value]
    return OUTCOME_RESULT


def classify_executions(executions: Sequence[Execution]) -> OpClass:
    """Classify an invocation from the full set of its executions.

    Implements Defs. 4-6 over the given evidence: the invocation is a
    modifier-observer if some execution changes the state while the return
    value varies across executions; a modifier if some execution changes
    the state but the return value is constant; an observer otherwise.
    """
    if not executions:
        raise ValueError("cannot classify from an empty execution set")
    returns = {execution.returned for execution in executions}
    return_varies = len(returns) > 1
    modifies_somewhere = any(not execution.is_identity for execution in executions)
    if modifies_somewhere and return_varies:
        return OpClass.MO
    if modifies_somewhere:
        return OpClass.M
    return OpClass.O


def classify_in_state(
    executions: Sequence[Execution], state: AbstractState
) -> OpClass:
    """Per-state classification (Defs. 1-3) of an invocation in ``state``.

    Note that the modifier / modifier-observer split depends on the return
    values across *all* states (the ``∀s'`` of Def. 2), so the full
    execution set is required even for a single-state judgement.
    """
    matching = [e for e in executions if e.pre_state == state]
    if not matching:
        raise ValueError(f"no execution recorded for state {state!r}")
    (execution,) = matching
    if execution.is_identity:
        return OpClass.O
    returns = {e.returned for e in executions}
    return OpClass.MO if len(returns) > 1 else OpClass.M


def classify_invocation(
    adt: ADTSpec,
    invocation: Invocation,
    bounds: EnumerationBounds | None = None,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
) -> OpClass:
    """Classify one invocation by enumerating all states within ``bounds``."""
    executions = list(executions_of(adt, invocation, bounds, attribution))
    return classify_executions(executions)


def classify_operation(
    adt: ADTSpec,
    operation: str,
    bounds: EnumerationBounds | None = None,
    attribution: EdgeAttribution = EdgeAttribution.BOTH,
) -> OpClass:
    """Classify an operation: the strongest class over its invocations.

    Aggregating with MO > M > O is the safe direction — an operation that
    is a modifier-observer for *some* arguments can leak state information,
    so it must be treated as MO overall (the paper's Table 1 classifies
    whole operations this way).
    """
    invocations = adt.invocations_of(operation, bounds)
    return max(
        classify_invocation(adt, invocation, bounds, attribution)
        for invocation in invocations
    )


def classify_all_operations(
    adt: ADTSpec,
    bounds: EnumerationBounds | None = None,
    operations: Iterable[str] | None = None,
) -> dict[str, OpClass]:
    """Table-1 style classification of every operation of an ADT."""
    names = list(operations) if operations is not None else adt.operation_names()
    return {name: classify_operation(adt, name, bounds) for name in names}


def outcome_labels_of(executions: Sequence[Execution]) -> set[str]:
    """The distinct outcome labels an invocation exhibits over all states."""
    return {outcome_label(execution) for execution in executions}


def classify_with_outcome(
    executions: Sequence[Execution], label: str
) -> OpClass | None:
    """Classify an invocation restricted to executions with outcome ``label``.

    This is the Stage-4 refinement primitive: conditioned on the observed
    outcome, an operation may act as a weaker class (an unsuccessful Push
    is an observer; a successful Push is a pure modifier because its return
    value, ``ok``, is fully determined by the condition).  Returns ``None``
    when the invocation never produces ``label``.
    """
    restricted = [e for e in executions if outcome_label(e) == label]
    if not restricted:
        return None
    return classify_executions(restricted)
